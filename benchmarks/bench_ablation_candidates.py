"""Ablation A2: the candidate-set size cap.

The paper caps candidate sets at 500 root supernodes (citing the
supplementary material for the effect of the cap): larger caps let the
merging step inspect more pairs per iteration at a quadratic price in
time, while very small caps miss good merges.  The bench sweeps the cap
and records compression and runtime; compression must not degrade
drastically as the cap grows.
"""

from __future__ import annotations

from bench_config import bench_iterations, full_mode, write_result

from repro.core import Slugger, SluggerConfig
from repro.experiments import format_table
from repro.graphs import load_dataset


def test_ablation_candidate_size_cap(benchmark):
    graph = load_dataset("PR", seed=0)
    iterations = bench_iterations()
    caps = (30, 60, 120, 250, 500) if full_mode() else (30, 120, 500)

    def run():
        results = []
        for cap in caps:
            config = SluggerConfig(iterations=iterations, seed=0, max_candidate_size=cap)
            outcome = Slugger(config).summarize(graph)
            results.append({
                "max_candidate_size": cap,
                "relative_size": outcome.relative_size(graph),
                "seconds": outcome.runtime_seconds,
            })
        return results

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(rows, ["max_candidate_size", "relative_size", "seconds"],
                         title="Ablation A2 — candidate-set size cap on PR")
    write_result("ablation_candidates", table)

    sizes = {row["max_candidate_size"]: row["relative_size"] for row in rows}
    # The largest cap may not be drastically worse than the smallest one;
    # usually it is at least as good because more pairs are examined.
    assert sizes[caps[-1]] <= sizes[caps[0]] + 0.05
