"""Ablation A1: the memoized local encoder.

The paper reports that SLUGGER becomes several orders of magnitude slower
without its memoized encoding lookup table, while the output is
unchanged (the memo only caches the exhaustive search).  In this
reproduction the memo caches the optimal blanket realisation per panel
shape; disabling it re-runs the exhaustive pattern search on every merge.
The bench checks that the outputs are identical and that memoization does
not slow SLUGGER down.
"""

from __future__ import annotations

import time

from bench_config import bench_iterations, write_result

from repro.core import Slugger, SluggerConfig
from repro.experiments import format_table
from repro.graphs import load_dataset


def test_ablation_memoized_encoder(benchmark):
    graph = load_dataset("PR", seed=0)
    iterations = bench_iterations()

    def run_with_memo():
        config = SluggerConfig(iterations=iterations, seed=0, use_memoized_encoder=True)
        return Slugger(config).summarize(graph)

    def run_without_memo():
        config = SluggerConfig(iterations=iterations, seed=0, use_memoized_encoder=False)
        return Slugger(config).summarize(graph)

    with_memo = benchmark.pedantic(run_with_memo, rounds=1, iterations=1)
    started = time.perf_counter()
    without_memo = run_without_memo()
    without_memo_seconds = time.perf_counter() - started

    rows = [
        {"variant": "memoized", "cost": with_memo.cost(),
         "seconds": with_memo.runtime_seconds},
        {"variant": "no-memo", "cost": without_memo.cost(),
         "seconds": without_memo_seconds},
    ]
    table = format_table(rows, ["variant", "cost", "seconds"],
                         title="Ablation A1 — memoized local encoder")
    write_result("ablation_encoder", table)

    # Memoization is purely an optimisation: the output must be identical.
    assert with_memo.cost() == without_memo.cost()
    # And it must not make SLUGGER slower (generous 1.5x tolerance for noise).
    assert with_memo.runtime_seconds <= without_memo_seconds * 1.5 + 0.5
