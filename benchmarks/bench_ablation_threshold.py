"""Ablation A3: the merging-threshold schedule θ(t).

SLUGGER (like SWeG) starts with a high threshold so that the most
profitable merges happen first, and lowers it to zero in the final
iteration (Eq. 9).  The ablation compares the paper schedule against a
constant-zero threshold (merge anything that does not increase the cost)
and a constant-0.3 threshold (only very profitable merges ever happen).
The paper schedule must be at least as good as the conservative constant
threshold and not much worse than the greedy zero threshold.
"""

from __future__ import annotations

from bench_config import bench_iterations, write_result

from repro.core import Slugger, SluggerConfig
from repro.experiments import format_table
from repro.graphs import load_dataset


def test_ablation_threshold_schedule(benchmark):
    graph = load_dataset("PR", seed=0)
    iterations = bench_iterations()
    schedules = ("paper", "zero", "constant:0.3")

    def run():
        rows = []
        for schedule in schedules:
            config = SluggerConfig(iterations=iterations, seed=0, threshold_schedule=schedule)
            outcome = Slugger(config).summarize(graph)
            rows.append({
                "schedule": schedule,
                "relative_size": outcome.relative_size(graph),
                "seconds": outcome.runtime_seconds,
            })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(rows, ["schedule", "relative_size", "seconds"],
                         title="Ablation A3 — merging-threshold schedule on PR")
    write_result("ablation_threshold", table)

    sizes = {row["schedule"]: row["relative_size"] for row in rows}
    assert sizes["paper"] <= sizes["constant:0.3"] + 1e-9
    assert sizes["paper"] <= sizes["zero"] + 0.05
