"""Sect. VIII-C: graph algorithms running directly on summaries.

Paper result: BFS, PageRank, Dijkstra's, and triangle counting can run on
the summary via on-the-fly partial decompression, producing the same
results as on the uncompressed graph (possibly somewhat slower).  The
bench runs the four workloads on the raw graph and on the SLUGGER
summary and checks that the results agree exactly.
"""

from __future__ import annotations

from bench_config import bench_iterations, write_result

from repro.experiments import format_table, summary_algorithm_experiment


def test_appendix_algorithms_on_summary(benchmark):
    iterations = bench_iterations()

    def run():
        return summary_algorithm_experiment(
            dataset="PR", iterations=iterations, seed=0, pagerank_iterations=5
        )

    records = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {
            "algorithm": record.parameters["algorithm"],
            "graph_seconds": record.values["graph_seconds"],
            "summary_seconds": record.values["summary_seconds"],
            "slowdown": record.values["slowdown"],
            "results_agree": bool(record.values["results_agree"]),
        }
        for record in records
    ]
    table = format_table(rows, ["algorithm", "graph_seconds", "summary_seconds", "slowdown",
                                "results_agree"],
                         title="Sect. VIII-C — algorithms on the raw graph vs the SLUGGER summary")
    write_result("appendix_algorithms", table)

    for record in records:
        assert record.values["results_agree"] == 1.0
        # Running on the summary may be slower, but not absurdly so.
        assert record.values["slowdown"] < 200.0
