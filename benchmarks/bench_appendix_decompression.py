"""Sect. VIII-B: partial decompression (neighbor query) latency.

Paper result: retrieving the neighbors of a node from a SLUGGER summary
takes microseconds (below 15 µs on all datasets on the authors' machine),
and the per-dataset latency correlates strongly with the average leaf
depth of the hierarchy trees (Pearson ≈ 0.82).  The bench measures the
same quantities on the analogues; absolute times differ (pure Python),
but queries must stay far below a millisecond on average and the
latency/depth correlation must be positive when it is defined.
"""

from __future__ import annotations

from bench_config import bench_datasets, bench_iterations, write_result

from repro.experiments import decompression_experiment, format_table


def test_appendix_partial_decompression(benchmark):
    datasets = bench_datasets("small")
    iterations = bench_iterations()

    def run():
        return decompression_experiment(datasets, iterations=iterations, seed=0, queries=150)

    records = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {
            "dataset": record.parameters["dataset"],
            "slugger_us": record.values["slugger_microseconds"],
            "sweg_us": record.values["sweg_microseconds"],
            "avg_leaf_depth": record.values["average_leaf_depth"],
        }
        for record in records
        if record.label != "correlation"
    ]
    table = format_table(rows, ["dataset", "slugger_us", "sweg_us", "avg_leaf_depth"],
                         title="Sect. VIII-B — neighbor-query latency by partial decompression")
    correlation = next((record for record in records if record.label == "correlation"), None)
    if correlation is not None:
        table += (
            "\nPearson(depth, latency) = "
            f"{correlation.values['pearson_depth_vs_latency']:.3f}"
        )
    write_result("appendix_decompression", table)

    for row in rows:
        # Partial decompression must stay a micro-operation, not a rebuild
        # of the whole graph (well under a millisecond per query).
        assert row["slugger_us"] < 1000.0
        assert row["sweg_us"] < 1000.0
