"""Shared helpers for the benchmark suite.

Every benchmark module regenerates one table or figure of the paper.  By
default the benches run on a subset of the dataset analogues with reduced
iteration counts so that ``pytest benchmarks/ --benchmark-only`` finishes
in minutes on a laptop; setting the environment variable
``REPRO_BENCH_FULL=1`` switches to the full 16-dataset, paper-scale
configuration.

Each bench also writes the regenerated table to
``benchmarks/results/<name>.txt`` so the output can be diffed against the
paper's numbers (see EXPERIMENTS.md).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import List, Sequence

import pytest

RESULTS_DIRECTORY = Path(__file__).parent / "results"

#: Datasets used by default (small analogues, Table II order).
SMALL_DATASETS: List[str] = ["CA", "FA", "PR", "EM", "DB", "AM"]
#: Medium subset used by the heavier sweeps.
MEDIUM_DATASETS: List[str] = ["PR", "DB", "CN"]
#: All sixteen dataset analogues.
FULL_DATASETS: List[str] = [
    "CA", "FA", "PR", "EM", "DB", "AM", "CN", "YO",
    "SK", "EU", "ES", "LJ", "HO", "IC", "U2", "U5",
]


def full_mode() -> bool:
    """Whether the paper-scale configuration was requested."""
    return os.environ.get("REPRO_BENCH_FULL", "0") not in ("", "0", "false", "False")


def bench_datasets(scope: str = "small") -> List[str]:
    """Datasets to run for the given scope (``small``, ``medium``, ``full``)."""
    if full_mode():
        return list(FULL_DATASETS)
    if scope == "medium":
        return list(MEDIUM_DATASETS)
    if scope == "full":
        return list(SMALL_DATASETS)
    return list(SMALL_DATASETS)


def bench_iterations(default: int = 5) -> int:
    """Iteration count T used by the iterative methods in benches."""
    return 20 if full_mode() else default


def write_result(name: str, text: str) -> Path:
    """Persist one regenerated table under ``benchmarks/results/``."""
    RESULTS_DIRECTORY.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIRECTORY / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    return path


@pytest.fixture
def results_writer():
    """Fixture handing benches the :func:`write_result` helper."""
    return write_result
