"""Extension E12: summarize-then-compress pipeline (Sect. I claim).

The paper positions lossless summarization as a pre-process whose output
graphs "can be further compressed using any graph-compression
techniques".  This bench measures bits-per-edge of (a) gap-compressing
the raw graph directly and (b) gap-compressing the SLUGGER summary, and
checks that the pipeline pays off on the compressible dataset analogues
(pipeline ratio < 1 on average, strictly < 1 on the web-like analogues).
"""

from __future__ import annotations

from bench_config import bench_datasets, bench_iterations, write_result

from repro.experiments import compression_pipeline_experiment, format_table


def test_ext_compression_pipeline(benchmark):
    datasets = bench_datasets("small")
    iterations = bench_iterations()

    def run():
        return compression_pipeline_experiment(datasets, iterations=iterations, seed=0)

    records = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {
            "dataset": record.parameters["dataset"],
            "raw_bits_per_edge": record.values["raw_bits_per_edge"],
            "summary_bits_per_edge": record.values["summary_bits_per_edge"],
            "pipeline_ratio": record.values["pipeline_ratio"],
        }
        for record in records
    ]
    table = format_table(
        rows,
        ["dataset", "raw_bits_per_edge", "summary_bits_per_edge", "pipeline_ratio"],
        title="E12 — bits per edge: raw gap compression vs summarize-then-compress",
    )
    write_result("ext_compression_pipeline", table)

    ratios = [record.values["pipeline_ratio"] for record in records]
    # Summarize-then-compress must help on average across the analogues...
    assert sum(ratios) / len(ratios) < 1.05
    # ...and strictly help on the most summarizable analogues present.
    compressible = [
        record.values["pipeline_ratio"]
        for record in records
        if record.parameters["dataset"] in ("PR", "DB", "CN", "EU", "IC", "U2", "U5")
    ]
    if compressible:
        assert min(compressible) < 1.0
