"""Extension E14: size/error trade-off of lossy summarization (Sect. V).

The lossy variant of graph summarization bounds the per-node neighborhood
error by ε.  The bench sweeps ε on two analogues and checks the two
defining properties of the trade-off: the measured error never exceeds
its bound, and the output size never grows as the bound is relaxed.
"""

from __future__ import annotations

from bench_config import bench_iterations, write_result

from repro.experiments import format_table, lossy_tradeoff_experiment

EPSILONS = (0.0, 0.1, 0.25, 0.5)


def test_ext_lossy_tradeoff(benchmark):
    iterations = bench_iterations()

    def run():
        return lossy_tradeoff_experiment(["PR", "FA"], epsilons=EPSILONS,
                                         iterations=iterations, seed=0)

    records = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {
            "dataset": record.parameters["dataset"],
            "epsilon": record.parameters["epsilon"],
            "relative_size": record.values["relative_size"],
            "measured_error": record.values["max_relative_error"],
        }
        for record in records
    ]
    table = format_table(
        rows,
        ["dataset", "epsilon", "relative_size", "measured_error"],
        title="E14 — lossy summarization: output size vs error bound ε",
    )
    write_result("ext_lossy_tradeoff", table)

    for record in records:
        assert record.values["max_relative_error"] <= record.parameters["epsilon"] + 1e-9

    for dataset in ("PR", "FA"):
        sizes = [
            record.values["relative_size"]
            for record in records
            if record.parameters["dataset"] == dataset
        ]
        assert all(later <= earlier + 1e-9 for earlier, later in zip(sizes, sizes[1:]))
