"""Extension E13: node-ordering ablation for the downstream compressor.

The WebGraph-style compressors the paper defers to (references [1],
[9]-[11]) rely on locality-friendly node orderings.  This bench compares
the natural, degree, BFS, and shingle orderings on a hyperlink-style
analogue and checks that at least one locality-aware ordering compresses
the graph into fewer bits per edge than the natural ids.
"""

from __future__ import annotations

from bench_config import write_result

from repro.experiments import format_table, ordering_ablation_experiment


def test_ext_ordering_ablation(benchmark):
    def run():
        return ordering_ablation_experiment(dataset="CN", seed=0)

    records = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {
            "ordering": record.parameters["ordering"],
            "bits_per_edge": record.values["bits_per_edge"],
            "mean_gap": record.values["locality"],
        }
        for record in records
    ]
    table = format_table(
        rows,
        ["ordering", "bits_per_edge", "mean_gap"],
        title="E13 — node-ordering ablation of the gap compressor (CN analogue)",
    )
    write_result("ext_ordering_ablation", table)

    by_scheme = {record.parameters["ordering"]: record.values for record in records}
    assert set(by_scheme) == {"natural", "degree", "bfs", "shingle"}
    natural_bits = by_scheme["natural"]["bits_per_edge"]
    best_other_bits = min(
        values["bits_per_edge"] for scheme, values in by_scheme.items() if scheme != "natural"
    )
    # At least one locality-aware relabeling compresses better than the
    # natural ids, which is the reason the WebGraph line of work relabels.
    assert best_other_bits <= natural_bits
