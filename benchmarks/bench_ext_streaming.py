"""Extension E15: online summarization over dynamic edge streams.

MoSSo (one of the paper's baselines) is designed for fully dynamic
streams.  The bench replays an insertion-only and a fully dynamic stream
of the FA analogue through the online summarizer and checks that the
maintained summary (a) stays lossless at the end of the stream and (b)
keeps a compression level in the same regime as the offline run.
"""

from __future__ import annotations

from bench_config import write_result

from repro.baselines import mosso_summarize
from repro.experiments import format_table, streaming_experiment
from repro.graphs import load_dataset


def test_ext_streaming_summarization(benchmark):
    def run():
        return streaming_experiment(dataset="FA", deletion_ratio=0.2, checkpoints=6, seed=0)

    records = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {
            "stream": record.parameters["stream"],
            "time": record.parameters["time"],
            "num_edges": record.values["num_edges"],
            "relative_size": record.values["relative_size"],
        }
        for record in records
    ]
    table = format_table(
        rows,
        ["stream", "time", "num_edges", "relative_size"],
        title="E15 — online (MoSSo) summary quality over edge streams (FA analogue)",
    )
    write_result("ext_streaming", table)

    assert {record.parameters["stream"] for record in records} == {
        "insertion_only",
        "fully_dynamic",
    }

    # The final online quality must be in the same regime as the offline
    # MoSSo run on the full static graph (within a generous factor).
    graph = load_dataset("FA", seed=0)
    offline = mosso_summarize(graph, seed=0).relative_size(graph)
    for stream in ("insertion_only", "fully_dynamic"):
        finals = [
            record.values["relative_size"]
            for record in records
            if record.parameters["stream"] == stream
        ]
        assert finals, f"no checkpoints recorded for {stream}"
        assert finals[-1] <= max(1.5, 2.0 * offline)
