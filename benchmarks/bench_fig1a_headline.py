"""Fig. 1(a): relative output size of the five methods on the PR dataset.

Paper result: SLUGGER's output is the most concise, up to 29.6% smaller
than the best competitor (SWeG) on the Protein (PR) dataset.  The bench
reproduces the ranking on the PR analogue: SLUGGER must produce the
smallest relative size of all five methods.
"""

from __future__ import annotations

from bench_config import bench_iterations, write_result

from repro.experiments import format_table, headline_experiment


def test_fig1a_headline_relative_sizes(benchmark):
    # SLUGGER needs a few more merge rounds than the other methods to pull
    # ahead on the small analogues (the paper uses T = 20 everywhere).
    iterations = bench_iterations(10)

    def run():
        return headline_experiment(dataset="PR", iterations=iterations, seed=0)

    records = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {
            "method": record.parameters["method"],
            "relative_size": record.values["relative_size"],
            "runtime_seconds": record.values["runtime_seconds"],
        }
        for record in records
    ]
    table = format_table(rows, ["method", "relative_size", "runtime_seconds"],
                         title="Fig. 1(a) — relative size of outputs on PR")
    write_result("fig1a_headline", table)

    sizes = {record.parameters["method"]: record.values["relative_size"] for record in records}
    # SLUGGER must be the most concise method, as in the paper.
    assert sizes["slugger"] == min(sizes.values())
    # And visibly ahead of the LSH heuristic (the paper's weakest baseline).
    assert sizes["slugger"] < sizes["sags"]
