"""Fig. 1(b): SLUGGER scales linearly with the number of edges.

Paper result: runtime grows linearly in |E| on node-sampled subgraphs of
the largest dataset (UK-05).  The bench reproduces the protocol on the
UK-05 analogue and checks that a straight line explains the runtime
series well (R² close to 1) and that runtime growth is far from
quadratic.
"""

from __future__ import annotations

from bench_config import bench_iterations, full_mode, write_result

from repro.experiments import format_table, scalability_experiment


def test_fig1b_linear_scalability(benchmark):
    fractions = (0.2, 0.4, 0.6, 0.8, 1.0) if full_mode() else (0.3, 0.55, 0.8, 1.0)
    iterations = bench_iterations(3)

    def run():
        return scalability_experiment(
            dataset="U5", fractions=fractions, iterations=iterations, seed=0
        )

    records = benchmark.pedantic(run, rounds=1, iterations=1)
    points = [record for record in records if record.label != "linear-fit"]
    fit = records[-1]
    rows = [
        {
            "fraction": record.parameters["fraction"],
            "num_edges": record.values["num_edges"],
            "runtime_seconds": record.values["runtime_seconds"],
        }
        for record in points
    ]
    table = format_table(rows, ["fraction", "num_edges", "runtime_seconds"],
                         title="Fig. 1(b) — runtime vs |E| on the UK-05 analogue")
    table += f"\nlinear fit: slope={fit.values['slope']:.3e} r_squared={fit.values['r_squared']:.3f}"
    write_result("fig1b_scalability", table)

    assert fit.values["r_squared"] > 0.85
    # Runtime must stay clearly sub-quadratic in |E|.  The pure-Python
    # constants are not flat — the per-merge re-encoding work grows with
    # supernode sizes, which the denser large samples exercise more — so a
    # strict 1:1 ratio is not expected at this scale; quadratic growth
    # (time_ratio ≈ edge_ratio²) would indicate an asymptotic regression.
    first, last = points[0], points[-1]
    edge_ratio = last.values["num_edges"] / max(first.values["num_edges"], 1.0)
    time_ratio = last.values["runtime_seconds"] / max(first.values["runtime_seconds"], 1e-9)
    assert time_ratio < edge_ratio ** 1.8
