"""Fig. 5(a): relative output size of every method on every dataset.

Paper result: SLUGGER provides the most concise representation on all 16
datasets; SWeG is consistently second, SAGS is the least concise.  The
bench reruns the comparison on the dataset analogues and checks the
ordering: SLUGGER wins (or ties within 2%) on every dataset and wins
outright on the majority.
"""

from __future__ import annotations

from bench_config import bench_datasets, bench_iterations, write_result

from repro.experiments import compactness_experiment, format_table


def test_fig5a_compactness_all_datasets(benchmark):
    datasets = bench_datasets("small")
    # SLUGGER needs a few more merge rounds than the other methods to pull
    # ahead on the small analogues (the paper uses T = 20 everywhere).
    iterations = bench_iterations(10)

    def run():
        return compactness_experiment(datasets, iterations=iterations, seed=0)

    records = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {
            "dataset": record.parameters["dataset"],
            "method": record.parameters["method"],
            "relative_size": record.values["relative_size"],
        }
        for record in records
    ]
    table = format_table(rows, ["dataset", "method", "relative_size"],
                         title="Fig. 5(a) — relative size of outputs per dataset and method")
    write_result("fig5a_compactness", table)

    by_dataset = {}
    for record in records:
        by_dataset.setdefault(record.parameters["dataset"], {})[
            record.parameters["method"]
        ] = record.values["relative_size"]

    outright_wins = 0
    for dataset, sizes in by_dataset.items():
        best_competitor = min(value for method, value in sizes.items() if method != "slugger")
        # SLUGGER is the most concise method (a 2% slack absorbs the
        # randomness of the small analogues).
        assert sizes["slugger"] <= best_competitor * 1.02, (
            f"SLUGGER lost on {dataset}: {sizes}"
        )
        if sizes["slugger"] < best_competitor:
            outright_wins += 1
    assert outright_wins >= len(by_dataset) // 2
