"""Fig. 5(b): running time of every method per dataset.

Paper result: SAGS is the fastest method (but least concise); SLUGGER's
runtime is comparable to SWeG's (within a small constant factor); the
purely random baseline and MoSSo are not faster than SLUGGER by an order
of magnitude.  The bench records the runtimes and checks those speed
relations on the analogues.
"""

from __future__ import annotations

from bench_config import bench_datasets, bench_iterations, write_result

from repro.experiments import format_table, runtime_experiment
from repro.utils.stats import mean


def test_fig5b_runtimes(benchmark):
    datasets = bench_datasets("small")
    iterations = bench_iterations()

    def run():
        return runtime_experiment(datasets, iterations=iterations, seed=0)

    records = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {
            "dataset": record.parameters["dataset"],
            "method": record.parameters["method"],
            "runtime_seconds": record.values["runtime_seconds"],
            "speedup_vs_slugger": record.values.get("speedup_vs_slugger", float("nan")),
        }
        for record in records
    ]
    table = format_table(rows, ["dataset", "method", "runtime_seconds", "speedup_vs_slugger"],
                         title="Fig. 5(b) — running time per dataset and method")
    write_result("fig5b_runtime", table)

    by_method = {}
    for record in records:
        by_method.setdefault(record.parameters["method"], []).append(
            record.values["runtime_seconds"]
        )
    average = {method: mean(values) for method, values in by_method.items()}
    # SAGS is the fastest method on average, as in the paper.
    assert average["sags"] == min(average.values())
    # SLUGGER stays within an order of magnitude of SWeG on average.
    assert average["slugger"] <= 10 * average["sweg"] + 1.0
