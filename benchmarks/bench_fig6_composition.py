"""Fig. 6: composition of SLUGGER's outputs by edge type.

Paper result: p-edges or h-edges account for the largest share of the
output on every dataset, while n-edges are a small minority (below ~13%
everywhere, below ~5% on most datasets).  The bench regenerates the
composition on the dataset analogues and checks those proportions.
"""

from __future__ import annotations

from bench_config import bench_datasets, bench_iterations, write_result

from repro.experiments import composition_experiment, format_table


def test_fig6_output_composition(benchmark):
    datasets = bench_datasets("small")
    iterations = bench_iterations()

    def run():
        return composition_experiment(datasets, iterations=iterations, seed=0)

    records = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {
            "dataset": record.parameters["dataset"],
            "p_share": record.values["share_p_edges"],
            "n_share": record.values["share_n_edges"],
            "h_share": record.values["share_h_edges"],
        }
        for record in records
    ]
    table = format_table(rows, ["dataset", "p_share", "n_share", "h_share"],
                         title="Fig. 6 — composition of SLUGGER outputs by edge type")
    write_result("fig6_composition", table)

    for record in records:
        shares = {
            "p": record.values["share_p_edges"],
            "n": record.values["share_n_edges"],
            "h": record.values["share_h_edges"],
        }
        assert abs(sum(shares.values()) - 1.0) < 1e-9
        # n-edges are never the dominant type and stay a small minority.
        assert max(shares, key=shares.get) in ("p", "h")
        assert shares["n"] < 0.25
