"""Microbenchmark for the SLUGGER hot paths and the dense substrate.

Times the three inner-loop stages that the hot-path overhaul targets —
subnode-shingle computation, candidate generation, and one merge sweep —
against inline replicas of the seed implementation (eager per-edge
hashing, full per-round rehash, O(n) ``list.index`` partner replacement
without partner-search short-circuits).  Both variants run on the same
graphs with the same seeds, so the speedups are measured, not asserted
from first principles, and the outputs are cross-checked for equality.

On top of the stage benches, two substrate comparisons track the dense
integer-graph layer:

* an *end-to-end* comparison: the full SLUGGER driver built from the
  seed replicas versus the current implementation (same seeds, costs
  cross-checked equal);
* a *representation* comparison: dict-of-sets adjacency versus
  :class:`DenseAdjacency` versus the frozen CSR view, in both shingle
  sweep time and approximate memory.

Run directly::

    PYTHONPATH=src python benchmarks/bench_hotpaths.py          # full (10k-node ER)
    PYTHONPATH=src python benchmarks/bench_hotpaths.py --quick  # CI smoke mode
    PYTHONPATH=src python benchmarks/bench_hotpaths.py --json out.json

``--json`` writes a machine-readable record (timings, speedups, memory,
peak RSS) so the perf trajectory is tracked across PRs.  The full mode
asserts the acceptance bars: candidate generation on the 10k-node
Erdős–Rényi graph at least 2x faster than the seed, and the substrate
either >= 1.3x faster end-to-end or >= 30% smaller in adjacency memory.
The ``ingest`` section compares the three disk-to-substrate paths (text
parse, sharded parallel parse, packed-container mmap load) and gates the
storage layer: mmap load >= 5x faster than the text parse and the
container >= 2x smaller than the text edge list (the sharded-parse gate
is skipped without fork or a second CPU).

Three serial-tail sections round out the record:

* ``pruning`` — the pruning step on one unpruned 10k-node ER summary
  across worker counts, bit-identity asserted against the serial
  reference, with the :func:`pruning_profile` substep split (gate:
  >= 2x at 4 workers; skipped without fork or 4 CPUs);
* ``coloring`` — full runs whose zero-threshold iterations go through
  the colored sweep on a community-structured fixture, bit-identity
  asserted at every worker count (gate skipped without 4 CPUs; the
  engagement cross-check always runs);
* ``thaw`` — eager ``DenseAdjacency.from_csr`` versus the
  :class:`LazyDenseAdjacency` overlay on a mapped container, contents
  cross-checked equal (hardware-independent gate: lazy construction
  >= 5x cheaper than the eager O(m) thaw).

The ``queries`` section times the CSR-native query kernels (pagerank,
BFS, triangle counting) served straight off a mapped container against
inline replicas of the seed's dict-of-sets analytics, results
cross-checked equal (pagerank bit-identically) and the serving path
asserted to materialize zero ``Graph`` nodes and no dense overlay
(hardware-independent gate: each kernel >= 3x the dict implementation
on the 10k-node ER fixture).

The ``summary_cache`` section measures summary persistence: one cold
SLUGGER run through a cache-attached service versus the identical
request warm-started from the persisted ``SUMM`` container by a fresh
service, summaries cross-checked bit-identical (hardware-independent
gate: warm >= 10x cold).

The ``obs`` section measures telemetry overhead: the same run with
telemetry disabled, with a live metrics registry, and with metrics plus
span tracing, costs cross-checked identical (gate: full telemetry
<= +3% wall time over the disabled path on the 10k-node ER fixture).
"""

from __future__ import annotations

import argparse
import json
import platform
import resource
import subprocess
import sys
import time
from typing import Callable, Dict, List, Sequence

from repro.analysis.cost_breakdown import pruning_profile
from repro.core import Slugger, SluggerConfig
from repro.core.candidates import generate_candidate_sets
from repro.engine.execution import ExecutionConfig, available_cpus, process_execution_available
from repro.core.merging import merge_and_update, process_candidate_set
from repro.core.pruning import prune
from repro.core.saving import saving, two_hop_roots
from repro.core.shingles import (
    ShingleCache,
    dense_subnode_shingles,
    make_hash_function,
    subnode_shingles,
)
from repro.core.state import SluggerState
from repro.graphs import caveman_graph, erdos_renyi_graph
from repro.graphs.dense import DenseAdjacency, graph_adjacency_bytes
from repro.graphs.graph import Graph
from repro.model.hierarchy import Hierarchy
from repro.utils.rng import ensure_rng


# ----------------------------------------------------------------------
# Seed-implementation replicas (the "before" side of the comparison)
# ----------------------------------------------------------------------
def seed_subnode_shingles(graph: Graph, hash_function) -> Dict:
    """Seed shingle computation: re-invokes the hash closure per edge endpoint."""
    shingles = {}
    for node in graph.nodes():
        best = hash_function(node)
        for neighbor in graph.neighbor_set(node):
            value = hash_function(neighbor)
            if value < best:
                best = value
        shingles[node] = best
    return shingles


def seed_leaf_subnodes(hierarchy: Hierarchy, supernode: int) -> List:
    """Seed leaf lookup: walks the subtree on every call (no memoized leaf index)."""
    leaves = []
    stack = [supernode]
    children = hierarchy._children
    leaf_subnode = hierarchy._leaf_subnode
    while stack:
        node = stack.pop()
        if node in leaf_subnode:
            leaves.append(leaf_subnode[node])
        else:
            stack.extend(children[node])
    return leaves


def seed_root_shingles(roots, hierarchy: Hierarchy, node_shingles: Dict) -> Dict:
    result = {}
    for root in roots:
        best = None
        for subnode in seed_leaf_subnodes(hierarchy, root):
            value = node_shingles[subnode]
            if best is None or value < best:
                best = value
        result[root] = best if best is not None else 0
    return result


def seed_generate_candidate_sets(
    graph: Graph, hierarchy: Hierarchy, roots: Sequence[int], config: SluggerConfig, seed=None
) -> List[List[int]]:
    """Seed candidate generation: rehashes every graph node on every round."""
    rng = ensure_rng(seed)
    groups: List[List[int]] = [list(roots)]
    finished: List[List[int]] = []
    for _ in range(config.shingle_rounds):
        oversized = [group for group in groups if len(group) > config.max_candidate_size]
        finished.extend(group for group in groups if len(group) <= config.max_candidate_size)
        if not oversized:
            groups = []
            break
        hash_function = make_hash_function(rng.randrange(2**61))
        node_shingles = seed_subnode_shingles(graph, hash_function)
        groups = []
        for group in oversized:
            shingles = seed_root_shingles(group, hierarchy, node_shingles)
            buckets: Dict[int, List[int]] = {}
            for root in group:
                buckets.setdefault(shingles[root], []).append(root)
            if len(buckets) == 1:
                groups.append(group)
            else:
                groups.extend(buckets.values())
    for group in groups:
        if len(group) <= config.max_candidate_size:
            finished.append(group)
        else:
            shuffled = list(group)
            rng.shuffle(shuffled)
            for start in range(0, len(shuffled), config.max_candidate_size):
                finished.append(shuffled[start:start + config.max_candidate_size])
    candidate_sets = [group for group in finished if len(group) >= 2]
    rng.shuffle(candidate_sets)
    return candidate_sets


def seed_best_partner(state: SluggerState, root: int, candidates, height_bound=None):
    """Seed partner search: full two-hop set per call, no estimate short-circuit."""
    admissible = two_hop_roots(state, root)
    best_value = float("-inf")
    best_root = -1
    for other in candidates:
        if other == root or other not in admissible:
            continue
        if height_bound is not None:
            new_height = 1 + max(state.tree_height[root], state.tree_height[other])
            if new_height > height_bound:
                continue
        value = saving(state, root, other)
        if value > best_value:
            best_value = value
            best_root = other
    return best_value, best_root


class SeedState(SluggerState):
    """State with the seed's O(|pn_edges|) bucket scan on every merge."""

    def __init__(self, graph: Graph) -> None:
        # The seed had no dense substrate; exercise the label paths.
        super().__init__(graph, build_dense=False)

    def _rekey_pn_edges(self, root_a: int, root_b: int, merged: int) -> None:
        affected = [pair for pair in self.pn_edges if root_a in pair or root_b in pair]
        for pair in affected:
            records = self.pn_edges.pop(pair)
            first, second = pair
            new_first = merged if first in (root_a, root_b) else first
            new_second = merged if second in (root_a, root_b) else second
            new_pair = (new_first, new_second) if new_first <= new_second else (new_second, new_first)
            self.pn_edges.setdefault(new_pair, set()).update(records)


def seed_process_candidate_set(
    state: SluggerState, candidate_set, threshold: float, config: SluggerConfig, seed=None
) -> int:
    """Seed merge loop: O(n) ``queue.index`` scan to replace the merged partner."""
    rng = ensure_rng(seed)
    queue: List[int] = [root for root in candidate_set if root in state.roots]
    merges = 0
    while len(queue) > 1:
        index = rng.randrange(len(queue))
        root_a = queue[index]
        queue[index] = queue[-1]
        queue.pop()
        value, root_b = seed_best_partner(
            state, root_a, queue, height_bound=config.height_bound
        )
        if root_b < 0 or value < threshold:
            continue
        merged = merge_and_update(state, root_a, root_b, config)
        queue[queue.index(root_b)] = merged
        merges += 1
    return merges


# ----------------------------------------------------------------------
# Timing harness
# ----------------------------------------------------------------------
def best_of(repeats: int, callback: Callable[[], object]) -> float:
    """Minimum wall time over ``repeats`` invocations of ``callback``."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        callback()
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best = elapsed
    return best


def bench_shingles(graph: Graph, repeats: int) -> Dict[str, float]:
    before = best_of(repeats, lambda: seed_subnode_shingles(graph, make_hash_function(42)))
    after = best_of(repeats, lambda: subnode_shingles(graph, make_hash_function(42)))
    assert subnode_shingles(graph, make_hash_function(42)) == seed_subnode_shingles(
        graph, make_hash_function(42)
    )
    return {"before": before, "after": after}


def bench_candidates(graph: Graph, repeats: int) -> Dict[str, float]:
    state = SluggerState(graph)
    hierarchy = state.summary.hierarchy
    roots = sorted(state.roots)
    config = SluggerConfig(seed=0)
    before = best_of(repeats, lambda: seed_generate_candidate_sets(graph, hierarchy, roots, config, seed=1))
    after = best_of(repeats, lambda: generate_candidate_sets(graph, hierarchy, roots, config, seed=1))
    assert generate_candidate_sets(graph, hierarchy, roots, config, seed=1) == \
        seed_generate_candidate_sets(graph, hierarchy, roots, config, seed=1)
    return {"before": before, "after": after}


def bench_merge_sweep(graph: Graph) -> Dict[str, float]:
    """One full merge sweep over all candidate sets at threshold 0.

    Threshold 0 is the final-iteration regime, where most merges happen
    and the per-merge bookkeeping (partner replacement, superedge-bucket
    re-keying) dominates.
    """
    config = SluggerConfig(seed=0)
    threshold = 0.0

    def sweep(process, state_class):
        rng = ensure_rng(7)
        state = state_class(graph)
        candidate_sets = generate_candidate_sets(
            graph, state.summary.hierarchy, sorted(state.roots), config, seed=rng.randrange(2**61)
        )
        merges = 0
        started = time.perf_counter()
        for candidate_set in candidate_sets:
            merges += process(state, candidate_set, threshold, config, seed=rng.randrange(2**61))
        return time.perf_counter() - started, merges

    before, merges_before = sweep(seed_process_candidate_set, SeedState)
    after, merges_after = sweep(process_candidate_set, SluggerState)
    assert merges_before == merges_after, "merge sweep diverged from the seed implementation"
    return {"before": before, "after": after}


def bench_validation(graph: Graph, iterations: int) -> float:
    """Full run with per-iteration invariant checks; returns the final cost."""
    result = Slugger(SluggerConfig(iterations=iterations, seed=0, check_invariants=graph.num_nodes <= 2000)).summarize(graph)
    result.summary.validate(graph)
    return result.cost()


# ----------------------------------------------------------------------
# End-to-end and substrate comparisons
# ----------------------------------------------------------------------
def seed_full_run(graph: Graph, config: SluggerConfig) -> int:
    """The full SLUGGER driver built from the seed replicas; returns the cost.

    Candidate generation, partner search, and the state bookkeeping are
    the seed's (eager rehash, no short-circuits, bucket scans, label
    adjacency); the merge re-encoding itself is shared with the current
    implementation, so the measured end-to-end speedup is conservative.
    The RNG protocol matches ``Slugger.summarize`` exactly, so the final
    cost must equal the current implementation's.
    """
    rng = ensure_rng(config.seed)
    state = SeedState(graph)
    for iteration in range(1, config.iterations + 1):
        threshold = config.threshold(iteration)
        candidate_sets = seed_generate_candidate_sets(
            graph, state.summary.hierarchy, sorted(state.roots), config,
            seed=rng.randrange(2**61),
        )
        for candidate_set in candidate_sets:
            seed_process_candidate_set(
                state, candidate_set, threshold, config, seed=rng.randrange(2**61)
            )
    if config.prune:
        prune(graph, state.summary, rounds=config.prune_rounds)
    return state.summary.cost()


def bench_full_run(graph: Graph, iterations: int) -> Dict[str, float]:
    """End-to-end: seed-replica driver versus the current implementation."""
    config = SluggerConfig(iterations=iterations, seed=0)
    started = time.perf_counter()
    cost_before = seed_full_run(graph, config)
    before = time.perf_counter() - started
    started = time.perf_counter()
    cost_after = Slugger(config).summarize(graph).cost()
    after = time.perf_counter() - started
    assert cost_before == cost_after, (
        f"full run diverged from the seed replica: {cost_before} != {cost_after}"
    )
    return {"before": before, "after": after}


def bench_substrate(graph: Graph, repeats: int) -> Dict[str, float]:
    """Adjacency-representation comparison: dict-of-sets vs dense vs CSR.

    Times a whole-graph shingle sweep (the canonical read-only pass) on
    the label substrate and on the dense substrate, and reports the
    approximate adjacency memory of all three representations.
    """
    dense = DenseAdjacency.from_graph(graph)
    csr = dense.freeze()
    label_time = best_of(repeats, lambda: subnode_shingles(graph, make_hash_function(42)))
    dense_time = best_of(repeats, lambda: dense_subnode_shingles(dense, make_hash_function(42)))
    # Cross-check: identical shingle values, just list- instead of dict-keyed.
    labels = dense.index.labels()
    dense_values = dense_subnode_shingles(dense, make_hash_function(42))
    label_values = subnode_shingles(graph, make_hash_function(42))
    assert all(label_values[labels[i]] == dense_values[i] for i in range(len(labels)))
    return {
        "label_sweep_seconds": label_time,
        "dense_sweep_seconds": dense_time,
        "dict_bytes": float(graph_adjacency_bytes(graph)),
        "dense_bytes": float(dense.approx_bytes()),
        "csr_bytes": float(csr.approx_bytes()),
    }


def bench_scaling(graph: Graph, iterations: int, workers_list: Sequence[int]) -> Dict[str, object]:
    """End-to-end SLUGGER wall time across worker counts on one graph.

    ``workers=1`` is the serial reference; every parallel run's summary
    cost is asserted equal to it (the pipeline's determinism guarantee),
    so the section measures pure execution speed, never a different
    computation.
    """
    section: Dict[str, object] = {
        "iterations": iterations,
        "cpus": available_cpus(),
        "fork_available": process_execution_available(),
        "workers": {},
    }
    reference_cost = None
    reference_seconds = None
    for workers in workers_list:
        config = SluggerConfig(iterations=iterations, seed=0)
        execution = None if workers == 1 else ExecutionConfig(workers=workers)
        started = time.perf_counter()
        result = Slugger(config, execution=execution).summarize(graph)
        elapsed = time.perf_counter() - started
        cost = result.cost()
        if reference_cost is None:
            reference_cost, reference_seconds = cost, elapsed
        else:
            assert cost == reference_cost, (
                f"workers={workers} diverged from the serial reference: "
                f"{cost} != {reference_cost}"
            )
        speedup = reference_seconds / elapsed if elapsed > 0 else float("inf")
        section["workers"][str(workers)] = {  # type: ignore[index]
            "seconds": elapsed,
            "speedup": speedup,
            "cost": cost,
            "replayed": result.execution_stats["replayed"],
            "fallbacks": result.execution_stats["fallbacks"],
        }
        print(f"  scaling workers={workers}   {elapsed:8.3f}s  speedup={speedup:5.2f}x  "
              f"cost={cost}")
    return section


def bench_serving(quick: bool) -> Dict[str, object]:
    """Throughput of many small requests: warm service vs per-call runs.

    ``requests`` SLUGGER jobs (rotating seeds) against one small graph,
    three ways:

    * ``cold``     — a fresh summarizer per call, substrate rebuilt every
      time (the pre-service per-call path);
    * ``engine_run`` — sequential ``engine.run`` (the default-service
      shim: interned substrate, no concurrency);
    * ``service``  — one warm :class:`SummaryService` (process mode where
      fork is available) executing the same requests with
      ``min(4, cpus)`` in-flight jobs.

    Every service result's cost is asserted equal to the corresponding
    ``engine.run`` — the serving determinism guarantee — so the section
    measures scheduling and reuse, never a different computation.
    """
    from repro import engine
    from repro.service import SummaryService

    graph = erdos_renyi_graph(600, 0.01, seed=2)
    requests = 10 if quick else 50
    iterations = 3
    seeds = [i % 5 for i in range(requests)]
    cpus = available_cpus()
    fork = process_execution_available()
    mode = "process" if fork and cpus >= 2 else "thread"
    inflight = max(1, min(4, cpus))

    started = time.perf_counter()
    cold_costs = [
        engine.create("slugger", iterations=iterations).summarize(graph, seed=seed).cost()
        for seed in seeds
    ]
    cold_seconds = time.perf_counter() - started

    started = time.perf_counter()
    run_costs = [
        engine.run("slugger", graph, seed=seed, iterations=iterations).cost()
        for seed in seeds
    ]
    engine_run_seconds = time.perf_counter() - started
    assert run_costs == cold_costs, "engine.run diverged from the cold per-call path"

    started = time.perf_counter()
    with SummaryService(mode=mode, max_inflight=inflight) as service:
        service.register_graph("bench", graph)
        jobs = [
            service.submit(method="slugger", graph_key="bench", seed=seed,
                           options={"iterations": iterations})
            for seed in seeds
        ]
        service_costs = [job.result(timeout=600).cost() for job in jobs]
    service_seconds = time.perf_counter() - started
    assert service_costs == run_costs, (
        "warm service diverged from per-call engine.run"
    )

    speedup = engine_run_seconds / service_seconds if service_seconds > 0 else float("inf")
    section: Dict[str, object] = {
        "graph": {"num_nodes": graph.num_nodes, "num_edges": graph.num_edges},
        "requests": requests,
        "iterations": iterations,
        "cpus": cpus,
        "fork_available": fork,
        "mode": mode,
        "inflight": inflight,
        "cold_seconds": cold_seconds,
        "engine_run_seconds": engine_run_seconds,
        "service_seconds": service_seconds,
        "speedup": speedup,
        "throughput_rps": requests / service_seconds if service_seconds > 0 else float("inf"),
    }
    print(f"  serving {requests} requests  cold={cold_seconds:8.3f}s  "
          f"engine.run={engine_run_seconds:8.3f}s  "
          f"service[{mode} x{inflight}]={service_seconds:8.3f}s  "
          f"speedup={speedup:5.2f}x")
    return section


def bench_ingest(graph: Graph, name: str, repeats: int) -> Dict[str, object]:
    """Getting a graph off disk: text parse vs sharded parse vs mmap load.

    Writes the fixture as a text edge list and as a packed binary
    container, then times the three ingest paths.  Every path's result
    is cross-checked for equality with the text parse (edge set, node
    insertion order, CSR arrays), so the section measures I/O strategy,
    never a different graph.
    """
    import os
    import tempfile

    from repro import storage
    from repro.graphs.io import read_edge_list, write_edge_list
    from repro.storage.ingest import byte_shards, sharded_read_edge_list

    cpus = available_cpus()
    fork = process_execution_available()
    section: Dict[str, object] = {
        "graph": name,
        "cpus": cpus,
        "fork_available": fork,
    }
    with tempfile.TemporaryDirectory() as workdir:
        text_path = f"{workdir}/graph.txt"
        container_path = f"{workdir}/graph.slg"
        write_edge_list(graph, text_path, header=False)

        text_seconds = best_of(repeats, lambda: read_edge_list(text_path))
        parsed = read_edge_list(text_path)

        # A shard floor sized for the fixture (the default 1 MiB floor
        # targets multi-million-edge files): the bench must measure a
        # parse that actually sharded, never a silent serial fallback.
        min_shard_bytes = 1 << 16
        sharded_seconds = None
        workers = min(4, max(2, cpus))
        shards = len(byte_shards(os.path.getsize(text_path), workers, min_shard_bytes))
        if fork and shards >= 2:
            sharded_seconds = best_of(
                repeats,
                lambda: sharded_read_edge_list(
                    text_path, workers=workers, min_shard_bytes=min_shard_bytes
                ),
            )
            sharded = sharded_read_edge_list(
                text_path, workers=workers, min_shard_bytes=min_shard_bytes
            )
            assert sharded.edge_set() == parsed.edge_set(), "sharded parse diverged"
            assert sharded.nodes() == parsed.nodes(), "sharded node order diverged"
            section["sharded_workers"] = workers
            section["sharded_shards"] = shards

        pack_started = time.perf_counter()
        info = storage.pack(parsed, container_path)
        pack_seconds = time.perf_counter() - pack_started

        def mmap_load():
            with storage.load(container_path) as stored:
                stored.csr()  # fully usable zero-copy substrate

        load_seconds = best_of(repeats, mmap_load)
        with storage.load(container_path) as stored:
            assert stored.graph().edge_set() == parsed.edge_set(), "container diverged"
            assert stored.graph().nodes() == parsed.nodes(), "container order diverged"
            reference = DenseAdjacency.from_graph(parsed).freeze()
            assert list(stored.csr().indptr) == list(reference.indptr)
            assert list(stored.csr().indices) == list(reference.indices)

        text_bytes = os.path.getsize(text_path)
        section.update({
            "num_nodes": graph.num_nodes,
            "num_edges": graph.num_edges,
            "text_parse_seconds": text_seconds,
            "sharded_parse_seconds": sharded_seconds,
            "pack_seconds": pack_seconds,
            "mmap_load_seconds": load_seconds,
            "load_speedup": text_seconds / load_seconds if load_seconds > 0 else float("inf"),
            "sharded_speedup": (text_seconds / sharded_seconds
                                if sharded_seconds else None),
            "text_bytes": text_bytes,
            "container_bytes": info.file_bytes,
            "size_ratio": text_bytes / info.file_bytes if info.file_bytes else float("inf"),
        })
    print(f"  ingest text parse      {section['text_parse_seconds']:8.3f}s  "
          f"mmap load={section['mmap_load_seconds']:8.3f}s  "
          f"({section['load_speedup']:5.2f}x)  pack={section['pack_seconds']:8.3f}s")
    if sharded_seconds is not None:
        print(f"  ingest sharded parse   {sharded_seconds:8.3f}s  "
              f"({section['sharded_speedup']:5.2f}x, "
              f"workers={section['sharded_workers']})")
    print(f"  ingest size            text={text_bytes/1024:.0f}KiB  "
          f"container={info.file_bytes/1024:.0f}KiB  "
          f"({section['size_ratio']:.2f}x smaller)")
    return section


def _summary_fingerprint(summary) -> tuple:
    return (
        summary.cost(),
        tuple(sorted(map(tuple, summary.p_edges()))),
        tuple(sorted(map(tuple, summary.n_edges()))),
    )


def bench_pruning(graph: Graph, iterations: int, workers_list: Sequence[int]) -> Dict[str, object]:
    """The pruning step across worker counts on one unpruned summary.

    One unpruned SLUGGER summary is built, then pruned from identical
    copies serially and through the sharded executor layer.  Every
    parallel result's summary is asserted bit-identical to the serial
    one (re-encode plans are exact and applied in canonical pair order),
    so the section measures pure execution speed.  The per-substep
    timing split comes from :func:`pruning_profile`.
    """
    config = SluggerConfig(iterations=iterations, seed=0, prune=False)
    base = Slugger(config).summarize(graph).summary
    section: Dict[str, object] = {
        "iterations": iterations,
        "cpus": available_cpus(),
        "fork_available": process_execution_available(),
        "workers": {},
    }
    reference_fingerprint = None
    reference_seconds = None
    for workers in workers_list:
        summary = base.copy()
        profile: Dict[str, object] = {}
        execution = None if workers == 1 else ExecutionConfig(
            workers=workers, prune_parallel_min_pairs=64
        )
        started = time.perf_counter()
        prune(graph, summary, rounds=2, execution=execution, profile=profile)
        elapsed = time.perf_counter() - started
        fingerprint = _summary_fingerprint(summary)
        if reference_fingerprint is None:
            reference_fingerprint, reference_seconds = fingerprint, elapsed
        else:
            assert fingerprint == reference_fingerprint, (
                f"pruning at workers={workers} diverged from the serial reference"
            )
        speedup = reference_seconds / elapsed if elapsed > 0 else float("inf")
        entry = pruning_profile(profile)
        entry.update({"seconds": elapsed, "speedup": speedup})
        section["workers"][str(workers)] = entry  # type: ignore[index]
        print(f"  pruning workers={workers}    {elapsed:8.3f}s  speedup={speedup:5.2f}x  "
              f"parallel_rounds={int(entry['parallel_rounds'])}  "
              f"serial_share={entry['serial_share']:.0%}")
    return section


def bench_coloring(graph: Graph, iterations: int, workers_list: Sequence[int]) -> Dict[str, object]:
    """Colored zero-threshold sweeps across worker counts.

    The fixture is community-structured, so the candidate-group
    interaction graph colors well and the final (zero-threshold)
    iteration runs as colored decide rounds.  Every parallel summary is
    asserted bit-identical to the serial reference; the section reports
    how many groups replayed colored traces versus fell to the serial
    reference inside the sweep.
    """
    section: Dict[str, object] = {
        "iterations": iterations,
        "cpus": available_cpus(),
        "fork_available": process_execution_available(),
        "workers": {},
    }
    reference_fingerprint = None
    reference_seconds = None
    engaged = False
    for workers in workers_list:
        config = SluggerConfig(iterations=iterations, seed=0)
        execution = None if workers == 1 else ExecutionConfig(
            workers=workers, shingle_parallel_min_nodes=0, colored_min_class=4,
        )
        started = time.perf_counter()
        result = Slugger(config, execution=execution).summarize(graph)
        elapsed = time.perf_counter() - started
        fingerprint = _summary_fingerprint(result.summary)
        if reference_fingerprint is None:
            reference_fingerprint, reference_seconds = fingerprint, elapsed
        else:
            assert fingerprint == reference_fingerprint, (
                f"colored run at workers={workers} diverged from the serial reference"
            )
        stats = result.execution_stats
        if workers > 1 and stats["colored_rounds"] > 0:
            engaged = True
        speedup = reference_seconds / elapsed if elapsed > 0 else float("inf")
        section["workers"][str(workers)] = {  # type: ignore[index]
            "seconds": elapsed,
            "speedup": speedup,
            "colored_rounds": stats["colored_rounds"],
            "colored_replayed": stats["colored_replayed"],
            "colored_serial": stats["colored_serial"],
        }
        print(f"  coloring workers={workers}   {elapsed:8.3f}s  speedup={speedup:5.2f}x  "
              f"rounds={stats['colored_rounds']}  replayed={stats['colored_replayed']}  "
              f"serial={stats['colored_serial']}")
    section["engaged"] = engaged
    return section


def bench_thaw(graph: Graph, repeats: int) -> Dict[str, object]:
    """Mmap-backed thaw-on-demand versus the eager O(m) dense thaw.

    Packs the fixture into a binary container, maps it back, and
    compares materializing the full mutable dense substrate up front
    (``DenseAdjacency.from_csr``) against the
    :class:`~repro.graphs.dense.LazyDenseAdjacency` overlay, whose
    construction is O(n) and whose read-dominated paths (degree reads,
    membership probes, sorted edge streaming) never build per-node sets.
    Contents are cross-checked equal, so the gate measures a pure
    algorithmic ratio — independent of core count.
    """
    import tempfile

    from repro import storage
    from repro.graphs.dense import LazyDenseAdjacency

    section: Dict[str, object] = {
        "num_nodes": graph.num_nodes,
        "num_edges": graph.num_edges,
    }
    with tempfile.TemporaryDirectory() as workdir:
        container_path = f"{workdir}/graph.slg"
        storage.pack(graph, container_path)
        with storage.load(container_path) as stored:
            csr = stored.csr()
            eager_seconds = best_of(repeats, lambda: DenseAdjacency.from_csr(csr))
            lazy_seconds = best_of(repeats, lambda: LazyDenseAdjacency(csr))
            eager = DenseAdjacency.from_csr(csr)
            lazy = LazyDenseAdjacency(csr)

            probes = [(u, (u * 7919) % graph.num_nodes) for u in range(0, graph.num_nodes, 97)]
            read_path_seconds = best_of(repeats, lambda: (
                sum(lazy.degree(u) for u, _ in probes),
                sum(1 for u, v in probes if lazy.has_edge(u, v)),
            ))
            assert lazy.thawed_nodes == 0, "read-only probes must not thaw nodes"
            assert sum(1 for _ in lazy.edge_ids()) == graph.num_edges
            assert lazy.thawed_nodes == 0, "sorted edge streaming must not thaw nodes"
            assert [lazy.degree(u) for u in range(graph.num_nodes)] == \
                [eager.degree(u) for u in range(graph.num_nodes)]
            assert list(lazy.neighbors) == list(eager.neighbors), "lazy thaw diverged"
            assert lazy.thawed_nodes == graph.num_nodes
    thaw_ratio = eager_seconds / lazy_seconds if lazy_seconds > 0 else float("inf")
    section.update({
        "eager_thaw_seconds": eager_seconds,
        "lazy_init_seconds": lazy_seconds,
        "read_path_seconds": read_path_seconds,
        "thaw_ratio": thaw_ratio,
    })
    print(f"  thaw eager             {eager_seconds:8.3f}s  lazy init={lazy_seconds:8.3f}s  "
          f"({thaw_ratio:5.1f}x)  read path={read_path_seconds:8.3f}s, 0 nodes thawed")
    return section


def bench_queries(graph: Graph, repeats: int) -> Dict[str, object]:
    """Dict-of-sets analytics versus the CSR-native query kernels.

    Packs the fixture into a container, maps it back, and serves
    pagerank / BFS / triangle counting straight off the mapped substrate
    through :func:`~repro.algorithms.providers.resolve_id_adjacency`,
    against inline replicas of the seed's label-keyed implementations
    (per-node Python sets, dict accumulators).  Results are
    cross-checked equal — pagerank bit-identically — and the serving
    path is asserted to materialize zero :class:`Graph` nodes and build
    no dense overlay, so the ratios measure pure algorithmic wins,
    independent of core count.
    """
    import tempfile
    from collections import deque

    from repro import storage
    from repro.algorithms import bfs_order, count_triangles, pagerank

    def legacy_pagerank(g: Graph, damping: float = 0.85, iterations: int = 20):
        nodes = g.nodes()
        num_nodes = len(nodes)
        scores = {node: 1.0 / num_nodes for node in nodes}
        for _ in range(iterations):
            incoming = {node: 0.0 for node in nodes}
            for node in nodes:
                adjacent = set(g.neighbor_set(node))
                if not adjacent:
                    continue
                share = scores[node] / len(adjacent)
                for neighbor in adjacent:
                    incoming[neighbor] += share
            total_flow = 0.0
            for node in nodes:
                incoming[node] *= damping
                total_flow += incoming[node]
            leak = (1.0 - total_flow) / num_nodes
            scores = {node: incoming[node] + leak for node in nodes}
        return scores

    def legacy_bfs(g: Graph, source):
        order, seen, queue = [], {source}, deque([source])
        while queue:
            node = queue.popleft()
            order.append(node)
            for neighbor in sorted(g.neighbor_set(node), key=repr):
                if neighbor not in seen:
                    seen.add(neighbor)
                    queue.append(neighbor)
        return order

    def legacy_triangles(g: Graph) -> int:
        cache = {node: set(g.neighbor_set(node)) for node in g.nodes()}
        corner_count = 0
        for node, adjacent in cache.items():
            for neighbor in adjacent:
                corner_count += len(adjacent & cache[neighbor])
        return corner_count // 6

    source = graph.nodes()[0]
    section: Dict[str, object] = {
        "num_nodes": graph.num_nodes,
        "num_edges": graph.num_edges,
    }
    with tempfile.TemporaryDirectory() as workdir:
        container_path = f"{workdir}/graph.slg"
        storage.pack(graph, container_path)
        with storage.load(container_path) as stored:
            for label, dict_fn, csr_fn in (
                ("pagerank", lambda: legacy_pagerank(graph),
                 lambda: pagerank(stored)),
                ("bfs", lambda: legacy_bfs(graph, source),
                 lambda: bfs_order(stored, source)),
                ("triangles", lambda: legacy_triangles(graph),
                 lambda: count_triangles(stored)),
            ):
                dict_result = dict_fn()
                csr_result = csr_fn()
                if label == "pagerank":
                    assert list(csr_result) == list(dict_result) and all(
                        csr_result[node] == dict_result[node] for node in dict_result
                    ), "CSR-native pagerank diverged from the dict implementation"
                else:
                    assert csr_result == dict_result, \
                        f"CSR-native {label} diverged from the dict implementation"
                dict_seconds = best_of(repeats, dict_fn)
                csr_seconds = best_of(repeats, csr_fn)
                speedup = dict_seconds / csr_seconds if csr_seconds > 0 else float("inf")
                section[label] = {
                    "dict_seconds": dict_seconds,
                    "csr_seconds": csr_seconds,
                    "speedup": speedup,
                }
                print(f"  query {label:<16} dict={dict_seconds:8.3f}s  "
                      f"csr={csr_seconds:8.3f}s  speedup={speedup:5.2f}x")
            assert stored.materializations == 0, \
                "serving queries must not materialize a label-keyed Graph"
            assert stored._dense is None, \
                "serving queries must not build the dense overlay"
    section["materializations"] = 0
    return section


def bench_summary_cache(quick: bool) -> Dict[str, object]:
    """Cold summarizer run versus a warm-start hit on the summary cache.

    Runs one SLUGGER request through a :class:`SummaryService` with a
    summary cache attached (cold: full compute + persist), then replays
    the identical request through a *fresh* service over the same cache
    directory — the warm path decodes the persisted ``SUMM`` sections
    off the mmap without running a single summarizer iteration.  Both
    summaries are cross-checked for bit-identity via
    :func:`summary_fingerprint`, so the speedup measures pure recompute
    avoidance (hardware-independent gate: warm >= 10x cold).
    """
    import tempfile

    from repro.service import SummaryService
    from repro.storage.summary_store import summary_fingerprint

    graph = (erdos_renyi_graph(3000, 0.004, seed=3) if not quick
             else erdos_renyi_graph(600, 0.01, seed=3))
    iterations = 5 if not quick else 3
    section: Dict[str, object] = {
        "graph": {"num_nodes": graph.num_nodes, "num_edges": graph.num_edges},
        "iterations": iterations,
    }
    with tempfile.TemporaryDirectory() as workdir:
        with SummaryService(summary_cache_dir=workdir) as service:
            service.register_graph("bench", graph)
            started = time.perf_counter()
            cold = service.submit(method="slugger", graph_key="bench", seed=0,
                                  options={"iterations": iterations},
                                  block=True).result(timeout=600)
            cold_seconds = time.perf_counter() - started
            cold_stats = service.stats()
        assert cold_stats["summary_cache_stores"] == 1, \
            "cold run must persist exactly one summary container"
        assert cold_stats["summary_cache_errors"] == 0

        # A fresh service over the same cache directory: no in-memory
        # state survives, so a hit proves the on-disk container alone
        # reproduces the result.
        with SummaryService(summary_cache_dir=workdir) as service:
            service.register_graph("bench", graph)
            started = time.perf_counter()
            warm = service.submit(method="slugger", graph_key="bench", seed=0,
                                  options={"iterations": iterations},
                                  block=True).result(timeout=600)
            warm_seconds = time.perf_counter() - started
            warm_stats = service.stats()
        assert warm_stats["summary_cache_hits"] == 1, \
            "warm run must be served from the summary cache"
        assert warm.details.get("summary_cache") == "hit"
        assert summary_fingerprint(cold.summary) == summary_fingerprint(warm.summary), \
            "warm-start summary diverged from the cold compute"
        assert cold.history == warm.history, \
            "warm-start history diverged from the cold compute"
    speedup = cold_seconds / warm_seconds if warm_seconds > 0 else float("inf")
    section.update({
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "speedup": speedup,
        "stores": cold_stats["summary_cache_stores"],
        "hits": warm_stats["summary_cache_hits"],
    })
    print(f"  summary cache cold     {cold_seconds:8.3f}s  warm={warm_seconds:8.3f}s  "
          f"({speedup:5.1f}x)  bit-identical, zero warm iterations")
    return section


def bench_obs(graph: Graph, iterations: int, repeats: int) -> Dict[str, object]:
    """Telemetry overhead: a fully instrumented run versus the null path.

    The same SLUGGER run three ways — telemetry disabled (the null-object
    default), with a live :class:`~repro.obs.MetricsRegistry`, and with a
    registry *plus* a :class:`~repro.obs.Tracer` — best-of-``repeats``
    each.  Costs are cross-checked identical (telemetry is pure
    observation), and the full-telemetry run must stay within 3% of the
    disabled wall time: the null spans already pay the two
    ``perf_counter`` calls per phase, so instrumentation only adds the
    registry/span bookkeeping.
    """
    from repro.engine.hooks import RunControl
    from repro.obs import MetricsRegistry, Tracer

    config = SluggerConfig(iterations=iterations, seed=0)

    def run_disabled() -> int:
        return Slugger(config).summarize(graph).cost()

    def run_metered() -> int:
        control = RunControl(metrics=MetricsRegistry())
        return Slugger(config).summarize(graph, control=control).cost()

    def run_traced() -> int:
        control = RunControl(metrics=MetricsRegistry(), tracer=Tracer())
        return Slugger(config).summarize(graph, control=control).cost()

    cost_disabled = run_disabled()
    assert run_metered() == cost_disabled, "metrics perturbed the summary cost"
    assert run_traced() == cost_disabled, "tracing perturbed the summary cost"

    disabled = best_of(repeats, run_disabled)
    metered = best_of(repeats, run_metered)
    traced = best_of(repeats, run_traced)
    overhead = traced / disabled - 1.0 if disabled > 0 else 0.0
    section: Dict[str, object] = {
        "num_nodes": graph.num_nodes,
        "num_edges": graph.num_edges,
        "iterations": iterations,
        "disabled_seconds": disabled,
        "metrics_seconds": metered,
        "metrics_and_trace_seconds": traced,
        "overhead": overhead,
        "cost": cost_disabled,
    }
    print(f"  obs disabled           {disabled:8.3f}s  metrics={metered:8.3f}s  "
          f"metrics+trace={traced:8.3f}s  overhead={overhead:+.1%}")
    return section


def check_devtools_isolation() -> None:
    """Importing ``repro`` must not import the ``repro.devtools`` analyzer.

    The lint framework is a dev-time tool; pulling it (ast walks, rule
    registry) into serving imports would tax every cold start.  Checked
    in a fresh interpreter so this process's own imports cannot mask a
    leak.
    """
    script = (
        "import sys\n"
        "import repro\n"
        "import repro.engine\n"
        "import repro.service\n"
        "leaked = sorted(m for m in sys.modules if m.startswith('repro.devtools'))\n"
        "assert not leaked, 'importing repro pulled in ' + ', '.join(leaked)\n"
    )
    subprocess.run([sys.executable, "-c", script], check=True)
    print("PASS: importing repro does not import repro.devtools")


def report(label: str, timings: Dict[str, float]) -> float:
    speedup = timings["before"] / timings["after"] if timings["after"] > 0 else float("inf")
    print(f"  {label:<22} before={timings['before']:8.3f}s  "
          f"after={timings['after']:8.3f}s  speedup={speedup:5.2f}x")
    return speedup


def main(argv: Sequence[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small graphs, fewer repeats (CI smoke mode; no speedup assertions)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write a machine-readable BENCH_*.json-style record to PATH")
    args = parser.parse_args(argv)

    if args.quick:
        graphs = [
            ("er-1k", erdos_renyi_graph(1000, 0.01, seed=1)),
            ("caveman-20x10", caveman_graph(20, 10, 0.05, seed=1)),
        ]
        repeats, iterations = 2, 2
    else:
        graphs = [
            ("er-10k", erdos_renyi_graph(10000, 0.003, seed=1)),
            ("caveman-100x20", caveman_graph(100, 20, 0.05, seed=1)),
        ]
        repeats, iterations = 3, 3

    check_devtools_isolation()

    record: Dict[str, object] = {
        "bench": "hotpaths",
        "quick": args.quick,
        "python": platform.python_version(),
        "devtools_isolated": True,
        "graphs": {},
    }
    candidate_speedups: Dict[str, float] = {}
    full_run_speedups: Dict[str, float] = {}
    memory_reductions: Dict[str, float] = {}
    for name, graph in graphs:
        print(f"{name}: n={graph.num_nodes} m={graph.num_edges}")
        graph_record: Dict[str, object] = {
            "num_nodes": graph.num_nodes, "num_edges": graph.num_edges,
        }
        timings = bench_shingles(graph, repeats)
        graph_record["shingles"] = {**timings, "speedup": report("subnode shingles", timings)}
        timings = bench_candidates(graph, repeats)
        candidate_speedups[name] = report("candidate generation", timings)
        graph_record["candidates"] = {**timings, "speedup": candidate_speedups[name]}
        timings = bench_merge_sweep(graph)
        graph_record["merge_sweep"] = {**timings, "speedup": report("merge sweep", timings)}
        timings = bench_full_run(graph, iterations)
        full_run_speedups[name] = report("full run (end-to-end)", timings)
        graph_record["full_run"] = {**timings, "speedup": full_run_speedups[name]}
        substrate = bench_substrate(graph, repeats)
        memory_reductions[name] = 1.0 - substrate["csr_bytes"] / substrate["dict_bytes"]
        substrate["csr_memory_reduction"] = memory_reductions[name]
        graph_record["substrate"] = substrate
        print(f"  substrate sweep        label={substrate['label_sweep_seconds']:8.3f}s  "
              f"dense={substrate['dense_sweep_seconds']:8.3f}s")
        print(f"  adjacency memory       dict={substrate['dict_bytes']/1024:.0f}KiB  "
              f"dense={substrate['dense_bytes']/1024:.0f}KiB  "
              f"csr={substrate['csr_bytes']/1024:.0f}KiB  "
              f"(csr {memory_reductions[name]:.0%} smaller than dict)")
        cost = bench_validation(graph, iterations)
        graph_record["cost"] = cost
        print(f"  validation             lossless OK (cost={cost})")
        record["graphs"][name] = graph_record  # type: ignore[index]

    # Worker-count scaling of the staged phase pipeline on the ER fixture.
    scaling_name, scaling_graph = graphs[0]
    scaling_iterations = 5 if not args.quick else 3
    scaling_workers = (1, 2, 4) if not args.quick else (1, 2)
    print(f"{scaling_name}: pipeline scaling (iterations={scaling_iterations})")
    record["scaling"] = {
        "graph": scaling_name,
        **bench_scaling(scaling_graph, scaling_iterations, scaling_workers),
    }

    # Warm-pool serving throughput over many small requests.
    print("serving: warm service vs per-call engine.run")
    record["serving"] = bench_serving(args.quick)

    # Disk-to-substrate ingest paths on the ER fixture.
    ingest_name, ingest_graph = graphs[0]
    print(f"{ingest_name}: ingest (text parse vs sharded parse vs mmap load)")
    record["ingest"] = bench_ingest(ingest_graph, ingest_name, repeats)

    # Parallel pruning of one unpruned summary on the ER fixture.
    pruning_name, pruning_graph = graphs[0]
    pruning_workers = (1, 2, 4) if not args.quick else (1, 2)
    print(f"{pruning_name}: pruning (serial vs sharded scans/re-encode)")
    record["pruning"] = {
        "graph": pruning_name,
        **bench_pruning(pruning_graph, iterations, pruning_workers),
    }

    # Colored zero-threshold sweeps on a community-structured fixture
    # (the ER fixtures interlock and would correctly degenerate).
    coloring_graph = (caveman_graph(120, 12, 0.01, seed=2) if not args.quick
                      else caveman_graph(30, 10, 0.0, seed=0))
    coloring_iterations = 5 if not args.quick else 3
    print(f"coloring: colored zero-threshold sweeps on a caveman fixture "
          f"(n={coloring_graph.num_nodes}, iterations={coloring_iterations})")
    record["coloring"] = bench_coloring(
        coloring_graph, coloring_iterations, pruning_workers
    )

    # Thaw-on-demand read path versus the eager O(m) dense thaw.
    print(f"{pruning_name}: lazy thaw-on-demand vs eager dense thaw")
    record["thaw"] = {"graph": pruning_name, **bench_thaw(pruning_graph, repeats)}

    # CSR-native query kernels versus the dict-of-sets analytics.
    queries_name, queries_graph = graphs[0]
    print(f"{queries_name}: query serving (dict-of-sets vs CSR-native kernels)")
    record["queries"] = {
        "graph": queries_name,
        **bench_queries(queries_graph, repeats),
    }

    # Summary persistence: cold compute vs warm-start off the cache.
    print("summary cache: cold compute vs warm-start (SUMM container mmap)")
    record["summary_cache"] = bench_summary_cache(args.quick)

    # Telemetry overhead: instrumented vs disabled on the ER fixture.
    obs_name, obs_graph = graphs[0]
    print(f"{obs_name}: telemetry overhead (disabled vs metrics vs metrics+trace)")
    record["obs"] = {"graph": obs_name, **bench_obs(obs_graph, iterations, repeats)}

    record["peak_rss_kb"] = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss

    if not args.quick:
        failures: List[str] = []
        er_speedup = candidate_speedups["er-10k"]
        if er_speedup < 2.0:
            failures.append(f"candidate generation on the 10k-node ER graph is only "
                            f"{er_speedup:.2f}x faster than the seed (need >= 2x)")
        else:
            print(f"PASS: candidate generation on the 10k-node ER graph is {er_speedup:.2f}x "
                  f"faster than the seed")
        er_full = full_run_speedups["er-10k"]
        er_memory = memory_reductions["er-10k"]
        if er_full < 1.3 and er_memory < 0.30:
            failures.append(f"substrate shows neither >= 1.3x end-to-end speedup "
                            f"(got {er_full:.2f}x) nor >= 30% adjacency-memory reduction "
                            f"(got {er_memory:.0%}) on the 10k-node ER run")
        else:
            print(f"PASS: 10k-node ER full run {er_full:.2f}x faster end-to-end; "
                  f"CSR adjacency {er_memory:.0%} smaller than dict-of-sets")
        scaling = record["scaling"]  # type: ignore[assignment]
        four = scaling["workers"].get("4")  # type: ignore[index]
        if not scaling["fork_available"] or scaling["cpus"] < 4 or four is None:
            # The gate measures hardware parallelism; on boxes without 4
            # usable cores (or without fork) it cannot be meaningful.
            scaling["gate"] = "skipped"  # type: ignore[index]
            print(f"SKIP: scaling gate needs >= 4 usable CPUs and fork "
                  f"(cpus={scaling['cpus']}, fork={scaling['fork_available']}); "
                  f"determinism cross-check still enforced")
        elif four["speedup"] < 1.5:
            scaling["gate"] = "failed"  # type: ignore[index]
            failures.append(f"pipeline scaling on the 10k-node ER graph is only "
                            f"{four['speedup']:.2f}x end-to-end at 4 workers (need >= 1.5x)")
        else:
            scaling["gate"] = "passed"  # type: ignore[index]
            print(f"PASS: 10k-node ER full run {four['speedup']:.2f}x faster "
                  f"end-to-end at 4 workers")
        ingest = record["ingest"]  # type: ignore[assignment]
        if ingest["load_speedup"] < 5.0:
            ingest["load_gate"] = "failed"  # type: ignore[index]
            failures.append(f"mmap container load is only {ingest['load_speedup']:.2f}x "
                            f"faster than the text parse (need >= 5x)")
        else:
            ingest["load_gate"] = "passed"  # type: ignore[index]
            print(f"PASS: mmap container load {ingest['load_speedup']:.2f}x faster "
                  f"than the text parse on the 10k-node ER fixture")
        if ingest["size_ratio"] < 2.0:
            ingest["size_gate"] = "failed"  # type: ignore[index]
            failures.append(f"container is only {ingest['size_ratio']:.2f}x smaller "
                            f"than the text edge list (need >= 2x)")
        else:
            ingest["size_gate"] = "passed"  # type: ignore[index]
            print(f"PASS: container {ingest['size_ratio']:.2f}x smaller than the "
                  f"text edge list")
        if (not ingest["fork_available"] or ingest["cpus"] < 2
                or ingest["sharded_speedup"] is None):
            # Sharded parsing measures hardware parallelism; without
            # fork, a second core, or a file big enough to split, the
            # equality cross-check still ran (when shards existed), only
            # the speedup gate is meaningless.
            ingest["sharded_gate"] = "skipped"  # type: ignore[index]
            print(f"SKIP: sharded-parse gate needs >= 2 usable CPUs, fork, and "
                  f">= 2 shards (cpus={ingest['cpus']}, "
                  f"fork={ingest['fork_available']}); "
                  f"equality cross-check still enforced where shards existed")
        elif ingest["sharded_speedup"] < 1.2:
            ingest["sharded_gate"] = "failed"  # type: ignore[index]
            failures.append(f"sharded edge-list parse is only "
                            f"{ingest['sharded_speedup']:.2f}x the serial parse "
                            f"(need >= 1.2x)")
        else:
            ingest["sharded_gate"] = "passed"  # type: ignore[index]
            print(f"PASS: sharded parse {ingest['sharded_speedup']:.2f}x faster "
                  f"than the serial parse")
        serving = record["serving"]  # type: ignore[assignment]
        if not serving["fork_available"] or serving["cpus"] < 2:
            # Warm-pool throughput needs real hardware parallelism; on a
            # single-CPU (or fork-less) box the determinism cross-check
            # still ran, only the speedup gate is meaningless.
            serving["gate"] = "skipped"  # type: ignore[index]
            print(f"SKIP: serving gate needs >= 2 usable CPUs and fork "
                  f"(cpus={serving['cpus']}, fork={serving['fork_available']}); "
                  f"determinism cross-check still enforced")
        elif serving["speedup"] < 1.3:
            serving["gate"] = "failed"  # type: ignore[index]
            failures.append(f"warm-pool serving is only {serving['speedup']:.2f}x "
                            f"the per-call engine.run throughput (need >= 1.3x)")
        else:
            serving["gate"] = "passed"  # type: ignore[index]
            print(f"PASS: warm-pool service served {serving['requests']} requests "
                  f"{serving['speedup']:.2f}x faster than per-call engine.run")
        pruning_section = record["pruning"]  # type: ignore[assignment]
        four_prune = pruning_section["workers"].get("4")  # type: ignore[index]
        if (not pruning_section["fork_available"] or pruning_section["cpus"] < 4
                or four_prune is None):
            # Like the scaling gate: speedup needs real cores; the
            # bit-identity cross-check inside bench_pruning already ran.
            pruning_section["gate"] = "skipped"  # type: ignore[index]
            print(f"SKIP: pruning gate needs >= 4 usable CPUs and fork "
                  f"(cpus={pruning_section['cpus']}, "
                  f"fork={pruning_section['fork_available']}); "
                  f"bit-identity cross-check still enforced")
        elif four_prune["speedup"] < 2.0:
            pruning_section["gate"] = "failed"  # type: ignore[index]
            failures.append(f"parallel pruning on the 10k-node ER graph is only "
                            f"{four_prune['speedup']:.2f}x at 4 workers (need >= 2x)")
        else:
            pruning_section["gate"] = "passed"  # type: ignore[index]
            print(f"PASS: 10k-node ER pruning {four_prune['speedup']:.2f}x faster "
                  f"at 4 workers")
        coloring_section = record["coloring"]  # type: ignore[assignment]
        four_color = coloring_section["workers"].get("4")  # type: ignore[index]
        if not coloring_section["engaged"]:
            coloring_section["gate"] = "failed"  # type: ignore[index]
            failures.append("colored sweep never engaged on the community-structured "
                            "fixture (zero colored rounds at every worker count)")
        elif (not coloring_section["fork_available"] or coloring_section["cpus"] < 4
                or four_color is None):
            coloring_section["gate"] = "skipped"  # type: ignore[index]
            print(f"SKIP: coloring gate needs >= 4 usable CPUs and fork "
                  f"(cpus={coloring_section['cpus']}, "
                  f"fork={coloring_section['fork_available']}); "
                  f"bit-identity and engagement cross-checks still enforced")
        elif four_color["speedup"] < 1.2:
            coloring_section["gate"] = "failed"  # type: ignore[index]
            failures.append(f"colored zero-threshold runs are only "
                            f"{four_color['speedup']:.2f}x at 4 workers (need >= 1.2x)")
        else:
            coloring_section["gate"] = "passed"  # type: ignore[index]
            print(f"PASS: colored zero-threshold runs {four_color['speedup']:.2f}x "
                  f"faster at 4 workers")
        thaw_section = record["thaw"]  # type: ignore[assignment]
        if thaw_section["thaw_ratio"] < 5.0:
            thaw_section["gate"] = "failed"  # type: ignore[index]
            failures.append(f"lazy dense construction is only "
                            f"{thaw_section['thaw_ratio']:.2f}x cheaper than the "
                            f"eager O(m) thaw (need >= 5x)")
        else:
            thaw_section["gate"] = "passed"  # type: ignore[index]
            print(f"PASS: lazy dense construction {thaw_section['thaw_ratio']:.1f}x "
                  f"cheaper than the eager thaw; read path thawed 0 nodes")
        summary_cache_section = record["summary_cache"]  # type: ignore[assignment]
        if summary_cache_section["speedup"] < 10.0:
            summary_cache_section["gate"] = "failed"  # type: ignore[index]
            failures.append(f"summary-cache warm start is only "
                            f"{summary_cache_section['speedup']:.2f}x the cold "
                            f"compute (need >= 10x)")
        else:
            summary_cache_section["gate"] = "passed"  # type: ignore[index]
            print(f"PASS: summary-cache warm start "
                  f"{summary_cache_section['speedup']:.1f}x the cold compute; "
                  f"results bit-identical")
        queries_section = record["queries"]  # type: ignore[assignment]
        slow_queries = [
            (label, queries_section[label]["speedup"])  # type: ignore[index]
            for label in ("pagerank", "bfs", "triangles")
            if queries_section[label]["speedup"] < 3.0  # type: ignore[index]
        ]
        if slow_queries:
            queries_section["gate"] = "failed"  # type: ignore[index]
            for label, speedup in slow_queries:
                failures.append(f"CSR-native {label} is only {speedup:.2f}x the "
                                f"dict-of-sets implementation on the 10k-node ER "
                                f"graph (need >= 3x)")
        else:
            queries_section["gate"] = "passed"  # type: ignore[index]
            speedups = ", ".join(
                f"{label} {queries_section[label]['speedup']:.1f}x"  # type: ignore[index]
                for label in ("pagerank", "bfs", "triangles")
            )
            print(f"PASS: CSR-native query kernels >= 3x the dict implementations "
                  f"({speedups}); 0 graphs materialized, 0 dense overlays built")
        obs_section = record["obs"]  # type: ignore[assignment]
        if obs_section["overhead"] > 0.03:
            obs_section["gate"] = "failed"  # type: ignore[index]
            failures.append(f"full telemetry costs {obs_section['overhead']:+.1%} "
                            f"over the disabled path on the 10k-node ER run "
                            f"(need <= +3%)")
        else:
            obs_section["gate"] = "passed"  # type: ignore[index]
            print(f"PASS: full telemetry overhead {obs_section['overhead']:+.1%} "
                  f"on the 10k-node ER run; costs identical")
    else:
        record["scaling"]["gate"] = "not-evaluated"  # type: ignore[index]
        record["serving"]["gate"] = "not-evaluated"  # type: ignore[index]
        for gate in ("load_gate", "size_gate", "sharded_gate"):
            record["ingest"][gate] = "not-evaluated"  # type: ignore[index]
        for section in ("pruning", "coloring", "thaw", "queries", "summary_cache",
                        "obs"):
            record[section]["gate"] = "not-evaluated"  # type: ignore[index]
        failures = []

    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"json record written to {args.json}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
