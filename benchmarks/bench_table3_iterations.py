"""Table III: effect of the iteration number T on output size.

Paper result: the relative size of SLUGGER's output shrinks as T grows
and has almost converged by T = 40 (most of the improvement is already
realized by T = 10-20).  The bench sweeps T on a dataset subset and
checks the monotone-improvement trend and convergence.
"""

from __future__ import annotations

from bench_config import bench_datasets, full_mode, write_result

from repro.experiments import format_table, iteration_sweep


def test_table3_iteration_sweep(benchmark):
    datasets = bench_datasets("medium")
    iteration_values = (1, 5, 10, 20, 40) if full_mode() else (1, 2, 5, 10)

    def run():
        return iteration_sweep(datasets, iteration_values=iteration_values, seed=0)

    records = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {
            "dataset": record.parameters["dataset"],
            "T": record.parameters["iterations"],
            "relative_size": record.values["relative_size"],
        }
        for record in records
    ]
    table = format_table(rows, ["dataset", "T", "relative_size"],
                         title="Table III — relative size of outputs vs iteration number T")
    write_result("table3_iterations", table)

    by_dataset = {}
    for record in records:
        by_dataset.setdefault(record.parameters["dataset"], {})[
            record.parameters["iterations"]
        ] = record.values["relative_size"]
    smallest, largest = min(iteration_values), max(iteration_values)
    for dataset, sizes in by_dataset.items():
        # More iterations never hurt (up to a small randomness slack) and
        # the last doubling of T changes the result only marginally.
        assert sizes[largest] <= sizes[smallest] + 0.01, f"no improvement on {dataset}"
        previous = sizes[sorted(sizes)[-2]]
        assert abs(sizes[largest] - previous) < 0.06
