"""Table IV: effect of each pruning substep.

Paper result: every pruning substep decreases the output size, the
maximum hierarchy height, and the average leaf depth, with substep 1
giving the largest reduction.  The bench applies the substeps
cumulatively (stage 0 = no pruning, stage 3 = all substeps) and checks
the monotone improvement.
"""

from __future__ import annotations

from bench_config import bench_datasets, bench_iterations, write_result

from repro.experiments import format_table, pruning_ablation


def test_table4_pruning_substeps(benchmark):
    datasets = bench_datasets("medium")
    iterations = bench_iterations()

    def run():
        return pruning_ablation(datasets, iterations=iterations, seed=0)

    records = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {
            "dataset": record.parameters["dataset"],
            "stage": record.parameters["stage"],
            "relative_size": record.values["relative_size"],
            "max_height": record.values["max_height"],
            "average_leaf_depth": record.values["average_leaf_depth"],
        }
        for record in records
    ]
    table = format_table(
        rows,
        ["dataset", "stage", "relative_size", "max_height", "average_leaf_depth"],
        title="Table IV — effect of the pruning substeps (stage 0 = no pruning)",
    )
    write_result("table4_pruning", table)

    by_dataset = {}
    for record in records:
        by_dataset.setdefault(record.parameters["dataset"], {})[record.parameters["stage"]] = (
            record.values
        )
    for dataset, stages in by_dataset.items():
        assert stages[3]["relative_size"] <= stages[0]["relative_size"] + 1e-9
        assert stages[3]["max_height"] <= stages[0]["max_height"] + 1e-9
        assert stages[3]["average_leaf_depth"] <= stages[0]["average_leaf_depth"] + 1e-9
        # Stages are cumulative, so sizes are monotone non-increasing.
        assert stages[1]["relative_size"] <= stages[0]["relative_size"] + 1e-9
        assert stages[2]["relative_size"] <= stages[1]["relative_size"] + 1e-9
        assert stages[3]["relative_size"] <= stages[2]["relative_size"] + 1e-9
