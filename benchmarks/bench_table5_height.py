"""Table V: effect of the height bound H_b on hierarchy trees.

Paper result: as the height bound H_b grows, the average depth of leaf
nodes increases and the relative size of outputs decreases; the results
at H_b = 10 are already close to the unbounded algorithm.  The bench
sweeps H_b and checks both trends.
"""

from __future__ import annotations

from bench_config import bench_datasets, bench_iterations, full_mode, write_result

from repro.experiments import format_table, height_sweep


def test_table5_height_bound(benchmark):
    datasets = bench_datasets("medium")
    iterations = bench_iterations()
    bounds = (2, 5, 7, 10, None) if full_mode() else (1, 2, 5, None)

    def run():
        return height_sweep(datasets, bounds=bounds, iterations=iterations, seed=0)

    records = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {
            "dataset": record.parameters["dataset"],
            "H_b": "inf" if record.parameters["height_bound"] is None else record.parameters["height_bound"],
            "relative_size": record.values["relative_size"],
            "average_leaf_depth": record.values["average_leaf_depth"],
        }
        for record in records
    ]
    table = format_table(rows, ["dataset", "H_b", "relative_size", "average_leaf_depth"],
                         title="Table V — effect of the height bound H_b")
    write_result("table5_height", table)

    by_dataset = {}
    for record in records:
        by_dataset.setdefault(record.parameters["dataset"], {})[
            record.parameters["height_bound"]
        ] = record.values
    tightest = bounds[0]
    for dataset, results in by_dataset.items():
        # The unbounded algorithm compresses at least as well as the most
        # constrained variant.
        assert results[None]["relative_size"] <= results[tightest]["relative_size"] + 0.01
        # Relaxing the bound lets trees grow deeper: the deepest average
        # leaf depth in the sweep is reached at some bound looser than the
        # tightest one.  (On the small analogues the depth of the fully
        # unbounded run can dip again because the final pruning step splices
        # more aggressively, so the comparison is against the sweep maximum
        # rather than the last column.)
        depth_at_tightest = results[tightest]["average_leaf_depth"]
        deepest_relaxed = max(
            values["average_leaf_depth"]
            for bound, values in results.items()
            if bound != tightest
        )
        assert deepest_relaxed >= depth_at_tightest - 0.05
