"""Theorem 1 / Fig. 3: expressiveness gap between the two models.

Paper result: the Fig. 3 graph family admits an o(n^1.5)-edge encoding
under the hierarchical model but requires Ω(n^1.5) edges under the flat
model, i.e. the gap between the two models' best encodings widens with n.
The bench compares SLUGGER (hierarchical) with SWeG (flat) on the family
and checks that the hierarchical encoding never loses and that the gap
does not shrink as n grows.
"""

from __future__ import annotations

from bench_config import full_mode, write_result

from repro.experiments import format_table, theorem1_experiment


def test_theorem1_expressiveness_gap(benchmark):
    sizes = (4, 6, 8, 10) if full_mode() else (4, 6, 8)

    def run():
        return theorem1_experiment(sizes=sizes, k=2, iterations=8, seed=0)

    records = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {
            "n": record.parameters["n"],
            "num_edges": record.values["num_edges"],
            "hierarchical_cost": record.values["hierarchical_cost"],
            "flat_cost": record.values["flat_cost"],
            "flat_over_hierarchical": record.values["flat_over_hierarchical"],
        }
        for record in records
    ]
    table = format_table(
        rows,
        ["n", "num_edges", "hierarchical_cost", "flat_cost", "flat_over_hierarchical"],
        title="Theorem 1 — hierarchical vs flat encoding cost on the Fig. 3 family",
    )
    write_result("theorem1_expressiveness", table)

    for row in rows:
        assert row["hierarchical_cost"] <= row["flat_cost"]
    # The advantage of the hierarchical model does not vanish as n grows.
    assert rows[-1]["flat_over_hierarchical"] >= rows[0]["flat_over_hierarchical"] * 0.9
