"""Pytest fixtures for the benchmark suite (helpers live in bench_config.py)."""

from __future__ import annotations

import pytest

from bench_config import write_result


@pytest.fixture
def results_writer():
    """Fixture handing benches the :func:`bench_config.write_result` helper."""
    return write_result
