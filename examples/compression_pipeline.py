"""Summarize-then-compress: using SLUGGER as a front end for bit compression.

Run with::

    python examples/compression_pipeline.py

The paper (Sect. I) argues that lossless summarization composes with any
downstream graph compressor because its outputs are themselves graphs.
This example makes that concrete: it gap-compresses a hyperlink-style
graph directly, then compresses the SLUGGER summary of the same graph,
and compares bits per edge across gap codes and node orderings.  Both
paths are lossless — the script verifies every round trip.
"""

from __future__ import annotations

from repro import SluggerConfig, load_dataset, summarize
from repro.compression import (
    available_codes,
    available_orderings,
    compress_graph,
    compress_hierarchical_summary,
    compression_report,
)


def main() -> None:
    # 1. A web-like graph: the CNR-2000 analogue (copying-model hyperlinks).
    graph = load_dataset("CN", seed=0)
    print(f"input graph: {graph.num_nodes} nodes, {graph.num_edges} edges")

    # 2. Baseline: gap-compress the raw adjacency lists with every
    #    code x ordering combination and report bits per edge.
    print("\nraw-graph gap compression (bits per edge):")
    print(f"{'ordering':<10}" + "".join(f"{code:>10}" for code in available_codes()))
    for ordering in available_orderings():
        cells = []
        for code in available_codes():
            compressed = compress_graph(graph, code=code, ordering=ordering, seed=0)
            assert compressed.decompress() == graph  # lossless
            cells.append(f"{compressed.bits_per_edge():>10.2f}")
        print(f"{ordering:<10}" + "".join(cells))

    # 3. Pipeline: summarize first, then compress the summary's three
    #    output graphs (P+, P-, H) with the same machinery.
    summary = summarize(graph, SluggerConfig(iterations=10, seed=0)).summary
    summary.validate(graph)
    compressed_summary = compress_hierarchical_summary(summary, code="gamma")
    restored = compressed_summary.decompress()
    assert restored.decompress() == graph  # still lossless end to end
    print(f"\nSLUGGER summary: cost={summary.cost()} edges "
          f"(relative size {summary.relative_size(graph):.3f})")
    print(f"compressed summary payload: {compressed_summary.size_bits()} bits "
          f"({compressed_summary.size_bits() / graph.num_edges:.2f} bits/edge)")

    # 4. Head-to-head report, the same numbers the E12 bench regenerates.
    report = compression_report(graph, summary, code="gamma", ordering="bfs", seed=0)
    print("\nsummarize-then-compress vs raw compression (gamma code, BFS ordering):")
    print(f"  raw graph      : {report['raw_bits_per_edge']:.2f} bits/edge")
    print(f"  SLUGGER summary: {report['summary_bits_per_edge']:.2f} bits/edge")
    print(f"  pipeline ratio : {report['pipeline_ratio']:.3f} "
          f"({'wins' if report['pipeline_ratio'] < 1 else 'loses'} vs compressing the raw graph)")


if __name__ == "__main__":
    main()
