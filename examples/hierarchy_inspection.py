"""Inspecting a hierarchical summary: trees, cost decomposition, exports.

Run with::

    python examples/hierarchy_inspection.py

The hierarchical model's selling point is that supernodes nest — groups
within groups, like the university/department/lab example of Sect. II-A.
This example summarizes a nested-community graph, prints the resulting
hierarchy as an ASCII tree, decomposes the encoding cost per root
(Eq. 2-6), and writes a Graphviz DOT rendering next to the script.
"""

from __future__ import annotations

from pathlib import Path

from repro import SluggerConfig, summarize
from repro.analysis import cost_decomposition, cost_per_root
from repro.graphs import nested_partition_graph
from repro.model import ascii_hierarchy, summary_to_dot, supernode_size_distribution


def main() -> None:
    # 1. A graph with explicit two-level nested communities: 3 groups of
    #    4 sub-groups of 5 nodes (think university -> department -> lab).
    graph = nested_partition_graph((3, 4, 5), (0.01, 0.15, 0.9), seed=0)
    print(f"input graph: {graph.num_nodes} nodes, {graph.num_edges} edges")

    # 2. Summarize with SLUGGER.
    result = summarize(graph, SluggerConfig(iterations=15, seed=0))
    summary = result.summary
    summary.validate(graph)
    print(f"encoding cost {summary.cost()} "
          f"(relative size {summary.relative_size(graph):.3f}), "
          f"max tree height {summary.hierarchy.max_height()}")

    # 3. Supernode size distribution: how much of the graph was grouped?
    histogram = supernode_size_distribution(summary)
    print("\nroot supernode sizes (size: count):")
    for size in sorted(histogram, reverse=True)[:8]:
        print(f"  {size:>4}: {histogram[size]}")

    # 4. The hierarchy itself, as an indented tree (largest root shown).
    largest_root = max(summary.hierarchy.roots(), key=summary.hierarchy.size)
    print("\nhierarchy tree of the largest root supernode:")
    tree_lines = [
        line
        for line in ascii_hierarchy(summary, max_members=6).splitlines()
        if line.strip()
    ]
    shown = 0
    for line in tree_lines:
        if line.startswith(f"S{largest_root} ") or shown:
            print("  " + line)
            shown += 1
            if shown >= 12:
                print("  ...")
                break

    # 5. Where does the encoding cost go?  Eq. 2 decomposition plus the
    #    most expensive roots.
    decomposition = cost_decomposition(summary)
    print(f"\ncost decomposition: |H| = {decomposition['cost_h']:.0f}, "
          f"|P+|+|P-| = {decomposition['cost_p']:.0f} "
          f"across {decomposition['num_roots']:.0f} root supernodes")
    expensive = sorted(cost_per_root(summary).items(), key=lambda item: -item[1])[:5]
    print("most expensive roots (root id: cost):")
    for root, cost in expensive:
        print(f"  S{root} ({summary.hierarchy.size(root)} subnodes): {cost}")

    # 6. Export a Graphviz rendering (render with `dot -Tpng summary.dot`).
    output = Path(__file__).with_name("nested_summary.dot")
    output.write_text(summary_to_dot(summary) + "\n", encoding="utf-8")
    print(f"\nGraphviz DOT rendering written to {output.name}")


if __name__ == "__main__":
    main()
