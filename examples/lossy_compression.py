"""Trading exactness for size: bounded-error (lossy) summarization.

Run with::

    python examples/lossy_compression.py

The paper's evaluation is lossless, but its related work (Sect. V)
covers the lossy variant: allow each node's reconstructed neighborhood
to differ by at most a fraction ε of its degree and reap a smaller
summary.  This example sweeps ε on the Protein analogue, reports the
size/error trade-off for lossy SWeG, and shows the analogous n-edge
sparsification of a SLUGGER summary.
"""

from __future__ import annotations

from repro import SluggerConfig, load_dataset, summarize
from repro.lossy import lossy_slugger_sparsify, lossy_sweg_summarize


def main() -> None:
    graph = load_dataset("PR", seed=0)
    print(f"input graph: {graph.num_nodes} nodes, {graph.num_edges} edges")

    # 1. Lossless reference points.
    lossless = lossy_sweg_summarize(graph, epsilon=0.0, iterations=10, seed=0)
    print(f"lossless SWeG relative size: {lossless.relative_size:.3f}")

    # 2. Sweep the error bound for lossy SWeG.
    print(f"\n{'epsilon':>8} {'rel. size':>10} {'dropped':>8} {'measured error':>15}")
    for epsilon in (0.0, 0.05, 0.1, 0.25, 0.5):
        result = lossy_sweg_summarize(graph, epsilon=epsilon, iterations=10, seed=0)
        print(f"{epsilon:>8.2f} {result.relative_size:>10.3f} "
              f"{result.dropped_corrections:>8d} {result.measured_error:>15.3f}")
        # The driver enforces the bound; the printout just makes it visible.
        assert result.measured_error <= epsilon + 1e-9

    # 3. The hierarchical counterpart: drop n-edges of a SLUGGER summary
    #    while every touched node stays within its error budget.
    slugger_result = summarize(graph, SluggerConfig(iterations=10, seed=0))
    summary = slugger_result.summary
    before = summary.cost()
    report = lossy_slugger_sparsify(summary, graph, epsilon=0.25, seed=0)
    print(f"\nSLUGGER summary sparsification at epsilon=0.25:")
    print(f"  cost: {before} -> {int(report['cost'])} "
          f"({int(report['removed_superedges'])} n-edges removed)")
    print(f"  measured max relative error: {report['max_relative_error']:.3f}")


if __name__ == "__main__":
    main()
