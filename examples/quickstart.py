"""Quickstart: summarize a graph with SLUGGER and inspect the result.

Run with::

    python examples/quickstart.py

    # Same computation, sharded over worker processes (bit-identical
    # output for the fixed seed — see the README's Execution & scaling):
    python examples/quickstart.py --workers 2

The script builds the Protein-dataset analogue, summarizes it under the
hierarchical graph summarization model, verifies that the summary is
lossless, prints the key statistics, and round-trips the summary through
the JSON serialization.
"""

from __future__ import annotations

import argparse
import tempfile
from pathlib import Path

from repro import ExecutionConfig, SluggerConfig, load_dataset, summarize
from repro.model import load_hierarchical_summary, save_hierarchical_summary


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for the parallel pipeline phases "
                             "(default 1 = serial; the output is identical)")
    arguments = parser.parse_args()
    execution = (ExecutionConfig(workers=arguments.workers)
                 if arguments.workers > 1 else None)

    # 1. Load a graph.  Any simple undirected graph works; here we use the
    #    built-in analogue of the paper's Protein (PR) dataset.
    graph = load_dataset("PR", seed=0)
    print(f"input graph: {graph.num_nodes} nodes, {graph.num_edges} edges")

    # 2. Summarize it.  T=10 iterations is plenty for a graph this size;
    #    the paper's default is T=20.
    config = SluggerConfig(iterations=10, seed=0)
    result = summarize(graph, config, execution=execution)
    summary = result.summary

    # 3. The summary is exact: decompressing it gives back the input graph.
    summary.validate(graph)
    print("losslessness check: OK")

    # 4. Inspect what the summary looks like.
    print(f"encoding cost      : {result.cost()} edges "
          f"(p={summary.num_p_edges}, n={summary.num_n_edges}, h={summary.num_h_edges})")
    print(f"relative size      : {result.relative_size(graph):.3f} "
          f"(1.0 would mean no compression)")
    print(f"supernodes         : {summary.hierarchy.num_supernodes} "
          f"({len(summary.hierarchy.roots())} roots)")
    print(f"max tree height    : {summary.hierarchy.max_height()}")
    print(f"avg leaf depth     : {summary.hierarchy.average_leaf_depth():.2f}")
    print(f"wall-clock         : {result.runtime_seconds:.2f}s")

    # 5. Neighbor queries run directly on the summary (partial decompression).
    some_node = graph.nodes()[0]
    assert summary.neighbors(some_node) == set(graph.neighbor_set(some_node))
    print(f"neighbors({some_node!r}) answered from the summary without decompressing it")

    # 6. Summaries serialize to JSON and load back losslessly.
    with tempfile.TemporaryDirectory() as directory:
        path = Path(directory) / "pr_summary.json"
        save_hierarchical_summary(summary, path)
        reloaded = load_hierarchical_summary(path)
        reloaded.validate(graph)
        print(f"serialized summary round-trips through {path.name} "
              f"({path.stat().st_size} bytes)")


if __name__ == "__main__":
    main()
