"""Serving demo: a mixed batch of methods against shared graphs.

Run with::

    python examples/service_demo.py

    # Ship whole jobs to a persistent forked worker pool instead of
    # running them on in-process threads (where fork is available):
    python examples/service_demo.py --mode process --inflight 2

The script stands up one long-lived :class:`repro.service.SummaryService`,
registers two graphs, submits a mixed batch (SLUGGER, SWeG, RANDOMIZED —
several seeds each) against them, streams per-iteration progress for one
job, demonstrates the ``asyncio`` entry point, and verifies the serving
determinism guarantee: every warm, concurrent result is bit-identical to
a one-shot ``engine.run`` with the same request.
"""

from __future__ import annotations

import argparse
import asyncio

from repro import SummaryService, engine, load_dataset


def summary_signature(summary):
    """A comparable fingerprint of a (hierarchical or flat) summary."""
    edges = getattr(summary, "p_edges", None)
    if callable(edges):
        return (summary.cost(),
                tuple(sorted(map(tuple, summary.p_edges()))),
                tuple(sorted(map(tuple, summary.n_edges()))))
    return (summary.cost_eq11(),
            tuple(sorted(map(tuple, summary.superedges))),
            tuple(sorted(map(tuple, summary.corrections_plus))),
            tuple(sorted(map(tuple, summary.corrections_minus))))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--mode", choices=("thread", "process"), default="thread",
                        help="job execution mode (default: thread)")
    parser.add_argument("--inflight", type=int, default=2,
                        help="jobs executed concurrently (default 2)")
    arguments = parser.parse_args()

    # 1. Two shared graphs; the service interns one substrate build each,
    #    no matter how many requests hit them.
    graphs = {"PR": load_dataset("PR", seed=0), "CA": load_dataset("CA", seed=0)}

    # 2. A mixed batch: (method, graph key, seed, options).
    batch = [
        ("slugger", "PR", 0, {"iterations": 5}),
        ("sweg", "PR", 0, {"iterations": 5}),
        ("randomized", "CA", 1, {}),
        ("slugger", "CA", 0, {"iterations": 5}),
        ("sweg", "CA", 2, {"iterations": 5}),
        ("slugger", "PR", 3, {"iterations": 5}),
    ]

    with SummaryService(mode=arguments.mode, max_inflight=arguments.inflight) as service:
        for key, graph in graphs.items():
            service.register_graph(key, graph)
            print(f"registered {key}: {graph.num_nodes} nodes, {graph.num_edges} edges")

        # 3. Submit everything up front; jobs are future-like handles.
        jobs = [service.submit(method=method, graph_key=key, seed=seed,
                               options=options, tag=f"{method}@{key}/s{seed}")
                for method, key, seed, options in batch]

        # 4. Stream the first job's per-iteration progress events.
        jobs[0].add_progress_listener(
            lambda event: print(f"  progress[{event.method}] "
                                f"{event.stage} {event.payload}")
        )

        # 5. Collect results (submission order) and verify each against a
        #    cold one-shot run — the serving determinism guarantee.
        print(f"\n{'tag':<22} {'state':<9} {'cost':>6} {'seconds':>8}  bit-identical")
        for job, (method, key, seed, options) in zip(jobs, batch):
            result = job.result(timeout=600)
            reference = engine.create(method, **options).summarize(
                graphs[key], seed=seed
            )
            identical = summary_signature(result.summary) == \
                summary_signature(reference.summary)
            assert identical, f"{job.request.tag} diverged from the one-shot run!"
            result.summary.validate(graphs[key])
            print(f"{job.request.tag:<22} {job.state.value:<9} {result.cost():>6} "
                  f"{result.runtime_seconds:>8.3f}  {identical}")

        stats = service.stats()
        print(f"\nservice: mode={stats['mode']} inflight={stats['max_inflight']} "
              f"completed={stats['completed']}")
        print(f"graph store: {stats['store']['misses']} substrate builds served "
              f"{stats['store']['hits']} warm hits across {len(batch)} requests")

    # 6. The same service API, awaited from asyncio.
    async def async_demo():
        with SummaryService(max_inflight=2) as service:
            results = await asyncio.gather(*[
                service.summarize("slugger", graphs["PR"], seed=seed,
                                  options={"iterations": 5})
                for seed in (0, 1, 2)
            ])
            return [result.cost() for result in results]

    costs = asyncio.run(async_demo())
    print(f"asyncio gather of 3 SLUGGER runs: costs={costs}")


if __name__ == "__main__":
    main()
