"""Compare SLUGGER with the baseline summarizers on social-network graphs.

Run with::

    python examples/social_network_compression.py

This is the workload the paper's introduction motivates: social networks
are large, highly clustered, and hierarchically organized (friend groups
within communities within platforms), which is exactly the structure the
hierarchical summarization model exploits.  The script compares all five
methods of the paper's evaluation on two social analogues and prints a
Fig. 5(a)-style table.
"""

from __future__ import annotations

from repro.analysis import compare_methods, default_methods
from repro.experiments import format_table
from repro.graphs import load_dataset


def main() -> None:
    datasets = ["FA", "YO"]  # Ego-Facebook and Youtube analogues.
    methods = default_methods(iterations=8)

    rows = []
    for key in datasets:
        graph = load_dataset(key, seed=0)
        print(f"{key}: {graph.num_nodes} nodes, {graph.num_edges} edges")
        for outcome in compare_methods(graph, methods=methods, seed=0):
            rows.append({
                "dataset": key,
                "method": outcome.method,
                "relative_size": outcome.relative_size,
                "cost": int(outcome.report["cost"]),
                "seconds": round(outcome.runtime_seconds, 2),
            })

    print()
    print(format_table(
        rows,
        ["dataset", "method", "relative_size", "cost", "seconds"],
        title="Lossless summarization of social-network analogues "
              "(smaller relative size = better)",
    ))

    winners = {}
    for row in rows:
        current = winners.get(row["dataset"])
        if current is None or row["relative_size"] < current[1]:
            winners[row["dataset"]] = (row["method"], row["relative_size"])
    print()
    for dataset, (method, size) in winners.items():
        print(f"most concise on {dataset}: {method} (relative size {size:.3f})")


if __name__ == "__main__":
    main()
