"""Maintain a lossless summary of an evolving graph stream with MoSSo.

Run with::

    python examples/streaming_summarization.py

The paper compares SLUGGER against MoSSo (KDD 2020), the incremental
summarizer for fully dynamic graph streams.  This example replays a
collaboration-network analogue as a stream of edge insertions followed by
a burst of deletions, keeping the summary up to date after every change,
and finally contrasts the online result with an offline SLUGGER run over
the final graph.
"""

from __future__ import annotations

import random

from repro import SluggerConfig, load_dataset, summarize
from repro.baselines import MoSSo, MossoConfig


def main() -> None:
    graph = load_dataset("DB", seed=0)  # DBLP-style collaboration analogue.
    edges = sorted(graph.edges(), key=repr)
    rng = random.Random(7)
    rng.shuffle(edges)

    streamer = MoSSo(MossoConfig(seed=0))

    # Phase 1: insert all edges, reporting compression as the stream grows.
    checkpoints = {len(edges) // 4, len(edges) // 2, 3 * len(edges) // 4, len(edges)}
    for index, (u, v) in enumerate(edges, start=1):
        streamer.add_edge(u, v)
        if index in checkpoints:
            summary = streamer.summary()
            current = streamer.graph
            print(f"after {index:5d} insertions: "
                  f"|V|={current.num_nodes:4d} |E|={current.num_edges:5d} "
                  f"relative size={summary.relative_size(current):.3f}")

    # Phase 2: delete a random 10% of the edges (the stream is fully dynamic).
    deletions = edges[: len(edges) // 10]
    for u, v in deletions:
        streamer.remove_edge(u, v)
    final_graph = streamer.graph
    online_summary = streamer.summary()
    online_summary.validate(final_graph)
    print(f"\nafter deleting {len(deletions)} edges: "
          f"|E|={final_graph.num_edges}, "
          f"online relative size={online_summary.relative_size(final_graph):.3f} (still lossless)")

    # Offline reference: run SLUGGER once over the final graph.
    offline = summarize(final_graph, SluggerConfig(iterations=10, seed=0))
    print(f"offline SLUGGER on the final graph: relative size="
          f"{offline.relative_size(final_graph):.3f}")
    print("\nthe online summary tracks every update; the offline pass compresses harder —")
    print("exactly the trade-off the paper describes between MoSSo and batch summarizers.")


if __name__ == "__main__":
    main()
