"""Run graph analytics directly on a compressed web-graph summary.

Run with::

    python examples/webgraph_analytics_pipeline.py

Web graphs are the paper's headline use case: hyperlink structure is so
redundant that a lossless summary is several times smaller than the raw
edge list, and — because the summary supports neighbor queries via
partial decompression (Algorithm 4) — standard graph algorithms can run
on it without ever rebuilding the full graph.  The script summarizes a
web-graph analogue, then runs PageRank, BFS, and triangle counting on
both representations and shows that the results are identical.
"""

from __future__ import annotations

import time

from repro import SluggerConfig, load_dataset, summarize
from repro.algorithms import bfs_distances, count_triangles, pagerank


def timed(label: str, function):
    started = time.perf_counter()
    value = function()
    print(f"  {label:<28s} {time.perf_counter() - started:7.3f}s")
    return value


def main() -> None:
    graph = load_dataset("CN", seed=0)  # CNR-2000 analogue (hyperlink network).
    print(f"web graph: {graph.num_nodes} nodes, {graph.num_edges} edges")

    result = summarize(graph, SluggerConfig(iterations=8, seed=0))
    summary = result.summary
    summary.validate(graph)
    print(f"summary: {result.cost()} edges "
          f"(relative size {result.relative_size(graph):.3f}), "
          f"built in {result.runtime_seconds:.1f}s\n")

    source = graph.nodes()[0]

    print("running analytics on the RAW graph:")
    raw_ranks = timed("PageRank (10 iterations)", lambda: pagerank(graph, iterations=10))
    raw_distances = timed("BFS distances", lambda: bfs_distances(graph, source))
    raw_triangles = timed("triangle count", lambda: count_triangles(graph))

    print("running the same analytics on the SUMMARY (partial decompression):")
    summary_ranks = timed("PageRank (10 iterations)", lambda: pagerank(summary, iterations=10))
    summary_distances = timed("BFS distances", lambda: bfs_distances(summary, source))
    summary_triangles = timed("triangle count", lambda: count_triangles(summary))

    assert raw_distances == summary_distances
    assert raw_triangles == summary_triangles
    assert all(abs(raw_ranks[node] - summary_ranks[node]) < 1e-12 for node in graph.nodes())
    print("\nall three analytics produced identical results on both representations")

    top = sorted(raw_ranks, key=raw_ranks.get, reverse=True)[:5]
    print("top-5 PageRank nodes:", ", ".join(f"{node} ({raw_ranks[node]:.4f})" for node in top))
    print(f"triangles: {raw_triangles}")


if __name__ == "__main__":
    main()
