"""Setuptools shim.

The execution environment ships setuptools without the ``wheel`` package,
so PEP 517 editable installs (which need ``bdist_wheel``) fail offline.
Keeping a classic ``setup.py`` lets ``pip install -e . --no-use-pep517``
(and plain ``python setup.py develop``) work; all project metadata lives
in ``pyproject.toml``.
"""

from setuptools import setup

setup()
