"""repro — a reproduction of SLUGGER (ICDE 2022).

SLUGGER is a scalable heuristic for *lossless hierarchical graph
summarization*: it represents an undirected graph exactly using positive
and negative edges between hierarchically nested supernodes, typically
with far fewer edges than the graph itself.

The most common entry points are re-exported here:

>>> from repro import load_dataset, summarize
>>> graph = load_dataset("PR", seed=0)
>>> result = summarize(graph, iterations=5, seed=0)
>>> result.summary.validate(graph)          # exact, lossless
>>> result.relative_size(graph) < 1.0       # and smaller than the input
True

Package map
-----------
``repro.graphs``        graph data structure, generators, datasets, I/O
``repro.model``         hierarchical and flat summarization models
``repro.core``          the SLUGGER algorithm
``repro.baselines``     Randomized, Greedy, SWeG, SAGS, MoSSo
``repro.engine``        the summarizer protocol + registry (one API for all)
``repro.service``       long-lived serving: sessions, jobs, warm pools
``repro.storage``       binary containers, mmap loads, parallel ingest
``repro.algorithms``    BFS/DFS/PageRank/Dijkstra/triangles on summaries
``repro.analysis``      compression metrics and method comparison
``repro.experiments``   harness regenerating the paper's tables and figures
"""

from repro import engine, service, storage
from repro.core import Slugger, SluggerConfig, SluggerResult, summarize
from repro.engine import ExecutionConfig, RunControl
from repro.graphs import (
    CSRAdjacency,
    DenseAdjacency,
    Graph,
    NodeIndex,
    load_dataset,
    read_edge_list,
    write_edge_list,
)
from repro.model import FlatSummary, HierarchicalSummary
from repro.service import (
    JobState,
    SummaryJob,
    SummaryRequest,
    SummaryService,
    default_service,
)
from repro.storage import MappedCSR, StoredGraph

__version__ = "1.3.0"

__all__ = [
    "Slugger",
    "SluggerConfig",
    "SluggerResult",
    "ExecutionConfig",
    "RunControl",
    "summarize",
    "engine",
    "service",
    "storage",
    "Graph",
    "NodeIndex",
    "DenseAdjacency",
    "CSRAdjacency",
    "load_dataset",
    "read_edge_list",
    "write_edge_list",
    "FlatSummary",
    "HierarchicalSummary",
    "JobState",
    "SummaryJob",
    "SummaryRequest",
    "SummaryService",
    "default_service",
    "MappedCSR",
    "StoredGraph",
    "__version__",
]
