"""Graph algorithms that run on raw graphs, summaries, or substrate views.

The paper's appendix (Sect. VIII-B/C) points out that algorithms which
access the graph only through neighbor queries — DFS, BFS, PageRank,
Dijkstra, triangle counting — can run directly on a summary via partial
decompression.  The functions here therefore accept any *neighbor
provider*: a raw :class:`~repro.graphs.graph.Graph`, a
:class:`~repro.model.summary.HierarchicalSummary`, a
:class:`~repro.model.flat.FlatSummary`, or any CSR-shaped substrate view
(:class:`~repro.graphs.dense.CSRAdjacency`, a zero-copy
:class:`~repro.storage.mapped.MappedCSR`, a
:class:`~repro.graphs.view.CSRGraphView`).

The label-keyed functions are thin shims: ids are resolved once at the
boundary (:mod:`repro.algorithms.providers`) and the hot loops run on
flat arrays of dense integer ids (:mod:`repro.algorithms.kernels`),
WebGraph-style.  Results are bit-identical to the historical
label-keyed implementations.
"""

from repro.algorithms.neighbors import NeighborProvider, as_neighbor_function, node_universe
from repro.algorithms.providers import (
    CSRIdAdjacency,
    GraphIdAdjacency,
    LabelIdAdjacency,
    SummaryIdAdjacency,
    repr_rank,
    resolve_id_adjacency,
)
from repro.algorithms.traversal import bfs_order, bfs_distances, connected_component_of, dfs_order
from repro.algorithms.pagerank import pagerank
from repro.algorithms.shortest_paths import dijkstra_distances, shortest_path
from repro.algorithms.triangles import count_triangles, local_triangle_counts
from repro.algorithms.components import (
    connected_components,
    is_connected,
    largest_component,
    num_connected_components,
)
from repro.algorithms.cores import core_numbers, k_core_nodes, max_core
from repro.algorithms.clustering import (
    average_clustering,
    local_clustering,
    local_clustering_coefficients,
)
from repro.algorithms.communities import (
    community_sizes,
    label_propagation_communities,
    modularity,
)
from repro.algorithms.query import QUERY_KINDS, QueryResult, run_query

__all__ = [
    "NeighborProvider",
    "as_neighbor_function",
    "node_universe",
    "CSRIdAdjacency",
    "GraphIdAdjacency",
    "LabelIdAdjacency",
    "SummaryIdAdjacency",
    "repr_rank",
    "resolve_id_adjacency",
    "bfs_order",
    "bfs_distances",
    "connected_component_of",
    "dfs_order",
    "pagerank",
    "dijkstra_distances",
    "shortest_path",
    "count_triangles",
    "local_triangle_counts",
    "connected_components",
    "largest_component",
    "num_connected_components",
    "is_connected",
    "core_numbers",
    "max_core",
    "k_core_nodes",
    "local_clustering",
    "local_clustering_coefficients",
    "average_clustering",
    "label_propagation_communities",
    "community_sizes",
    "modularity",
    "QUERY_KINDS",
    "QueryResult",
    "run_query",
]
