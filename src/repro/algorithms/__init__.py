"""Graph algorithms that run on raw graphs or (partially decompressed) summaries.

The paper's appendix (Sect. VIII-B/C) points out that algorithms which
access the graph only through neighbor queries — DFS, BFS, PageRank,
Dijkstra, triangle counting — can run directly on a summary via partial
decompression.  The functions here therefore accept any *neighbor
provider*: a raw :class:`~repro.graphs.graph.Graph`, a
:class:`~repro.model.summary.HierarchicalSummary`, or a
:class:`~repro.model.flat.FlatSummary`.
"""

from repro.algorithms.neighbors import NeighborProvider, as_neighbor_function, node_universe
from repro.algorithms.traversal import bfs_order, bfs_distances, connected_component_of, dfs_order
from repro.algorithms.pagerank import pagerank
from repro.algorithms.shortest_paths import dijkstra_distances, shortest_path
from repro.algorithms.triangles import count_triangles, local_triangle_counts
from repro.algorithms.components import (
    connected_components,
    is_connected,
    largest_component,
    num_connected_components,
)
from repro.algorithms.cores import core_numbers, k_core_nodes, max_core
from repro.algorithms.clustering import (
    average_clustering,
    local_clustering,
    local_clustering_coefficients,
)
from repro.algorithms.communities import (
    community_sizes,
    label_propagation_communities,
    modularity,
)

__all__ = [
    "NeighborProvider",
    "as_neighbor_function",
    "node_universe",
    "bfs_order",
    "bfs_distances",
    "connected_component_of",
    "dfs_order",
    "pagerank",
    "dijkstra_distances",
    "shortest_path",
    "count_triangles",
    "local_triangle_counts",
    "connected_components",
    "largest_component",
    "num_connected_components",
    "is_connected",
    "core_numbers",
    "max_core",
    "k_core_nodes",
    "local_clustering",
    "local_clustering_coefficients",
    "average_clustering",
    "label_propagation_communities",
    "community_sizes",
    "modularity",
]
