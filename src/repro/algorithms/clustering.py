"""Clustering coefficients over any neighbor provider.

Local and average clustering coefficients need only neighbor queries
(one hop for the neighborhood, membership tests for the wedges), so they
run directly on summaries like the algorithms of Sect. VIII-C.  The
wedge closure counts come from the triangle kernels: a node's link count
among its neighbors *is* its local triangle count, so the full sweep is
one pass of :func:`repro.algorithms.kernels.local_triangles_ids` instead
of a set intersection per node pair.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Sequence

from repro.algorithms.kernels import local_clustering_ids, local_triangles_ids, row_reader
from repro.algorithms.neighbors import NeighborProvider
from repro.algorithms.providers import resolve_id_adjacency

__all__ = [
    "average_clustering",
    "local_clustering",
    "local_clustering_coefficients",
]

Node = Hashable


def local_clustering(provider: NeighborProvider, node: Node) -> float:
    """Local clustering coefficient of ``node`` (0 for degree < 2)."""
    adjacency = resolve_id_adjacency(provider)
    return local_clustering_ids(adjacency, adjacency.index.id_of(node))


def local_clustering_coefficients(
    provider: NeighborProvider, nodes: Optional[Sequence[Node]] = None
) -> Dict[Node, float]:
    """Local clustering coefficient for every node in ``nodes`` (default: all)."""
    adjacency = resolve_id_adjacency(provider)
    index = adjacency.index
    if nodes is not None:
        return {
            node: local_clustering_ids(adjacency, index.id_of(node)) for node in nodes
        }
    row = row_reader(adjacency)
    triangles = local_triangles_ids(adjacency)
    labels = index.labels()
    coefficients: Dict[Node, float] = {}
    for u in range(adjacency.num_nodes):
        degree = len(row(u))
        if degree < 2:
            coefficients[labels[u]] = 0.0
        else:
            coefficients[labels[u]] = 2.0 * triangles[u] / (degree * (degree - 1))
    return coefficients


def average_clustering(provider: NeighborProvider) -> float:
    """Mean local clustering coefficient over all nodes (0 for empty graphs)."""
    coefficients = local_clustering_coefficients(provider)
    if not coefficients:
        return 0.0
    return sum(coefficients.values()) / len(coefficients)
