"""Clustering coefficients over any neighbor provider.

Local and average clustering coefficients need only neighbor queries
(one hop for the neighborhood, membership tests for the wedges), so they
run directly on summaries like the algorithms of Sect. VIII-C.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Sequence

from repro.algorithms.neighbors import NeighborProvider, as_neighbor_function, node_universe

__all__ = [
    "average_clustering",
    "local_clustering",
    "local_clustering_coefficients",
]

Node = Hashable


def local_clustering(provider: NeighborProvider, node: Node) -> float:
    """Local clustering coefficient of ``node`` (0 for degree < 2)."""
    neighbors = as_neighbor_function(provider)
    nbrs = list(neighbors(node))
    degree = len(nbrs)
    if degree < 2:
        return 0.0
    nbr_set = set(nbrs)
    links = 0
    for index, u in enumerate(nbrs):
        u_neighbors = neighbors(u)
        for v in nbrs[index + 1:]:
            if v in u_neighbors and v in nbr_set:
                links += 1
    return 2.0 * links / (degree * (degree - 1))


def local_clustering_coefficients(
    provider: NeighborProvider, nodes: Optional[Sequence[Node]] = None
) -> Dict[Node, float]:
    """Local clustering coefficient for every node in ``nodes`` (default: all)."""
    targets = list(nodes) if nodes is not None else node_universe(provider)
    return {node: local_clustering(provider, node) for node in targets}


def average_clustering(provider: NeighborProvider) -> float:
    """Mean local clustering coefficient over all nodes (0 for empty graphs)."""
    coefficients = local_clustering_coefficients(provider)
    if not coefficients:
        return 0.0
    return sum(coefficients.values()) / len(coefficients)
