"""Label-propagation community detection over any neighbor provider.

Asynchronous label propagation (Raghavan et al.) repeatedly assigns each
node the most frequent label among its neighbors until labels stabilise.
It accesses the graph only through neighbor queries, so it is another
member of the algorithm family that runs directly on summaries
(Sect. VIII-C) — and a convenient sanity check that SLUGGER's supernodes
line up with structural communities.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Hashable, List, Set

from repro.algorithms.neighbors import NeighborProvider, as_neighbor_function, node_universe
from repro.utils.rng import SeedLike, ensure_rng

__all__ = ["community_sizes", "label_propagation_communities", "modularity"]

Node = Hashable


def label_propagation_communities(
    provider: NeighborProvider,
    max_rounds: int = 20,
    seed: SeedLike = 0,
) -> List[Set[Node]]:
    """Communities found by asynchronous label propagation, largest first.

    Parameters
    ----------
    provider:
        A raw graph or a summary.
    max_rounds:
        Upper bound on full passes over the nodes; the algorithm stops
        earlier once no label changes.
    seed:
        Seed for the (order-randomizing) updates, making runs repeatable.
    """
    if max_rounds < 1:
        raise ValueError(f"max_rounds must be >= 1, got {max_rounds}")
    neighbors = as_neighbor_function(provider)
    rng = ensure_rng(seed)
    nodes = sorted(node_universe(provider), key=repr)
    labels: Dict[Node, int] = {node: index for index, node in enumerate(nodes)}
    for _ in range(max_rounds):
        changed = False
        order = list(nodes)
        rng.shuffle(order)
        for node in order:
            neighbor_labels = Counter(labels[nbr] for nbr in neighbors(node))
            if not neighbor_labels:
                continue
            best_count = max(neighbor_labels.values())
            best_labels = sorted(
                label for label, count in neighbor_labels.items() if count == best_count
            )
            new_label = best_labels[rng.randrange(len(best_labels))]
            if new_label != labels[node]:
                labels[node] = new_label
                changed = True
        if not changed:
            break
    groups: Dict[int, Set[Node]] = {}
    for node, label in labels.items():
        groups.setdefault(label, set()).add(node)
    return sorted(groups.values(), key=len, reverse=True)


def community_sizes(communities: List[Set[Node]]) -> List[int]:
    """Sizes of the communities, descending."""
    return sorted((len(community) for community in communities), reverse=True)


def modularity(provider: NeighborProvider, communities: List[Set[Node]]) -> float:
    """Newman modularity of a node partition under the represented graph.

    The provider is queried for neighbor sets, so this also works on
    summaries; Q close to 0 means the partition is no better than random,
    values around 0.3-0.7 indicate strong community structure.
    """
    neighbors = as_neighbor_function(provider)
    nodes = node_universe(provider)
    degree = {node: len(neighbors(node)) for node in nodes}
    two_m = sum(degree.values())
    if two_m == 0:
        return 0.0
    community_of: Dict[Node, int] = {}
    for index, community in enumerate(communities):
        for node in community:
            community_of[node] = index
    intra = 0
    for node in nodes:
        for neighbor in neighbors(node):
            if community_of.get(node) == community_of.get(neighbor):
                intra += 1  # Counts each intra-community edge twice (u->v and v->u).
    quality = intra / two_m
    for community in communities:
        community_degree = sum(degree.get(node, 0) for node in community)
        quality -= (community_degree / two_m) ** 2
    return quality
