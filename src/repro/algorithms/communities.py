"""Label-propagation community detection over any neighbor provider.

Asynchronous label propagation (Raghavan et al.) repeatedly assigns each
node the most frequent label among its neighbors until labels stabilise.
It accesses the graph only through neighbor queries, so it is another
member of the algorithm family that runs directly on summaries
(Sect. VIII-C) — and a convenient sanity check that SLUGGER's supernodes
line up with structural communities.

The sweep runs id-native in
:func:`repro.algorithms.kernels.label_propagation_ids`; the shim passes
the ``repr``-sort rank permutation so the shuffle and tie-break rng
stream — and therefore the communities — are identical to the historical
label-keyed implementation.
"""

from __future__ import annotations

from typing import Hashable, List, Set

from repro.algorithms.kernels import label_propagation_ids, modularity_ids
from repro.algorithms.neighbors import NeighborProvider
from repro.algorithms.providers import repr_rank, resolve_id_adjacency
from repro.utils.rng import SeedLike, ensure_rng

__all__ = ["community_sizes", "label_propagation_communities", "modularity"]

Node = Hashable


def label_propagation_communities(
    provider: NeighborProvider,
    max_rounds: int = 20,
    seed: SeedLike = 0,
) -> List[Set[Node]]:
    """Communities found by asynchronous label propagation, largest first.

    Parameters
    ----------
    provider:
        A raw graph, a summary, or a CSR-shaped substrate view.
    max_rounds:
        Upper bound on full passes over the nodes; the algorithm stops
        earlier once no label changes.
    seed:
        Seed for the (order-randomizing) updates, making runs repeatable.
    """
    if max_rounds < 1:
        raise ValueError(f"max_rounds must be >= 1, got {max_rounds}")
    adjacency = resolve_id_adjacency(provider)
    rng = ensure_rng(seed)
    groups = label_propagation_ids(
        adjacency, repr_rank(adjacency.index), max_rounds, rng
    )
    labels = adjacency.index.labels()
    return [{labels[u] for u in group} for group in groups]


def community_sizes(communities: List[Set[Node]]) -> List[int]:
    """Sizes of the communities, descending."""
    return sorted((len(community) for community in communities), reverse=True)


def modularity(provider: NeighborProvider, communities: List[Set[Node]]) -> float:
    """Newman modularity of a node partition under the represented graph.

    The provider is queried for neighbor runs, so this also works on
    summaries; Q close to 0 means the partition is no better than random,
    values around 0.3-0.7 indicate strong community structure.  Nodes in
    ``communities`` that the provider does not know are ignored, matching
    the historical tolerance (they contributed degree 0).
    """
    adjacency = resolve_id_adjacency(provider)
    ids = adjacency.index
    id_communities = [
        [node_id for node in community if (node_id := ids.get(node)) is not None]
        for community in communities
    ]
    return modularity_ids(adjacency, id_communities)
