"""Connected components over any neighbor provider.

Connected components are another example of the algorithm family of the
paper's appendix (Sect. VIII-C): the graph is accessed only through
neighbor queries, so the exact same code runs on a raw graph or on a
summary via partial decompression.  The sweep itself runs id-native in
:func:`repro.algorithms.kernels.components_ids` over flat arrays — and,
unlike the historical ``set.pop`` discovery loop, its output order is
deterministic (components discovered by smallest id, then stably sorted
by size, descending).
"""

from __future__ import annotations

from typing import Hashable, List, Set

from repro.algorithms.kernels import components_ids
from repro.algorithms.neighbors import NeighborProvider, node_universe
from repro.algorithms.providers import resolve_id_adjacency
from repro.model.summary import HierarchicalSummary

__all__ = [
    "connected_components",
    "is_connected",
    "largest_component",
    "num_connected_components",
    "summary_components_ids",
]

Node = Hashable


def summary_components_ids(summary: HierarchicalSummary) -> List[List[int]]:
    """Connected components of a hierarchical summary, superedge-level.

    The shortcut behind ``query components`` on a summary: instead of
    decompressing per-node neighborhoods (|leaves(A)| ancestor walks per
    supernode, the :func:`~repro.algorithms.providers.resolve_id_adjacency`
    path), it works rectangle-by-rectangle over the P edges with a
    union-find on the leaf ids.

    For a P edge ``(A, B)`` whose leaf rectangle no N edge intersects
    (two supernodes intersect a rectangle exactly when each is
    hierarchy-comparable to one side), *every* covered pair has net
    coverage ``>= 1``, so ``leaves(A) + leaves(B)`` collapse into one
    component with ``O(|leaves|)`` union operations and zero
    decompression — P/H edges and the hierarchy alone.  Only the rare
    *dirty* rectangles (an intersecting N edge could cancel individual
    pairs) fall back to exact per-node neighbor reconstruction, so the
    result is always exactly the decompressed graph's components.  With
    no N edges at all — e.g. a perfectly clustered graph — the sweep
    never decompresses anything.

    Output convention matches :func:`~repro.algorithms.kernels.components_ids`:
    components discovered in ascending order of their smallest leaf id,
    then stably sorted by size, descending.
    """
    hierarchy = summary.hierarchy
    num_leaves = hierarchy.num_subnodes
    parent = list(range(num_leaves))

    def find(node: int) -> int:
        root = node
        while parent[root] != root:
            root = parent[root]
        while parent[node] != root:
            parent[node], node = root, parent[node]
        return root

    def union(a: int, b: int) -> None:
        root_a, root_b = find(a), find(b)
        if root_a != root_b:
            parent[max(root_a, root_b)] = min(root_a, root_b)

    comparable = hierarchy.is_ancestor
    n_edges = sorted(summary.n_edges())
    for a, b in sorted(summary.p_edges()):
        leaves_a = hierarchy.leaf_id_view(a)
        if a == b and len(leaves_a) < 2:
            continue
        leaves_b = hierarchy.leaf_id_view(b)
        dirty = any(
            (  # the N rectangle meets this one in at least one leaf pair
                (comparable(x, a) or comparable(a, x))
                and (comparable(y, b) or comparable(b, y))
            )
            or (
                (comparable(x, b) or comparable(b, x))
                and (comparable(y, a) or comparable(a, y))
            )
            for x, y in n_edges
        )
        if not dirty:
            anchor = leaves_a[0]
            for leaf in leaves_a:
                union(anchor, leaf)
            for leaf in leaves_b:
                union(anchor, leaf)
            continue
        other = set(leaves_b) if a != b else set(leaves_a)
        for u in leaves_a:
            for v in summary.neighbor_ids(u):
                if v in other:
                    union(u, v)

    members: dict = {}
    components: List[List[int]] = []
    for leaf in range(num_leaves):
        root = find(leaf)
        bucket = members.get(root)
        if bucket is None:
            bucket = []
            members[root] = bucket
            components.append(bucket)
        bucket.append(leaf)
    components.sort(key=len, reverse=True)
    return components


def connected_components(provider: NeighborProvider) -> List[Set[Node]]:
    """All connected components, largest first (stable order for equal sizes)."""
    if isinstance(provider, HierarchicalSummary):
        subnodes = provider.hierarchy.subnodes()
        return [
            {subnodes[u] for u in component}
            for component in summary_components_ids(provider)
        ]
    adjacency = resolve_id_adjacency(provider)
    labels = adjacency.index.labels()
    return [
        {labels[u] for u in component} for component in components_ids(adjacency)
    ]


def largest_component(provider: NeighborProvider) -> Set[Node]:
    """The node set of the largest connected component (empty set for empty input)."""
    components = connected_components(provider)
    return components[0] if components else set()


def num_connected_components(provider: NeighborProvider) -> int:
    """Number of connected components."""
    return len(connected_components(provider))


def is_connected(provider: NeighborProvider) -> bool:
    """Whether the represented graph is connected (vacuously true when empty)."""
    universe = node_universe(provider)
    if not universe:
        return True
    return len(largest_component(provider)) == len(universe)
