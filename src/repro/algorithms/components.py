"""Connected components over any neighbor provider.

Connected components are another example of the algorithm family of the
paper's appendix (Sect. VIII-C): the graph is accessed only through
neighbor queries, so the exact same code runs on a raw graph or on a
summary via partial decompression.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, List, Set

from repro.algorithms.neighbors import NeighborProvider, as_neighbor_function, node_universe

__all__ = [
    "connected_components",
    "is_connected",
    "largest_component",
    "num_connected_components",
]

Node = Hashable


def connected_components(provider: NeighborProvider) -> List[Set[Node]]:
    """All connected components, largest first (ties broken arbitrarily)."""
    neighbors = as_neighbor_function(provider)
    remaining = set(node_universe(provider))
    components: List[Set[Node]] = []
    while remaining:
        start = remaining.pop()
        component = {start}
        queue = deque([start])
        while queue:
            node = queue.popleft()
            for neighbor in neighbors(node):
                if neighbor in remaining:
                    remaining.discard(neighbor)
                    component.add(neighbor)
                    queue.append(neighbor)
        components.append(component)
    components.sort(key=len, reverse=True)
    return components


def largest_component(provider: NeighborProvider) -> Set[Node]:
    """The node set of the largest connected component (empty set for empty input)."""
    components = connected_components(provider)
    return components[0] if components else set()


def num_connected_components(provider: NeighborProvider) -> int:
    """Number of connected components."""
    return len(connected_components(provider))


def is_connected(provider: NeighborProvider) -> bool:
    """Whether the represented graph is connected (vacuously true when empty)."""
    universe = node_universe(provider)
    if not universe:
        return True
    return len(largest_component(provider)) == len(universe)
