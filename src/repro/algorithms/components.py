"""Connected components over any neighbor provider.

Connected components are another example of the algorithm family of the
paper's appendix (Sect. VIII-C): the graph is accessed only through
neighbor queries, so the exact same code runs on a raw graph or on a
summary via partial decompression.  The sweep itself runs id-native in
:func:`repro.algorithms.kernels.components_ids` over flat arrays — and,
unlike the historical ``set.pop`` discovery loop, its output order is
deterministic (components discovered by smallest id, then stably sorted
by size, descending).
"""

from __future__ import annotations

from typing import Hashable, List, Set

from repro.algorithms.kernels import components_ids
from repro.algorithms.neighbors import NeighborProvider, node_universe
from repro.algorithms.providers import resolve_id_adjacency

__all__ = [
    "connected_components",
    "is_connected",
    "largest_component",
    "num_connected_components",
]

Node = Hashable


def connected_components(provider: NeighborProvider) -> List[Set[Node]]:
    """All connected components, largest first (stable order for equal sizes)."""
    adjacency = resolve_id_adjacency(provider)
    labels = adjacency.index.labels()
    return [
        {labels[u] for u in component} for component in components_ids(adjacency)
    ]


def largest_component(provider: NeighborProvider) -> Set[Node]:
    """The node set of the largest connected component (empty set for empty input)."""
    components = connected_components(provider)
    return components[0] if components else set()


def num_connected_components(provider: NeighborProvider) -> int:
    """Number of connected components."""
    return len(connected_components(provider))


def is_connected(provider: NeighborProvider) -> bool:
    """Whether the represented graph is connected (vacuously true when empty)."""
    universe = node_universe(provider)
    if not universe:
        return True
    return len(largest_component(provider)) == len(universe)
