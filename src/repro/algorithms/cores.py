"""k-core decomposition over any neighbor provider.

The k-core decomposition (Matula–Beck peeling) repeatedly removes the
node of smallest remaining degree; a node's *core number* is the largest
``k`` such that it survives in a subgraph of minimum degree ``k``.  Like
the other algorithms of Sect. VIII-C it only needs neighbor queries, so
it runs unchanged on summaries.
"""

from __future__ import annotations

import heapq
from typing import Dict, Hashable

from repro.algorithms.neighbors import NeighborProvider, as_neighbor_function, node_universe

__all__ = ["core_numbers", "k_core_nodes", "max_core"]

Node = Hashable


def core_numbers(provider: NeighborProvider) -> Dict[Node, int]:
    """Core number of every node (empty dictionary for an empty graph)."""
    neighbors = as_neighbor_function(provider)
    adjacency: Dict[Node, set] = {node: set(neighbors(node)) for node in node_universe(provider)}
    degrees: Dict[Node, int] = {node: len(nbrs) for node, nbrs in adjacency.items()}
    heap = [(degree, repr(node), node) for node, degree in degrees.items()]
    heapq.heapify(heap)
    removed: set = set()
    cores: Dict[Node, int] = {}
    current = 0
    while heap:
        degree, _, node = heapq.heappop(heap)
        if node in removed or degree != degrees[node]:
            continue  # Stale heap entry.
        current = max(current, degree)
        cores[node] = current
        removed.add(node)
        for neighbor in adjacency[node]:
            if neighbor in removed:
                continue
            degrees[neighbor] -= 1
            heapq.heappush(heap, (degrees[neighbor], repr(neighbor), neighbor))
    return cores


def max_core(provider: NeighborProvider) -> int:
    """Degeneracy of the graph: the largest core number (0 for empty graphs)."""
    cores = core_numbers(provider)
    return max(cores.values()) if cores else 0


def k_core_nodes(provider: NeighborProvider, k: int) -> set:
    """Nodes whose core number is at least ``k``."""
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    return {node for node, core in core_numbers(provider).items() if core >= k}
