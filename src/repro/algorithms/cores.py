"""k-core decomposition over any neighbor provider.

The k-core decomposition repeatedly removes the node of smallest
remaining degree; a node's *core number* is the largest ``k`` such that
it survives in a subgraph of minimum degree ``k``.  Like the other
algorithms of Sect. VIII-C it only needs neighbor queries, so it runs
unchanged on summaries.  The peel itself is the O(n + m) bucket sort of
Batagelj–Zaveršnik in :func:`repro.algorithms.kernels.core_numbers_ids`
— core numbers are a graph invariant, so the result matches the
historical heap-based peel exactly regardless of tie order.
"""

from __future__ import annotations

from typing import Dict, Hashable

from repro.algorithms.kernels import core_numbers_ids
from repro.algorithms.neighbors import NeighborProvider
from repro.algorithms.providers import resolve_id_adjacency

__all__ = ["core_numbers", "k_core_nodes", "max_core"]

Node = Hashable


def core_numbers(provider: NeighborProvider) -> Dict[Node, int]:
    """Core number of every node (empty dictionary for an empty graph)."""
    adjacency = resolve_id_adjacency(provider)
    cores = core_numbers_ids(adjacency)
    labels = adjacency.index.labels()
    return {labels[u]: cores[u] for u in range(adjacency.num_nodes)}


def max_core(provider: NeighborProvider) -> int:
    """Degeneracy of the graph: the largest core number (0 for empty graphs)."""
    cores = core_numbers(provider)
    return max(cores.values()) if cores else 0


def k_core_nodes(provider: NeighborProvider, k: int) -> set:
    """Nodes whose core number is at least ``k``."""
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    return {node for node, core in core_numbers(provider).items() if core >= k}
