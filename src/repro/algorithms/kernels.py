"""Flat-array graph kernels on dense integer ids.

These are the substrate-native engines behind every function in
``repro.algorithms``: they speak ids ``0..n-1`` and touch the graph only
through sorted neighbor runs (CSR ``indptr``/``indices`` slices, or a
provider's ``neighbor_ids``), in the WebGraph serving style (Boldi &
Vigna, WWW'04) — integer ids and flat arrays are the serving substrate,
labels are a presentation-layer concern handled by the shims in the
sibling modules.  None of the kernels builds a per-node Python set or
dict: state lives in flat lists/bytearrays indexed by id, so they run
unchanged (and without materializing anything) over an in-memory
:class:`~repro.graphs.dense.CSRAdjacency`, a zero-copy
:class:`~repro.storage.mapped.MappedCSR`, or the summary-native
partial-decompression adjacency.

Every kernel is bit-identical to the label-keyed implementation it
replaced; where the legacy code depended on an iteration order (the
``repr``-sorted traversals, label propagation's shuffled sweep) the
order is reproduced through an explicit ``rank`` permutation supplied by
the shim.

The adjacency argument ``adj`` is anything with ``num_nodes`` and sorted
ascending neighbor runs: either flat ``indptr``/``indices`` arrays (the
fast path — row reads are zero-copy slices) or a ``neighbor_ids(u)``
method (the summary provider).
"""

from __future__ import annotations

import heapq
from bisect import bisect_right
from itertools import chain, filterfalse
from typing import Callable, List, Optional, Sequence, Tuple

__all__ = [
    "bfs_distances_ids",
    "bfs_order_ids",
    "components_ids",
    "core_numbers_ids",
    "dfs_order_ids",
    "dijkstra_ids",
    "label_propagation_ids",
    "local_clustering_ids",
    "local_triangles_ids",
    "modularity_ids",
    "pagerank_ids",
    "row_reader",
    "triangle_count_ids",
]


def row_reader(adj) -> Callable[[int], Sequence[int]]:
    """A zero-copy ``row(u) -> sorted neighbor ids`` accessor for ``adj``.

    CSR-shaped adjacencies (``indptr``/``indices`` attributes) read rows
    as flat-array slices; anything else must provide ``neighbor_ids``.
    """
    indptr = getattr(adj, "indptr", None)
    indices = getattr(adj, "indices", None)
    if indptr is not None and indices is not None:

        def row(u: int) -> Sequence[int]:
            return indices[indptr[u]:indptr[u + 1]]

        return row
    return adj.neighbor_ids


def _check_source(adj, source: int) -> None:
    if not isinstance(source, int) or not 0 <= source < adj.num_nodes:
        raise ValueError(
            f"source id must be in [0, {adj.num_nodes}), got {source!r}"
        )


# ----------------------------------------------------------------------
# PageRank
# ----------------------------------------------------------------------
def pagerank_ids(adj, damping: float = 0.85, iterations: int = 20) -> List[float]:
    """Power-iteration PageRank; returns the score of every id.

    Pull formulation of Algorithm 6: each iteration computes every
    node's incoming mass as the sum of its neighbors' shares in one
    C-level ``sum(map(...))`` sweep per row.  Because neighbor runs are
    sorted ascending — the same order the legacy push loop visited
    sources in — the float accumulation order is identical and the
    scores are bit-for-bit equal to the label-keyed implementation.
    """
    n = adj.num_nodes
    if n == 0:
        return []
    row = row_reader(adj)
    # Materialize rows as plain lists once: re-slicing (and re-boxing
    # array ints) every iteration would dominate the sweep.
    rows = [list(row(u)) for u in range(n)]
    degrees = [len(neighbors) for neighbors in rows]
    scores = [1.0 / n] * n
    for _ in range(iterations):
        shares = [
            score / degree if degree else 0.0
            for score, degree in zip(scores, degrees)
        ]
        get = shares.__getitem__
        damped = [sum(map(get, neighbors)) * damping for neighbors in rows]
        leak = (1.0 - sum(damped)) / n
        scores = [incoming + leak for incoming in damped]
    return scores


# ----------------------------------------------------------------------
# Traversal
# ----------------------------------------------------------------------
def bfs_order_ids(
    adj, source: int, rank: Optional[Sequence[int]] = None
) -> List[int]:
    """Ids reachable from ``source`` in breadth-first visiting order.

    ``rank`` is an optional permutation giving the neighbor expansion
    order (lower rank first); ``None`` expands in ascending id order.
    The label shims pass the ``repr``-sort rank to reproduce the legacy
    visiting order exactly.
    """
    _check_source(adj, source)
    row = row_reader(adj)
    seen = bytearray(adj.num_nodes)
    seen[source] = 1
    unseen = seen.__getitem__
    frontier = [source]
    head = 0
    while head < len(frontier):
        u = frontier[head]
        head += 1
        # Filter before sorting: only the not-yet-seen neighbors are
        # enqueued, and their relative order is all the sort decides, so
        # sorting the (usually much smaller) fresh set is equivalent.
        fresh = list(filterfalse(unseen, row(u)))
        if fresh:
            if rank is not None and len(fresh) > 1:
                fresh.sort(key=rank.__getitem__)
            for v in fresh:
                seen[v] = 1
            frontier.extend(fresh)
    return frontier


def bfs_distances_ids(adj, source: int) -> List[int]:
    """Hop distance from ``source`` per id (``-1`` for unreachable ids).

    Level-synchronous sweep: each frontier's neighbor runs are batched
    into one candidate list with C-level ``extend`` calls, then filtered
    in a single pass — no per-node set, no sort.
    """
    _check_source(adj, source)
    row = row_reader(adj)
    distances = [-1] * adj.num_nodes
    distances[source] = 0
    frontier = [source]
    level = 0
    while frontier:
        level += 1
        candidates: List[int] = []
        extend = candidates.extend
        for u in frontier:
            extend(row(u))
        frontier = []
        append = frontier.append
        for v in candidates:
            if distances[v] < 0:
                distances[v] = level
                append(v)
    return distances


def dfs_order_ids(
    adj, source: int, rank: Optional[Sequence[int]] = None
) -> List[int]:
    """Ids reachable from ``source`` in iterative depth-first pre-order.

    Matches the legacy recursive formulation: neighbors are explored in
    ``rank`` order (ascending ids when ``None``) via a reverse-sorted
    stack push with a seen-check at both push and pop time.
    """
    _check_source(adj, source)
    row = row_reader(adj)
    order: List[int] = []
    seen = bytearray(adj.num_nodes)
    stack = [source]
    while stack:
        u = stack.pop()
        if seen[u]:
            continue
        seen[u] = 1
        order.append(u)
        if rank is None:
            neighbors = sorted(row(u), reverse=True)
        else:
            neighbors = sorted(row(u), key=rank.__getitem__, reverse=True)
        for v in neighbors:
            if not seen[v]:
                stack.append(v)
    return order


def components_ids(adj) -> List[List[int]]:
    """Connected components as id lists, largest first.

    Components are discovered in ascending order of their smallest id
    and sorted by size (descending) with a stable sort, so the output
    order is deterministic — unlike the legacy ``set.pop`` sweep, whose
    discovery order depended on the hash seed.  Contents are identical.
    """
    n = adj.num_nodes
    row = row_reader(adj)
    seen = bytearray(n)
    components: List[List[int]] = []
    for start in range(n):
        if seen[start]:
            continue
        seen[start] = 1
        member_of = [start]
        head = 0
        while head < len(member_of):
            u = member_of[head]
            head += 1
            for v in row(u):
                if not seen[v]:
                    seen[v] = 1
                    member_of.append(v)
        components.append(member_of)
    components.sort(key=len, reverse=True)
    return components


# ----------------------------------------------------------------------
# Triangles & clustering
# ----------------------------------------------------------------------
def _forward_rows(adj) -> List[Sequence[int]]:
    """The ``> u`` tail of every sorted neighbor run (one bisect per row).

    Sharing these across the sweep turns triangle enumeration into pure
    flag reads: each triangle ``u < v < w`` is found exactly once, at
    ``u``, as a forward neighbor ``w`` of ``v`` flagged in ``N+(u)``.
    """
    row = row_reader(adj)
    forward: List[List[int]] = []
    for u in range(adj.num_nodes):
        neighbors = row(u)
        # Plain lists: the sweep reads each run many times, and list
        # iteration skips the per-element int boxing of array slices.
        forward.append(list(neighbors[bisect_right(neighbors, u):]))
    return forward


# Above this many nodes the dense-bitset path's O(n^2 / 8) mask bytes
# stop being worth it and the kernel falls back to flag-array merging.
_BITSET_MAX_NODES = 1 << 14


def _triangle_count_bitset(forward: List[List[int]], n: int) -> int:
    """Dense-bitset triangle count for small universes.

    Each id's forward run becomes an ``n``-bit integer; common forward
    neighbors are then one ``&`` + ``bit_count`` per forward edge, with
    the whole inner reduction running as a C-level ``sum(map(...))``
    pipeline.  Masks cost O(n^2 / 8) bytes in the worst case, so this
    path is reserved for universes where that is trivially small.
    """
    buf = bytearray((n + 7) >> 3)
    from_bytes = int.from_bytes
    masks: List[int] = []
    append = masks.append
    for run in forward:
        for w in run:
            buf[w >> 3] |= 1 << (w & 7)
        append(from_bytes(buf, "little"))
        for w in run:
            # Clearing the whole byte is safe: every set bit in it
            # belongs to this run.
            buf[w >> 3] = 0
    bit_count = int.bit_count
    get_mask = masks.__getitem__
    total = 0
    for u, run in enumerate(forward):
        if len(run) < 2:
            # A lone forward neighbor cannot close a forward triangle.
            continue
        total += sum(map(bit_count, map(masks[u].__and__, map(get_mask, run))))
    return total


def triangle_count_ids(adj) -> int:
    """Total number of triangles, each counted exactly once.

    For every edge ``(u, v)`` with ``u < v`` the kernel counts common
    forward neighbors ``w > v``: on small universes via dense-bitset
    intersection (one ``&`` + popcount per forward edge), otherwise
    against a flag array of ``N+(u)`` with the per-``w`` membership
    reads running as one C-level ``sum(map(...))`` over ``v``'s
    precomputed forward run.  Both paths count the identical integer.
    """
    n = adj.num_nodes
    forward = _forward_rows(adj)
    if n <= _BITSET_MAX_NODES:
        return _triangle_count_bitset(forward, n)
    flags = bytearray(n)
    lookup = flags.__getitem__
    runs_of = forward.__getitem__
    from_iterable = chain.from_iterable
    total = 0
    for run in forward:
        if len(run) < 2:
            # A lone forward neighbor cannot close a forward triangle.
            continue
        for w in run:
            flags[w] = 1
        # One C-level pass: every forward run of every forward neighbor,
        # summed against the flag array.
        total += sum(map(lookup, from_iterable(map(runs_of, run))))
        for w in run:
            flags[w] = 0
    return total


def local_triangles_ids(adj) -> List[int]:
    """Number of triangles each id participates in."""
    forward = _forward_rows(adj)
    flags = bytearray(adj.num_nodes)
    counts = [0] * adj.num_nodes
    for u, run in enumerate(forward):
        if not run:
            continue
        for w in run:
            flags[w] = 1
        for v in run:
            for w in forward[v]:
                if flags[w]:
                    counts[u] += 1
                    counts[v] += 1
                    counts[w] += 1
        for w in run:
            flags[w] = 0
    return counts


def local_clustering_ids(adj, u: int) -> float:
    """Local clustering coefficient of id ``u`` (0 for degree < 2)."""
    row = row_reader(adj)
    neighbors = row(u)
    degree = len(neighbors)
    if degree < 2:
        return 0.0
    flags = bytearray(adj.num_nodes)
    lookup = flags.__getitem__
    for w in neighbors:
        flags[w] = 1
    corner = 0
    for v in neighbors:
        corner += sum(map(lookup, row(v)))
    # Each neighbor-neighbor edge is seen from both endpoints.
    links = corner // 2
    return 2.0 * links / (degree * (degree - 1))


# ----------------------------------------------------------------------
# k-cores
# ----------------------------------------------------------------------
def core_numbers_ids(adj) -> List[int]:
    """Core number of every id via O(n + m) bucket peeling (Matula–Beck).

    Bin-sorts ids by degree and repeatedly peels the minimum-degree
    node; core numbers are a well-defined graph invariant, so the
    result is identical to the legacy heap-based peel regardless of the
    tie order.
    """
    n = adj.num_nodes
    if n == 0:
        return []
    row = row_reader(adj)
    degrees = [len(row(u)) for u in range(n)]
    max_degree = max(degrees)
    bins = [0] * (max_degree + 1)
    for degree in degrees:
        bins[degree] += 1
    start = 0
    for degree in range(max_degree + 1):
        count = bins[degree]
        bins[degree] = start
        start += count
    positions = [0] * n
    ordered = [0] * n
    for u in range(n):
        positions[u] = bins[degrees[u]]
        ordered[positions[u]] = u
        bins[degrees[u]] += 1
    for degree in range(max_degree, 0, -1):
        bins[degree] = bins[degree - 1]
    bins[0] = 0
    cores = degrees[:]
    for position in range(n):
        u = ordered[position]
        for v in row(u):
            if cores[v] > cores[u]:
                # Move v to the front of its bin and shrink the bin.
                degree_v = cores[v]
                front = bins[degree_v]
                swapped = ordered[front]
                if swapped != v:
                    position_v = positions[v]
                    ordered[front], ordered[position_v] = v, swapped
                    positions[v], positions[swapped] = front, position_v
                bins[degree_v] += 1
                cores[v] -= 1
    return cores


# ----------------------------------------------------------------------
# Communities & modularity
# ----------------------------------------------------------------------
def label_propagation_ids(
    adj, rank: Sequence[int], max_rounds: int, rng
) -> List[List[int]]:
    """Asynchronous label propagation; returns id groups, largest first.

    ``rank`` is the permutation reproducing the legacy sweep order
    (position of each id when labels are sorted by ``repr``); the
    initial label of an id is its rank, sweeps shuffle the rank-ordered
    sequence with ``rng``, and ties pick ``rng.randrange`` over the
    sorted candidate labels — so the rng stream, and therefore the
    result, is identical to the label-keyed implementation.
    """
    n = adj.num_nodes
    row = row_reader(adj)
    by_rank = sorted(range(n), key=rank.__getitem__)
    labels = list(rank)
    for _ in range(max_rounds):
        changed = False
        order = list(by_rank)
        rng.shuffle(order)
        for u in order:
            tally: dict = {}
            for v in row(u):
                label = labels[v]
                tally[label] = tally.get(label, 0) + 1
            if not tally:
                continue
            best_count = max(tally.values())
            best_labels = sorted(
                label for label, count in tally.items() if count == best_count
            )
            new_label = best_labels[rng.randrange(len(best_labels))]
            if new_label != labels[u]:
                labels[u] = new_label
                changed = True
        if not changed:
            break
    groups: dict = {}
    for u in by_rank:
        groups.setdefault(labels[u], []).append(u)
    return sorted(groups.values(), key=len, reverse=True)


def modularity_ids(adj, communities: Sequence[Sequence[int]]) -> float:
    """Newman modularity of an id partition under the represented graph."""
    n = adj.num_nodes
    row = row_reader(adj)
    degrees = [len(row(u)) for u in range(n)]
    two_m = sum(degrees)
    if two_m == 0:
        return 0.0
    community_of = [-1] * n
    for index, community in enumerate(communities):
        for u in community:
            community_of[u] = index
    intra = 0
    for u in range(n):
        membership = community_of[u]
        if membership < 0:
            continue
        for v in row(u):
            if community_of[v] == membership:
                intra += 1
    quality = intra / two_m
    for community in communities:
        community_degree = sum(degrees[u] for u in community)
        quality -= (community_degree / two_m) ** 2
    return quality


# ----------------------------------------------------------------------
# Shortest paths
# ----------------------------------------------------------------------
def dijkstra_ids(
    adj,
    source: int,
    weight: Optional[Callable[[int, int], float]] = None,
) -> Tuple[List[float], List[int]]:
    """Dijkstra distances and predecessors from ``source`` on ids.

    Returns ``(distances, predecessors)`` with ``inf`` / ``-1`` for
    unreachable ids.  ``weight(u, v)`` defaults to unit weights and must
    be non-negative.  Neighbors relax in ascending id order, so the
    predecessor choice among equal-cost ties is deterministic.
    """
    _check_source(adj, source)
    row = row_reader(adj)
    infinity = float("inf")
    distances = [infinity] * adj.num_nodes
    predecessors = [-1] * adj.num_nodes
    distances[source] = 0.0
    settled = bytearray(adj.num_nodes)
    heap: List[Tuple[float, int, int]] = [(0.0, 0, source)]
    counter = 0
    while heap:
        distance, _tie, u = heapq.heappop(heap)
        if settled[u]:
            continue
        settled[u] = 1
        for v in row(u):
            step = 1.0 if weight is None else weight(u, v)
            if step < 0:
                raise ValueError("Dijkstra's algorithm requires non-negative weights")
            candidate = distance + step
            if candidate < distances[v]:
                distances[v] = candidate
                predecessors[v] = u
                counter += 1
                heapq.heappush(heap, (candidate, counter, v))
    return distances, predecessors
