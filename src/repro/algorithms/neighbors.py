"""Uniform neighbor access over graphs and summaries.

A *neighbor provider* is anything exposing the two calls the algorithms
need: the set of nodes and the neighbors of one node.  Raw graphs answer
neighbor queries from their adjacency sets; summaries answer them through
partial decompression (Algorithm 4), which is exactly the execution model
of Sect. VIII-C.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, List, Set, Union

from repro.graphs.graph import Graph
from repro.model.flat import FlatSummary
from repro.model.summary import HierarchicalSummary

__all__ = ["as_neighbor_function", "node_universe"]

Subnode = Hashable
NeighborProvider = Union[Graph, HierarchicalSummary, FlatSummary]
NeighborFunction = Callable[[Subnode], Set[Subnode]]


def as_neighbor_function(provider: NeighborProvider) -> NeighborFunction:
    """A callable returning the neighbor set of a node for any provider type."""
    if isinstance(provider, Graph):
        return lambda node: set(provider.neighbor_set(node))
    if isinstance(provider, (HierarchicalSummary, FlatSummary)):
        return provider.neighbors
    raise TypeError(
        "provider must be a Graph, HierarchicalSummary, or FlatSummary, "
        f"got {type(provider).__name__}"
    )


def node_universe(provider: NeighborProvider) -> List[Subnode]:
    """All nodes known to the provider."""
    if isinstance(provider, Graph):
        return provider.nodes()
    if isinstance(provider, HierarchicalSummary):
        return provider.hierarchy.subnodes()
    if isinstance(provider, FlatSummary):
        return list(provider.group_of)
    raise TypeError(
        "provider must be a Graph, HierarchicalSummary, or FlatSummary, "
        f"got {type(provider).__name__}"
    )
