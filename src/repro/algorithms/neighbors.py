"""Uniform neighbor access over graphs, summaries, and substrate views.

A *neighbor provider* is anything exposing the two calls the algorithms
need: the set of nodes and the neighbors of one node.  Raw graphs answer
neighbor queries from their adjacency sets; summaries answer them through
partial decompression (Algorithm 4), which is exactly the execution model
of Sect. VIII-C; CSR-shaped substrate views (``CSRAdjacency``,
``MappedCSR``, a stored container) answer them off the flat arrays
through their :class:`~repro.graphs.index.NodeIndex`.

These label-keyed helpers are the compatibility surface; the kernels in
:mod:`repro.algorithms.kernels` run id-native and never touch them.
"""

from __future__ import annotations

from typing import Callable, Hashable, List, Set, Union

from repro.algorithms.providers import resolve_id_adjacency
from repro.graphs.graph import Graph
from repro.model.flat import FlatSummary
from repro.model.summary import HierarchicalSummary

__all__ = ["as_neighbor_function", "node_universe"]

Subnode = Hashable
NeighborProvider = Union[Graph, HierarchicalSummary, FlatSummary]
NeighborFunction = Callable[[Subnode], Set[Subnode]]


def as_neighbor_function(provider) -> NeighborFunction:
    """A callable returning the neighbor set of a node for any provider type.

    For a :class:`Graph` this is the *live* internal adjacency set —
    callers must treat it as read-only.  Query sweeps used to pay a
    fresh set copy per call here, which dominated the per-node cost of
    the triangle and core kernels.  Summaries answer by partial
    decompression; CSR-shaped substrate views translate their sorted id
    runs through the index.
    """
    if isinstance(provider, Graph):
        return provider.neighbor_set
    if isinstance(provider, (HierarchicalSummary, FlatSummary)):
        return provider.neighbors
    adjacency = resolve_id_adjacency(provider)
    index = adjacency.index
    labels = index.labels()

    def neighbors(node: Subnode) -> Set[Subnode]:
        return {labels[v] for v in adjacency.neighbor_ids(index.id_of(node))}

    return neighbors


def node_universe(provider) -> List[Subnode]:
    """All nodes known to the provider."""
    if isinstance(provider, Graph):
        return provider.nodes()
    if isinstance(provider, HierarchicalSummary):
        return provider.hierarchy.subnodes()
    if isinstance(provider, FlatSummary):
        return list(provider.group_of)
    return list(resolve_id_adjacency(provider).index.labels())
