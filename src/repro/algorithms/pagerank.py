"""PageRank over any neighbor provider (Algorithm 6 of the paper)."""

from __future__ import annotations

from typing import Dict, Hashable

from repro.algorithms.neighbors import NeighborProvider, as_neighbor_function, node_universe
from repro.utils.validation import require_positive, require_probability

__all__ = ["pagerank"]

Subnode = Hashable


def pagerank(
    provider: NeighborProvider,
    damping: float = 0.85,
    iterations: int = 20,
) -> Dict[Subnode, float]:
    """Power-iteration PageRank on an undirected graph or summary.

    Follows Algorithm 6: each iteration pushes every node's current score
    to its neighbors (retrieved through the provider, i.e. by partial
    decompression when the provider is a summary), then applies the
    damping factor and redistributes the leaked mass uniformly.  Scores
    sum to 1.
    """
    require_probability(damping, "damping")
    require_positive(iterations, "iterations")
    nodes = node_universe(provider)
    if not nodes:
        return {}
    neighbors = as_neighbor_function(provider)
    num_nodes = len(nodes)
    scores: Dict[Subnode, float] = {node: 1.0 / num_nodes for node in nodes}
    for _ in range(iterations):
        incoming: Dict[Subnode, float] = {node: 0.0 for node in nodes}
        for node in nodes:
            adjacent = neighbors(node)
            if not adjacent:
                continue
            share = scores[node] / len(adjacent)
            for neighbor in adjacent:
                incoming[neighbor] += share
        total_flow = 0.0
        for node in nodes:
            incoming[node] *= damping
            total_flow += incoming[node]
        leak = (1.0 - total_flow) / num_nodes
        scores = {node: incoming[node] + leak for node in nodes}
    return scores
