"""PageRank over any neighbor provider (Algorithm 6 of the paper)."""

from __future__ import annotations

from typing import Dict, Hashable

from repro.algorithms.kernels import pagerank_ids
from repro.algorithms.neighbors import NeighborProvider
from repro.algorithms.providers import resolve_id_adjacency
from repro.utils.validation import require_positive, require_probability

__all__ = ["pagerank"]

Subnode = Hashable


def pagerank(
    provider: NeighborProvider,
    damping: float = 0.85,
    iterations: int = 20,
) -> Dict[Subnode, float]:
    """Power-iteration PageRank on an undirected graph or summary.

    Follows Algorithm 6: each iteration moves every node's current score
    across its edges (retrieved through the provider, i.e. by partial
    decompression when the provider is a summary), then applies the
    damping factor and redistributes the leaked mass uniformly.  Scores
    sum to 1.

    The iteration itself runs id-native in
    :func:`repro.algorithms.kernels.pagerank_ids`; this shim only maps
    labels to ids at the boundary, and the scores are bit-for-bit equal
    to the historical label-keyed implementation.
    """
    require_probability(damping, "damping")
    require_positive(iterations, "iterations")
    adjacency = resolve_id_adjacency(provider)
    scores = pagerank_ids(adjacency, damping=damping, iterations=iterations)
    labels = adjacency.index.labels()
    return {labels[u]: scores[u] for u in range(adjacency.num_nodes)}
