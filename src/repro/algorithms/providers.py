"""Provider resolution: anything graph-shaped becomes an id adjacency.

The kernels in :mod:`repro.algorithms.kernels` speak dense integer ids
over sorted neighbor runs.  This module is the boundary that gets them
those runs from every representation the library serves queries on:

- a label-keyed :class:`~repro.graphs.graph.Graph` (flattened once into
  CSR arrays through a :class:`~repro.graphs.index.NodeIndex`),
- any ``CSRAdjacency``-shaped view — the in-memory
  :class:`~repro.graphs.dense.CSRAdjacency`, a zero-copy
  :class:`~repro.storage.mapped.MappedCSR`, a (clean)
  :class:`~repro.graphs.dense.LazyDenseAdjacency` — served as-is,
- a ``GraphResources`` carrier (:class:`~repro.storage.mapped.StoredGraph`,
  the service's ``GraphHandle``) via its interned ``csr()``,
- a :class:`~repro.model.summary.HierarchicalSummary`, answered by
  partial decompression on ids (:meth:`HierarchicalSummary.neighbor_ids`)
  — no materialization, no label resolution,
- a :class:`~repro.model.flat.FlatSummary`, bridged through its
  label-keyed partial decompression.

:func:`resolve_id_adjacency` returns an object with ``num_nodes``, an
``index`` (labels ↔ ids), and sorted neighbor runs (flat
``indptr``/``indices`` where available, ``neighbor_ids`` otherwise);
the algorithm shims map labels to ids at this boundary and hand the
rest to the kernels.
"""

from __future__ import annotations

import weakref
from array import array
from typing import Callable, Hashable, List, Sequence

from repro.graphs.dense import DenseAdjacency
from repro.graphs.graph import Graph
from repro.graphs.index import NodeIndex
from repro.graphs.view import CSRGraphView
from repro.model.flat import FlatSummary
from repro.model.summary import HierarchicalSummary

__all__ = [
    "CSRIdAdjacency",
    "GraphIdAdjacency",
    "LabelIdAdjacency",
    "SummaryIdAdjacency",
    "repr_rank",
    "resolve_id_adjacency",
]

Label = Hashable


class _FlatCSR:
    """Minimal CSR-shaped carrier for freshly flattened arrays."""

    __slots__ = ("indptr", "indices", "num_nodes")

    def __init__(self, indptr, indices, num_nodes: int) -> None:
        self.indptr = indptr
        self.indices = indices
        self.num_nodes = num_nodes


class CSRIdAdjacency:
    """Id adjacency over any CSR-shaped view (zero-copy row slices)."""

    __slots__ = ("source", "indptr", "indices", "num_nodes", "index")

    def __init__(self, source, index: NodeIndex = None) -> None:
        self.source = source
        self.indptr = source.indptr
        self.indices = source.indices
        self.num_nodes = source.num_nodes
        resolved = index if index is not None else getattr(source, "index", None)
        if resolved is None:
            resolved = NodeIndex(range(self.num_nodes))
        self.index = resolved

    def neighbor_ids(self, u: int) -> Sequence[int]:
        """The sorted neighbor run of ``u`` (a zero-copy slice)."""
        return self.indices[self.indptr[u]:self.indptr[u + 1]]

    def __repr__(self) -> str:
        return f"CSRIdAdjacency(num_nodes={self.num_nodes})"


class GraphIdAdjacency(CSRIdAdjacency):
    """Id adjacency flattened once from a label-keyed :class:`Graph`.

    The one O(m) pass happens here, at the label↔id boundary; the
    kernels then run on the flat arrays exactly as they would over a
    mapped container.
    """

    __slots__ = ()

    def __init__(self, graph: Graph) -> None:
        index = NodeIndex.from_graph(graph)
        ids = index.ids()
        num_nodes = len(index)
        indptr = array("q", bytes(8 * (num_nodes + 1)))
        indices = array("q", bytes(8 * (2 * graph.num_edges)))
        adjacency = graph.adjacency()
        position = 0
        for u, label in enumerate(index.labels()):
            indptr[u] = position
            for v in sorted(ids[x] for x in adjacency[label]):
                indices[position] = v
                position += 1
        indptr[num_nodes] = position
        super().__init__(_FlatCSR(indptr, indices, num_nodes), index=index)


class SummaryIdAdjacency:
    """Id adjacency answered by the summary's partial decompression.

    Leaf supernode ids coincide with dense node ids (both number the
    subnodes in graph order), so :meth:`neighbor_ids` is simply
    :meth:`HierarchicalSummary.neighbor_ids` — superedges incident to
    the queried leaf's ancestors, net p-minus-n coverage, sorted ids
    out.  Nothing is materialized up front.
    """

    __slots__ = ("summary", "num_nodes", "index")

    def __init__(self, summary: HierarchicalSummary) -> None:
        self.summary = summary
        self.num_nodes = summary.hierarchy.num_subnodes
        self.index = NodeIndex(summary.hierarchy.subnodes())

    def neighbor_ids(self, u: int) -> List[int]:
        """Sorted leaf ids adjacent to leaf ``u`` (partial decompression)."""
        return self.summary.neighbor_ids(u)

    def __repr__(self) -> str:
        return f"SummaryIdAdjacency(num_nodes={self.num_nodes})"


class LabelIdAdjacency:
    """Id adjacency bridged through a label-keyed neighbor function.

    Compatibility fallback for providers without an id-native neighbor
    query (the flat summary): each row is translated label→id at query
    time and sorted, so results match the id-native paths exactly.
    """

    __slots__ = ("_neighbors", "num_nodes", "index")

    def __init__(
        self,
        neighbors: Callable[[Label], Sequence[Label]],
        index: NodeIndex,
    ) -> None:
        self._neighbors = neighbors
        self.num_nodes = len(index)
        self.index = index

    def neighbor_ids(self, u: int) -> List[int]:
        """Sorted neighbor ids of ``u`` via the label-keyed provider."""
        ids = self.index.ids()
        label = self.index.label_of(u)
        return sorted(ids[x] for x in self._neighbors(label))

    def __repr__(self) -> str:
        return f"LabelIdAdjacency(num_nodes={self.num_nodes})"


def resolve_id_adjacency(provider):
    """Resolve any supported provider to an id adjacency with an ``index``.

    Raises ``TypeError`` for unsupported inputs, matching the historical
    contract of :func:`repro.algorithms.neighbors.as_neighbor_function`.
    """
    if isinstance(provider, CSRGraphView):
        # Already substrate-backed: reuse its (index, csr) directly
        # instead of re-flattening through the label facade.
        return CSRIdAdjacency(provider.substrate, index=provider.index)
    if isinstance(provider, Graph):
        return GraphIdAdjacency(provider)
    if isinstance(provider, HierarchicalSummary):
        return SummaryIdAdjacency(provider)
    if isinstance(provider, FlatSummary):
        index = NodeIndex(provider.group_of)
        return LabelIdAdjacency(provider.neighbors, index)
    if isinstance(provider, DenseAdjacency):
        # freeze() is cheap for a clean lazy overlay (hands back the
        # backing CSR) and one O(m) pack otherwise.
        return CSRIdAdjacency(provider.freeze())
    csr_method = getattr(provider, "csr", None)
    if callable(csr_method):
        return CSRIdAdjacency(csr_method())
    if hasattr(provider, "indptr") and hasattr(provider, "indices"):
        return CSRIdAdjacency(provider)
    raise TypeError(
        "provider must be a Graph, HierarchicalSummary, FlatSummary, or a "
        f"CSR-shaped substrate view, got {type(provider).__name__}"
    )


_rank_cache: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def repr_rank(index: NodeIndex) -> List[int]:
    """Rank of each id when labels are sorted by ``repr``.

    ``rank[u]`` is the position label ``u`` takes in the legacy
    ``sorted(nodes, key=repr)`` order — the permutation the traversal
    and community shims pass to the kernels to reproduce the label-keyed
    visiting order bit for bit.

    Ranks are memoized per index object: indexes are grow-only and ids
    never re-label, so a cached permutation stays valid as long as the
    length matches.  Callers must treat the returned list as read-only.
    """
    cached = _rank_cache.get(index)
    if cached is not None and cached[0] == len(index):
        return cached[1]
    labels = index.labels()
    order = sorted(range(len(labels)), key=lambda u: repr(labels[u]))
    rank = [0] * len(labels)
    for position, u in enumerate(order):
        rank[u] = position
    _rank_cache[index] = (len(labels), rank)
    return rank
