"""Named query dispatch for the serving layer.

:func:`run_query` maps a query name to the corresponding algorithm and
returns a JSON-ready result payload.  It is the shared engine behind the
``repro-slugger query`` CLI subcommand and
:meth:`repro.service.SummaryService.query`: the provider can be a raw
graph, a summary, or — the serving case — a CSR-shaped substrate view
straight out of a mapped container, which is queried without
materializing a label-keyed graph or thawing dense rows.
"""

from __future__ import annotations

from typing import Any, Hashable, NamedTuple, Optional

from repro.algorithms.components import connected_components
from repro.algorithms.cores import core_numbers
from repro.algorithms.pagerank import pagerank
from repro.algorithms.traversal import bfs_distances, bfs_order
from repro.algorithms.triangles import count_triangles, local_triangle_counts

__all__ = ["QUERY_KINDS", "QueryResult", "run_query"]

Label = Hashable

QUERY_KINDS = ("pagerank", "bfs", "components", "triangles", "cores")


class QueryResult(NamedTuple):
    """A named query outcome: the query kind and its JSON-ready payload."""

    kind: str
    value: Any


def _ranked(items, top: Optional[int]):
    """Items as ``[node, value]`` pairs, best value first, ``repr`` ties."""
    ordered = sorted(items, key=lambda pair: (-pair[1], repr(pair[0])))
    if top is not None:
        ordered = ordered[:top]
    return [[node, value] for node, value in ordered]


def run_query(
    provider,
    kind: str,
    source: Optional[Label] = None,
    top: Optional[int] = None,
    damping: float = 0.85,
    iterations: int = 20,
) -> QueryResult:
    """Run the named query against any neighbor provider.

    Parameters
    ----------
    provider:
        Graph, summary, or CSR-shaped substrate view.
    kind:
        One of :data:`QUERY_KINDS`.
    source:
        Start node for ``bfs`` (required there, ignored elsewhere).
    top:
        Truncate ranked payloads (``pagerank``, ``cores``) to this many
        entries; ``None`` keeps everything.
    damping / iterations:
        PageRank parameters (ignored by the other kinds).
    """
    if kind == "pagerank":
        scores = pagerank(provider, damping=damping, iterations=iterations)
        return QueryResult(kind, {
            "num_nodes": len(scores),
            "ranking": _ranked(scores.items(), top),
        })
    if kind == "bfs":
        if source is None:
            raise ValueError("bfs query requires a source node")
        order = bfs_order(provider, source)
        distances = bfs_distances(provider, source)
        return QueryResult(kind, {
            "source": source,
            "reached": len(order),
            "eccentricity": max(distances.values()) if distances else 0,
            "order": order if top is None else order[:top],
        })
    if kind == "components":
        components = connected_components(provider)
        sizes = [len(component) for component in components]
        return QueryResult(kind, {
            "count": len(components),
            "largest": sizes[0] if sizes else 0,
            "sizes": sizes if top is None else sizes[:top],
        })
    if kind == "triangles":
        counts = local_triangle_counts(provider)
        return QueryResult(kind, {
            "triangles": count_triangles(provider),
            "ranking": _ranked(counts.items(), top),
        })
    if kind == "cores":
        cores = core_numbers(provider)
        return QueryResult(kind, {
            "degeneracy": max(cores.values()) if cores else 0,
            "ranking": _ranked(cores.items(), top),
        })
    raise ValueError(
        f"unknown query kind {kind!r}; expected one of {', '.join(QUERY_KINDS)}"
    )
