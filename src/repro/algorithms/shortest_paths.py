"""Dijkstra's algorithm over any neighbor provider.

The summarization models describe unweighted graphs, so edge weights are
supplied externally through a weight function (defaulting to unit
weights, where Dijkstra reduces to BFS but exercises the same code path
the paper's appendix describes).  The relaxation loop runs id-native in
:func:`repro.algorithms.kernels.dijkstra_ids`; label-keyed weight
functions are translated at the boundary.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Optional

from repro.algorithms.kernels import dijkstra_ids
from repro.algorithms.neighbors import NeighborProvider
from repro.algorithms.providers import resolve_id_adjacency

__all__ = ["dijkstra_distances", "shortest_path"]

Subnode = Hashable
WeightFunction = Callable[[Subnode, Subnode], float]


def _id_weight(weight: Optional[WeightFunction], labels) -> Optional[Callable[[int, int], float]]:
    if weight is None:
        return None
    return lambda u, v: weight(labels[u], labels[v])


def dijkstra_distances(
    provider: NeighborProvider,
    source: Subnode,
    weight: Optional[WeightFunction] = None,
) -> Dict[Subnode, float]:
    """Shortest-path distances from ``source`` to every reachable node."""
    adjacency = resolve_id_adjacency(provider)
    labels = adjacency.index.labels()
    distances, _ = dijkstra_ids(
        adjacency, adjacency.index.id_of(source), weight=_id_weight(weight, labels)
    )
    infinity = float("inf")
    return {
        labels[u]: distances[u]
        for u in range(adjacency.num_nodes)
        if distances[u] < infinity
    }


def shortest_path(
    provider: NeighborProvider,
    source: Subnode,
    target: Subnode,
    weight: Optional[WeightFunction] = None,
) -> Optional[List[Subnode]]:
    """One shortest path from ``source`` to ``target`` (``None`` if unreachable)."""
    adjacency = resolve_id_adjacency(provider)
    index = adjacency.index
    labels = index.labels()
    source_id = index.id_of(source)
    target_id = index.get(target)
    if target_id is None:
        # An unknown target is simply unreachable (historical behavior).
        return None
    distances, predecessors = dijkstra_ids(
        adjacency, source_id, weight=_id_weight(weight, labels)
    )
    if distances[target_id] == float("inf"):
        return None
    path_ids = [target_id]
    while path_ids[-1] != source_id:
        path_ids.append(predecessors[path_ids[-1]])
    path_ids.reverse()
    return [labels[u] for u in path_ids]
