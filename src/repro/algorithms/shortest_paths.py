"""Dijkstra's algorithm over any neighbor provider.

The summarization models describe unweighted graphs, so edge weights are
supplied externally through a weight function (defaulting to unit
weights, where Dijkstra reduces to BFS but exercises the same code path
the paper's appendix describes).
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, Hashable, List, Optional, Tuple

from repro.algorithms.neighbors import NeighborProvider, as_neighbor_function

__all__ = ["dijkstra_distances", "shortest_path"]

Subnode = Hashable
WeightFunction = Callable[[Subnode, Subnode], float]


def _unit_weight(_u: Subnode, _v: Subnode) -> float:
    return 1.0


def dijkstra_distances(
    provider: NeighborProvider,
    source: Subnode,
    weight: Optional[WeightFunction] = None,
) -> Dict[Subnode, float]:
    """Shortest-path distances from ``source`` to every reachable node."""
    weight_of = weight or _unit_weight
    neighbors = as_neighbor_function(provider)
    distances: Dict[Subnode, float] = {source: 0.0}
    settled: set = set()
    heap: List[Tuple[float, int, Subnode]] = [(0.0, 0, source)]
    counter = 0
    while heap:
        distance, _tie, node = heapq.heappop(heap)
        if node in settled:
            continue
        settled.add(node)
        for neighbor in neighbors(node):
            step = weight_of(node, neighbor)
            if step < 0:
                raise ValueError("Dijkstra's algorithm requires non-negative weights")
            candidate = distance + step
            if candidate < distances.get(neighbor, float("inf")):
                distances[neighbor] = candidate
                counter += 1
                heapq.heappush(heap, (candidate, counter, neighbor))
    return distances


def shortest_path(
    provider: NeighborProvider,
    source: Subnode,
    target: Subnode,
    weight: Optional[WeightFunction] = None,
) -> Optional[List[Subnode]]:
    """One shortest path from ``source`` to ``target`` (``None`` if unreachable)."""
    weight_of = weight or _unit_weight
    neighbors = as_neighbor_function(provider)
    distances: Dict[Subnode, float] = {source: 0.0}
    predecessor: Dict[Subnode, Subnode] = {}
    settled: set = set()
    heap: List[Tuple[float, int, Subnode]] = [(0.0, 0, source)]
    counter = 0
    while heap:
        distance, _tie, node = heapq.heappop(heap)
        if node in settled:
            continue
        if node == target:
            break
        settled.add(node)
        for neighbor in neighbors(node):
            candidate = distance + weight_of(node, neighbor)
            if candidate < distances.get(neighbor, float("inf")):
                distances[neighbor] = candidate
                predecessor[neighbor] = node
                counter += 1
                heapq.heappush(heap, (candidate, counter, neighbor))
    if target not in distances:
        return None
    path: List[Subnode] = [target]
    while path[-1] != source:
        path.append(predecessor[path[-1]])
    path.reverse()
    return path
