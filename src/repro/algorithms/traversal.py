"""Breadth-first and depth-first traversal over any neighbor provider."""

from __future__ import annotations

from typing import Dict, Hashable, List, Set

from repro.algorithms.kernels import bfs_distances_ids, bfs_order_ids, dfs_order_ids
from repro.algorithms.neighbors import NeighborProvider
from repro.algorithms.providers import repr_rank, resolve_id_adjacency

__all__ = ["bfs_distances", "bfs_order", "connected_component_of", "dfs_order"]

Subnode = Hashable


def bfs_order(provider: NeighborProvider, source: Subnode) -> List[Subnode]:
    """Nodes reachable from ``source`` in breadth-first visiting order.

    Neighbors are expanded in ``repr``-sorted order (via a rank
    permutation handed to the id kernel), matching the historical
    label-keyed traversal exactly.
    """
    adjacency = resolve_id_adjacency(provider)
    labels = adjacency.index.labels()
    order = bfs_order_ids(
        adjacency, adjacency.index.id_of(source), rank=repr_rank(adjacency.index)
    )
    return [labels[u] for u in order]


def bfs_distances(provider: NeighborProvider, source: Subnode) -> Dict[Subnode, int]:
    """Hop distance from ``source`` to every reachable node."""
    adjacency = resolve_id_adjacency(provider)
    labels = adjacency.index.labels()
    distances = bfs_distances_ids(adjacency, adjacency.index.id_of(source))
    return {
        labels[u]: distances[u]
        for u in range(adjacency.num_nodes)
        if distances[u] >= 0
    }


def dfs_order(provider: NeighborProvider, source: Subnode) -> List[Subnode]:
    """Nodes reachable from ``source`` in (iterative) depth-first pre-order.

    This is Algorithm 5 of the paper, made iterative so deep graphs do not
    hit Python's recursion limit; neighbors are explored in
    ``repr``-sorted order like the recursive formulation.
    """
    adjacency = resolve_id_adjacency(provider)
    labels = adjacency.index.labels()
    order = dfs_order_ids(
        adjacency, adjacency.index.id_of(source), rank=repr_rank(adjacency.index)
    )
    return [labels[u] for u in order]


def connected_component_of(provider: NeighborProvider, source: Subnode) -> Set[Subnode]:
    """The set of nodes reachable from ``source``."""
    return set(bfs_order(provider, source))
