"""Breadth-first and depth-first traversal over any neighbor provider."""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, List, Optional, Set

from repro.algorithms.neighbors import NeighborProvider, as_neighbor_function

__all__ = ["bfs_distances", "bfs_order", "connected_component_of", "dfs_order"]

Subnode = Hashable


def bfs_order(provider: NeighborProvider, source: Subnode) -> List[Subnode]:
    """Nodes reachable from ``source`` in breadth-first visiting order."""
    neighbors = as_neighbor_function(provider)
    order: List[Subnode] = []
    seen: Set[Subnode] = {source}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        order.append(node)
        for neighbor in sorted(neighbors(node), key=repr):
            if neighbor not in seen:
                seen.add(neighbor)
                queue.append(neighbor)
    return order


def bfs_distances(provider: NeighborProvider, source: Subnode) -> Dict[Subnode, int]:
    """Hop distance from ``source`` to every reachable node."""
    neighbors = as_neighbor_function(provider)
    distances: Dict[Subnode, int] = {source: 0}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for neighbor in neighbors(node):
            if neighbor not in distances:
                distances[neighbor] = distances[node] + 1
                queue.append(neighbor)
    return distances


def dfs_order(provider: NeighborProvider, source: Subnode) -> List[Subnode]:
    """Nodes reachable from ``source`` in (iterative) depth-first pre-order.

    This is Algorithm 5 of the paper, made iterative so deep graphs do not
    hit Python's recursion limit.
    """
    neighbors = as_neighbor_function(provider)
    order: List[Subnode] = []
    seen: Set[Subnode] = set()
    stack: List[Subnode] = [source]
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        order.append(node)
        # Reverse-sorted push keeps the visit order equal to the recursive
        # formulation that explores neighbors in sorted order.
        for neighbor in sorted(neighbors(node), key=repr, reverse=True):
            if neighbor not in seen:
                stack.append(neighbor)
    return order


def connected_component_of(provider: NeighborProvider, source: Subnode) -> Set[Subnode]:
    """The set of nodes reachable from ``source``."""
    return set(bfs_order(provider, source))
