"""Triangle counting over any neighbor provider (Sect. VIII-C workload).

The enumeration runs id-native in
:mod:`repro.algorithms.kernels`: sorted-adjacency merge intersection
over flat neighbor runs with a reusable flag array — no per-node Python
set, no copy-per-read, and each triangle is enumerated exactly once
(``u < v < w``) instead of six times per corner.
"""

from __future__ import annotations

from typing import Dict, Hashable

from repro.algorithms.kernels import local_triangles_ids, triangle_count_ids
from repro.algorithms.neighbors import NeighborProvider
from repro.algorithms.providers import resolve_id_adjacency

__all__ = ["count_triangles", "local_triangle_counts"]

Subnode = Hashable


def count_triangles(provider: NeighborProvider) -> int:
    """Total number of triangles in the represented graph."""
    return triangle_count_ids(resolve_id_adjacency(provider))


def local_triangle_counts(provider: NeighborProvider) -> Dict[Subnode, int]:
    """Number of triangles each node participates in."""
    adjacency = resolve_id_adjacency(provider)
    counts = local_triangles_ids(adjacency)
    labels = adjacency.index.labels()
    return {labels[u]: counts[u] for u in range(adjacency.num_nodes)}
