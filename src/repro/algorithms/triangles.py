"""Triangle counting over any neighbor provider (Sect. VIII-C workload)."""

from __future__ import annotations

from typing import Dict, Hashable

from repro.algorithms.neighbors import NeighborProvider, as_neighbor_function, node_universe

__all__ = ["count_triangles", "local_triangle_counts"]

Subnode = Hashable


def count_triangles(provider: NeighborProvider) -> int:
    """Total number of triangles in the represented graph.

    Uses the neighbor-intersection method; each triangle is found once per
    corner and the total is divided by three.
    """
    neighbors = as_neighbor_function(provider)
    cache: Dict[Subnode, set] = {}

    def cached(node: Subnode) -> set:
        stored = cache.get(node)
        if stored is None:
            stored = set(neighbors(node))
            cache[node] = stored
        return stored

    corner_count = 0
    for node in node_universe(provider):
        adjacent = cached(node)
        for neighbor in adjacent:
            corner_count += len(adjacent & cached(neighbor))
    # Every triangle is counted twice per corner (once per ordered neighbor
    # pair), i.e. six times overall.
    return corner_count // 6


def local_triangle_counts(provider: NeighborProvider) -> Dict[Subnode, int]:
    """Number of triangles each node participates in."""
    neighbors = as_neighbor_function(provider)
    cache: Dict[Subnode, set] = {}

    def cached(node: Subnode) -> set:
        stored = cache.get(node)
        if stored is None:
            stored = set(neighbors(node))
            cache[node] = stored
        return stored

    counts: Dict[Subnode, int] = {}
    for node in node_universe(provider):
        adjacent = cached(node)
        total = 0
        for neighbor in adjacent:
            total += len(adjacent & cached(neighbor))
        counts[node] = total // 2
    return counts
