"""Output analysis: compression metrics, summary statistics, method comparison."""

from repro.analysis.metrics import (
    compression_report,
    edge_composition,
    hierarchy_statistics,
    relative_size,
)
from repro.analysis.comparison import MethodResult, compare_methods, default_methods
from repro.analysis.cost_breakdown import (
    cost_decomposition,
    cost_per_root,
    hierarchy_cost_per_root,
    pruning_profile,
    superedge_cost_per_root,
    superedge_cost_per_root_pair,
)

__all__ = [
    "compression_report",
    "edge_composition",
    "hierarchy_statistics",
    "relative_size",
    "MethodResult",
    "compare_methods",
    "default_methods",
    "cost_decomposition",
    "cost_per_root",
    "hierarchy_cost_per_root",
    "pruning_profile",
    "superedge_cost_per_root",
    "superedge_cost_per_root_pair",
]
