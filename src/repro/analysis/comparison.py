"""Side-by-side comparison of summarization methods on one or more graphs.

This is the programmatic backbone of Fig. 1(a), Fig. 5(a), and Fig. 5(b):
given a graph and a set of methods, run every method, validate
losslessness, and collect relative sizes and runtimes into uniform
records.  Methods are resolved through the :mod:`repro.engine` registry —
a name, a configured :class:`~repro.engine.base.Summarizer`, or (for
backwards compatibility) a plain ``(graph, seed) -> summary`` callable
all work, with no per-method branching anywhere in the harness.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Union

from repro import engine
from repro.analysis.metrics import compression_report
from repro.engine.base import AnySummary, EngineResult, Summarizer
from repro.engine.execution import ExecutionConfig
from repro.engine.hooks import RunControl
from repro.graphs.graph import Graph

__all__ = ["MethodResult", "compare_methods", "default_methods"]

MethodFunction = Callable[[Graph, int], AnySummary]
MethodSpec = Union[str, Summarizer, MethodFunction]

#: Callback signature of ``compare_methods(..., on_progress=...)``:
#: ``(method_name, event_dict)`` per pipeline progress event.
ProgressCallback = Callable[[str, Dict[str, Any]], None]


@dataclass
class MethodResult:
    """Outcome of running one method on one graph."""

    method: str
    summary: AnySummary
    runtime_seconds: float
    report: Dict[str, float]
    history: List[Dict[str, float]] = field(default_factory=list)

    @property
    def relative_size(self) -> float:
        """Relative output size of the method on this graph."""
        return self.report["relative_size"]


def default_methods(iterations: int = 10) -> Dict[str, Summarizer]:
    """The five methods compared throughout the paper's evaluation.

    Resolved from the :mod:`repro.engine` registry; ``iterations``
    applies to the iterative methods (SLUGGER and SWeG).  The paper uses
    20, the benches default to a smaller value so the full 16-dataset
    sweep stays fast in pure Python.
    """
    return engine.default_suite(iterations=iterations)


def _resolve(methods: Optional[Union[Mapping[str, MethodSpec], Sequence[str]]]
             ) -> Dict[str, MethodSpec]:
    if methods is None:
        return dict(default_methods())
    if isinstance(methods, Mapping):
        return dict(methods)
    # A sequence of registry names: configure them exactly like the
    # default suite (same iteration default), so spelling the method
    # list out never changes the configs being compared.
    return dict(engine.default_suite(methods=methods))


def _run_spec(
    name: str,
    spec: MethodSpec,
    graph: Graph,
    seed: int,
    execution: Optional[ExecutionConfig] = None,
    service=None,
    on_progress: Optional[ProgressCallback] = None,
    resources=None,
    metrics=None,
    tracer=None,
) -> EngineResult:
    if isinstance(spec, (str, Summarizer)):
        # Registry names and configured summarizers run through the
        # service layer: one interned substrate per graph across the
        # whole comparison, identical output to a direct call.
        from repro.service import SummaryRequest, default_service

        request = SummaryRequest(
            method=spec if isinstance(spec, str) else "",
            summarizer=spec if isinstance(spec, Summarizer) else None,
            graph=graph,
            seed=seed,
            execution=execution,
        )
        control = None
        if on_progress is not None or metrics is not None or tracer is not None:
            callback = None
            if on_progress is not None:
                callback = lambda event, _name=name: on_progress(_name, event)  # noqa: E731
            control = RunControl(on_progress=callback, metrics=metrics, tracer=tracer)
        runner = service if service is not None else default_service()
        if tracer is not None:
            # One parent span per method so a comparison's trace
            # separates the methods' engine spans by enclosure.
            with tracer.span("method", method=name):
                return runner.run(request, control=control, resources=resources)
        return runner.run(request, control=control, resources=resources)
    # Legacy plain callable: wrap its output into an EngineResult so the
    # rest of the harness sees one shape.
    started = time.perf_counter()
    summary = spec(graph, seed)
    return EngineResult(
        method=name,
        summary=summary,
        runtime_seconds=time.perf_counter() - started,
    )


def compare_methods(
    graph: Graph,
    methods: Optional[Union[Mapping[str, MethodSpec], Sequence[str]]] = None,
    seed: int = 0,
    validate: bool = True,
    execution: Optional[ExecutionConfig] = None,
    service=None,
    on_progress: Optional[ProgressCallback] = None,
    resources=None,
    metrics=None,
    tracer=None,
) -> List[MethodResult]:
    """Run every method on ``graph`` and return per-method results.

    ``methods`` may be a mapping of display name → method spec, a
    sequence of registry names, or ``None`` for the paper's default
    suite.  ``execution`` is forwarded to parallel-capable methods
    (SLUGGER, SWeG); it cannot change any result, only the wall time.
    Results are ordered by ascending relative size (best compression
    first), which makes the winner immediately visible in reports.

    The harness is a thin shim over the service layer: runs go through
    ``service`` (default: the process-wide default service), so every
    method shares one interned substrate build for ``graph``.
    ``on_progress`` optionally receives ``(method_name, event)`` for
    each per-iteration pipeline event.  ``resources`` injects prebuilt
    substrate views shared by every method — e.g. a
    :class:`repro.storage.StoredGraph` mmap load.  Results are
    bit-identical to direct ``Summarizer.summarize`` calls for the same
    seeds.

    ``metrics``/``tracer`` optionally collect telemetry across the whole
    comparison: one :class:`~repro.obs.MetricsRegistry` accumulates every
    method's engine counters, and the tracer wraps each engine run in a
    ``method`` span.  Pure observation — summaries are bit-identical
    with telemetry on or off.
    """
    resolved = _resolve(methods)
    results: List[MethodResult] = []
    for name, spec in resolved.items():
        outcome = _run_spec(name, spec, graph, seed, execution, service,
                            on_progress, resources, metrics, tracer)
        if validate:
            outcome.summary.validate(graph)
        results.append(
            MethodResult(
                method=name,
                summary=outcome.summary,
                runtime_seconds=outcome.runtime_seconds,
                report=compression_report(outcome.summary, graph),
                history=outcome.history,
            )
        )
    results.sort(key=lambda result: result.relative_size)
    return results
