"""Side-by-side comparison of summarization methods on one or more graphs.

This is the programmatic backbone of Fig. 1(a), Fig. 5(a), and Fig. 5(b):
given a graph (or a dataset key) and a set of methods, run every method,
validate losslessness, and collect relative sizes and runtimes into
uniform records.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.analysis.metrics import compression_report
from repro.baselines import (
    mosso_summarize,
    randomized_summarize,
    sags_summarize,
    sweg_summarize,
)
from repro.core import Slugger, SluggerConfig
from repro.graphs.graph import Graph
from repro.model.flat import FlatSummary
from repro.model.summary import HierarchicalSummary

AnySummary = Union[HierarchicalSummary, FlatSummary]
MethodFunction = Callable[[Graph, int], AnySummary]


@dataclass
class MethodResult:
    """Outcome of running one method on one graph."""

    method: str
    summary: AnySummary
    runtime_seconds: float
    report: Dict[str, float]

    @property
    def relative_size(self) -> float:
        """Relative output size of the method on this graph."""
        return self.report["relative_size"]


def _run_slugger(graph: Graph, seed: int, iterations: int) -> AnySummary:
    config = SluggerConfig(iterations=iterations, seed=seed)
    return Slugger(config).summarize(graph).summary


def default_methods(iterations: int = 10) -> Dict[str, MethodFunction]:
    """The five methods compared throughout the paper's evaluation.

    ``iterations`` applies to the iterative methods (SLUGGER and SWeG);
    the paper uses 20, the benches default to a smaller value so the full
    16-dataset sweep stays fast in pure Python.
    """
    return {
        "slugger": lambda graph, seed: _run_slugger(graph, seed, iterations),
        "sweg": lambda graph, seed: sweg_summarize(graph, iterations=iterations, seed=seed),
        "mosso": lambda graph, seed: mosso_summarize(graph, seed=seed),
        "randomized": lambda graph, seed: randomized_summarize(graph, seed=seed),
        "sags": lambda graph, seed: sags_summarize(graph, seed=seed),
    }


def compare_methods(
    graph: Graph,
    methods: Optional[Dict[str, MethodFunction]] = None,
    seed: int = 0,
    validate: bool = True,
) -> List[MethodResult]:
    """Run every method on ``graph`` and return per-method results.

    Results are ordered by ascending relative size (best compression
    first), which makes the winner immediately visible in reports.
    """
    methods = methods if methods is not None else default_methods()
    results: List[MethodResult] = []
    for name, function in methods.items():
        started = time.perf_counter()
        summary = function(graph, seed)
        elapsed = time.perf_counter() - started
        if validate:
            summary.validate(graph)
        results.append(
            MethodResult(
                method=name,
                summary=summary,
                runtime_seconds=elapsed,
                report=compression_report(summary, graph),
            )
        )
    results.sort(key=lambda result: result.relative_size)
    return results
