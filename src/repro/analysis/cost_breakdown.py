"""Per-root decomposition of the encoding cost (Sect. III-A of the paper).

SLUGGER's greedy decisions are driven by per-root costs: the hierarchy
cost ``Cost_H^A`` (Eq. 3), the superedge cost ``Cost_P_{A,B}`` per root
pair (Eq. 4), their per-root aggregate ``Cost_P^A`` (Eq. 5), and the
combined ``Cost_A`` (Eq. 6).  The functions here recompute those
quantities *from a finished summary*, independently of the incremental
bookkeeping the algorithm maintains — which makes them both an analysis
tool (which roots dominate the encoding?) and a cross-check that the
incremental counters and the definitions agree (Eq. 2 must hold).
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Tuple

from repro.model.summary import HierarchicalSummary

__all__ = [
    "cost_decomposition",
    "cost_per_root",
    "hierarchy_cost_per_root",
    "pruning_profile",
    "superedge_cost_per_root",
    "superedge_cost_per_root_pair",
]

RootPair = Tuple[int, int]


def _root_of_supernode(summary: HierarchicalSummary) -> Dict[int, int]:
    hierarchy = summary.hierarchy
    return {supernode: hierarchy.root_of(supernode) for supernode in hierarchy.supernodes()}


def hierarchy_cost_per_root(summary: HierarchicalSummary) -> Dict[int, int]:
    """``Cost_H^A`` for every root ``A``: h-edges inside A's hierarchy tree (Eq. 3)."""
    hierarchy = summary.hierarchy
    costs: Dict[int, int] = {}
    for root in hierarchy.roots():
        # Every supernode in the tree except the root has exactly one
        # incoming h-edge from its parent.
        costs[root] = sum(1 for _ in hierarchy.descendants(root, include_self=False))
    return costs


def superedge_cost_per_root_pair(summary: HierarchicalSummary) -> Dict[RootPair, int]:
    """``Cost_P_{A,B}`` for every unordered root pair with at least one superedge (Eq. 4)."""
    root_of = _root_of_supernode(summary)
    costs: Dict[RootPair, int] = {}
    for edges in (summary.p_edges(), summary.n_edges()):
        for a, b in edges:
            root_a, root_b = root_of[a], root_of[b]
            pair = (root_a, root_b) if root_a <= root_b else (root_b, root_a)
            costs[pair] = costs.get(pair, 0) + 1
    return costs


def superedge_cost_per_root(summary: HierarchicalSummary) -> Dict[int, int]:
    """``Cost_P^A`` for every root ``A``: superedges incident to its tree (Eq. 5)."""
    costs: Dict[int, int] = {root: 0 for root in summary.hierarchy.roots()}
    for (root_a, root_b), count in superedge_cost_per_root_pair(summary).items():
        costs[root_a] = costs.get(root_a, 0) + count
        if root_b != root_a:
            costs[root_b] = costs.get(root_b, 0) + count
    return costs


def cost_per_root(summary: HierarchicalSummary) -> Dict[int, int]:
    """``Cost_A = Cost_H^A + Cost_P^A`` for every root ``A`` (Eq. 6)."""
    hierarchy_costs = hierarchy_cost_per_root(summary)
    superedge_costs = superedge_cost_per_root(summary)
    return {
        root: hierarchy_costs.get(root, 0) + superedge_costs.get(root, 0)
        for root in summary.hierarchy.roots()
    }


def cost_decomposition(summary: HierarchicalSummary) -> Dict[str, float]:
    """Aggregate decomposition of Eq. 2 with consistency flags.

    The record reports the hierarchy and superedge parts of the cost,
    verifies that the per-root hierarchy costs sum to |H| and that the
    per-root-pair superedge costs sum to |P+| + |P-|, and includes the
    share of the total borne by the single most expensive root (a
    skewness indicator used by the analysis example).
    """
    hierarchy_costs = hierarchy_cost_per_root(summary)
    pair_costs = superedge_cost_per_root_pair(summary)
    total_hierarchy = sum(hierarchy_costs.values())
    total_superedges = sum(pair_costs.values())
    per_root = cost_per_root(summary)
    max_root_cost = max(per_root.values()) if per_root else 0
    total = summary.cost()
    return {
        "cost": float(total),
        "cost_h": float(total_hierarchy),
        "cost_p": float(total_superedges),
        "num_roots": float(len(per_root)),
        "max_root_cost": float(max_root_cost),
        "max_root_share": (max_root_cost / total) if total else 0.0,
        "matches_h_edges": float(total_hierarchy == summary.num_h_edges),
        "matches_p_n_edges": float(
            total_superedges == summary.num_p_edges + summary.num_n_edges
        ),
    }


def pruning_profile(profile: Mapping[str, Any]) -> Dict[str, float]:
    """Condense a prune profile into a per-substep timing report.

    ``profile`` is the dictionary :func:`repro.core.pruning.prune`
    fills (also surfaced as ``SluggerResult.prune_profile``): raw
    per-substep wall times, the pair counters, and the parallel-round
    count.  The report adds the derived quantities the bench harness and
    the analysis examples plot — each substep's share of the total prune
    time and the split between time spent deciding in workers versus
    applying serially — so regressions in the re-parallelized pruning
    step show up as a shifted ``serial_share``.  All values are plain
    floats, safe for JSON.
    """
    edgeless = float(profile.get("edgeless_seconds", 0.0))
    single_edge = float(profile.get("single_edge_seconds", 0.0))
    reencode = float(profile.get("reencode_seconds", 0.0))
    decide = float(profile.get("reencode_decide_seconds", 0.0))
    total = edgeless + single_edge + reencode
    serial = total - decide
    return {
        "rounds": float(profile.get("rounds", 0)),
        "workers": float(profile.get("workers", 1)),
        "parallel": float(bool(profile.get("parallel", False))),
        "parallel_rounds": float(profile.get("parallel_rounds", 0)),
        "pairs_scanned": float(profile.get("pairs_scanned", 0)),
        "pairs_reencoded": float(profile.get("pairs_reencoded", 0)),
        "total_seconds": total,
        "edgeless_seconds": edgeless,
        "single_edge_seconds": single_edge,
        "reencode_seconds": reencode,
        "reencode_index_seconds": float(profile.get("reencode_index_seconds", 0.0)),
        "reencode_decide_seconds": decide,
        "reencode_apply_seconds": float(profile.get("reencode_apply_seconds", 0.0)),
        "edgeless_share": (edgeless / total) if total else 0.0,
        "single_edge_share": (single_edge / total) if total else 0.0,
        "reencode_share": (reencode / total) if total else 0.0,
        "serial_seconds": serial,
        "serial_share": (serial / total) if total else 1.0,
    }
