"""Compression metrics shared by the experiments and benches.

The central quantity is the *relative size of outputs* (Eq. 10 for the
hierarchical model, Eq. 11 for the flat model), which is what Fig. 1(a),
Fig. 5(a), and Tables III-V report.  Edge-type composition (Fig. 6) and
hierarchy-shape statistics (Tables IV-V) are also computed here so every
bench goes through the same code path.
"""

from __future__ import annotations

from typing import Dict, Union

from repro.exceptions import SummaryInvariantError
from repro.graphs.graph import Graph
from repro.model.flat import FlatSummary
from repro.model.summary import HierarchicalSummary

__all__ = [
    "compression_report",
    "edge_composition",
    "hierarchy_statistics",
    "relative_size",
]

AnySummary = Union[HierarchicalSummary, FlatSummary]


def relative_size(summary: AnySummary, graph: Graph) -> float:
    """Relative output size: encoding cost divided by |E| (Eq. 10 / Eq. 11)."""
    if graph.num_edges == 0:
        raise SummaryInvariantError("relative size is undefined for an edgeless graph")
    return summary.relative_size(graph)


def edge_composition(summary: AnySummary) -> Dict[str, float]:
    """Fraction of p-, n-, and h-edges in a summary's output (Fig. 6).

    For flat summaries the mapping of Sect. II-B is used: superedges and
    positive corrections count as p-edges, negative corrections as
    n-edges, and supernode memberships as h-edges.
    """
    if isinstance(summary, HierarchicalSummary):
        counts = {
            "p_edges": summary.num_p_edges,
            "n_edges": summary.num_n_edges,
            "h_edges": summary.num_h_edges,
        }
    elif isinstance(summary, FlatSummary):
        counts = {
            "p_edges": summary.num_superedges + len(summary.corrections_plus),
            "n_edges": len(summary.corrections_minus),
            "h_edges": summary.membership_edges(),
        }
    else:
        raise TypeError(f"unsupported summary type {type(summary).__name__}")
    total = sum(counts.values())
    if total == 0:
        return {key: 0.0 for key in counts}
    return {key: value / total for key, value in counts.items()}


def hierarchy_statistics(summary: AnySummary) -> Dict[str, float]:
    """Hierarchy-shape statistics: maximum tree height and average leaf depth.

    Flat summaries are height-1 by construction: non-singleton supernodes
    contribute depth-1 leaves, singletons depth 0 (Table IV/V metrics).
    """
    if isinstance(summary, HierarchicalSummary):
        return {
            "max_height": float(summary.hierarchy.max_height()),
            "average_leaf_depth": float(summary.hierarchy.average_leaf_depth()),
        }
    if isinstance(summary, FlatSummary):
        total_nodes = len(summary.group_of)
        if total_nodes == 0:
            return {"max_height": 0.0, "average_leaf_depth": 0.0}
        grouped = summary.membership_edges()
        max_height = 1.0 if summary.num_non_singleton_groups() else 0.0
        return {
            "max_height": max_height,
            "average_leaf_depth": grouped / total_nodes,
        }
    raise TypeError(f"unsupported summary type {type(summary).__name__}")


def compression_report(summary: AnySummary, graph: Graph) -> Dict[str, float]:
    """One flat record combining cost, relative size, composition, and shape."""
    if isinstance(summary, HierarchicalSummary):
        cost = float(summary.cost())
    else:
        cost = float(summary.cost_eq11())
    report: Dict[str, float] = {
        "num_nodes": float(graph.num_nodes),
        "num_edges": float(graph.num_edges),
        "cost": cost,
        "relative_size": relative_size(summary, graph),
    }
    report.update({f"share_{key}": value for key, value in edge_composition(summary).items()})
    report.update(hierarchy_statistics(summary))
    return report
