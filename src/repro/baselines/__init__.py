"""Baseline lossless graph summarization algorithms (Sect. V / Sect. IV).

All baselines operate under the flat (Navlakha) summarization model and
return :class:`~repro.model.flat.FlatSummary` objects, so their outputs
can be compared with SLUGGER's via Eq. 11:

* :func:`randomized_summarize` — RANDOMIZED [Navlakha et al., SIGMOD'08]
* :func:`greedy_summarize` — GREEDY [Navlakha et al., SIGMOD'08]
* :func:`sweg_summarize` — SWeG [Shin et al., WWW'19]
* :func:`sags_summarize` — SAGS [Khan et al., Computing'15]
* :class:`MoSSo` / :func:`mosso_summarize` — MoSSo [Ko et al., KDD'20]
"""

from repro.baselines.common import FlatGroupingState
from repro.baselines.randomized import randomized_summarize
from repro.baselines.greedy import greedy_summarize
from repro.baselines.sweg import SwegConfig, drop_corrections, sweg_summarize
from repro.baselines.sags import SagsConfig, sags_summarize
from repro.baselines.mosso import MoSSo, MossoConfig, mosso_summarize

__all__ = [
    "FlatGroupingState",
    "randomized_summarize",
    "greedy_summarize",
    "SwegConfig",
    "sweg_summarize",
    "drop_corrections",
    "SagsConfig",
    "sags_summarize",
    "MoSSo",
    "MossoConfig",
    "mosso_summarize",
]
