"""Shared machinery for flat-model (Navlakha) summarizers.

Every baseline maintains a partition of the graph's nodes into groups
(candidate supernodes) and needs the same two primitives:

* the optimal encoding cost of the subedges between two groups (list the
  edges individually, or spend one superedge plus negative corrections);
* the *saving* of merging two groups, i.e. the normalized reduction of
  the groups' total encoding cost (Navlakha et al., Eq. used by
  RANDOMIZED/GREEDY and re-used by SWeG).

:class:`FlatGroupingState` provides both on top of per-group superneighbor
counters, so the baselines stay O(degree) per decision just like the
original algorithms.

Dense substrate
---------------
The state works on the dense integer-id substrate
(:class:`~repro.graphs.dense.DenseAdjacency`): members and node arguments
are contiguous node *ids* (assigned in graph node-insertion order, so for
the common 0..n-1 integer-labelled graphs id == label), the node → group
mapping is a plain list, and neighbor reads index the dense adjacency.
Original labels reappear only at the :meth:`to_summary` boundary.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.exceptions import SummaryInvariantError
from repro.graphs.dense import CSRAdjacency, DenseAdjacency
from repro.graphs.graph import Graph
from repro.graphs.staleness import ensure_fresh_views
from repro.model.flat import FlatSummary

__all__ = ["FlatGroupingState", "pair_encoding_cost"]


def pair_encoding_cost(subedges: int, possible: int) -> int:
    """Optimal flat-model cost of one group pair: min(list edges, superedge + corrections)."""
    if subedges <= 0:
        return 0
    return min(subedges, 1 + (possible - subedges))


class FlatGroupingState:
    """A mutable partition of dense node ids with superneighbor bookkeeping.

    The state tracks, for every group, the number of subedges to every
    other group (and within itself), which is all the flat model needs to
    evaluate encoding costs and merge savings.
    """

    def __init__(
        self,
        graph: Graph,
        dense: Optional[DenseAdjacency] = None,
        csr: Optional[CSRAdjacency] = None,
    ) -> None:
        self.graph = graph
        ensure_fresh_views(graph.num_edges, dense=dense, csr=csr)
        self.dense = dense if dense is not None else DenseAdjacency.from_graph(graph)
        self.index = self.dense.index
        num_nodes = self.dense.num_nodes
        # Initially group id i == node id i, one singleton per node.
        self.members: Dict[int, Set[int]] = {node: {node} for node in range(num_nodes)}
        self.group_of: List[int] = list(range(num_nodes))
        self.group_adj: Dict[int, Dict[int, int]] = {node: {} for node in range(num_nodes)}
        self._next_id = num_nodes
        # A prebuilt frozen view (service interning, storage mmap) seeds
        # the cache; it is dropped like the self-built one on mutation.
        self._csr: Optional[CSRAdjacency] = csr
        for u, v in self.dense.edge_ids():
            self._bump(u, v, 1)

    @classmethod
    def from_substrate(cls, index, csr) -> "FlatGroupingState":
        """Initialize straight from an ``(index, csr)`` substrate pair.

        Mirrors :meth:`repro.core.state.SluggerState.from_substrate`: the
        graph facade is a read-only
        :class:`~repro.graphs.view.CSRGraphView` and the dense mirror a
        :class:`~repro.graphs.dense.LazyDenseAdjacency`, so a cached
        container feeds the flat baselines without materializing a
        label-keyed graph (counters stream off ``csr.edge_ids()``).
        """
        from repro.graphs.dense import LazyDenseAdjacency
        from repro.graphs.view import CSRGraphView

        return cls(
            CSRGraphView(csr, index), dense=LazyDenseAdjacency(csr), csr=csr
        )

    def frozen_adjacency(self) -> CSRAdjacency:
        """The frozen CSR view of the current graph adjacency (cached).

        Used by sharded read-only passes (SWeG's parallel divide step);
        the cache is invalidated whenever an edge mutation changes the
        underlying dense adjacency, so static-graph consumers pay the
        freeze exactly once.
        """
        if self._csr is None:
            self._csr = self.dense.freeze()
        return self._csr

    def _bump(self, group_a: int, group_b: int, delta: int) -> None:
        adj_a = self.group_adj[group_a]
        adj_a[group_b] = adj_a.get(group_b, 0) + delta
        if group_a != group_b:
            adj_b = self.group_adj[group_b]
            adj_b[group_a] = adj_b.get(group_a, 0) + delta

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def groups(self) -> List[int]:
        """Ids of all current groups."""
        return list(self.members)

    def size(self, group: int) -> int:
        """Number of nodes in ``group``."""
        return len(self.members[group])

    def neighbors(self, group: int) -> Set[int]:
        """Groups connected to ``group`` by at least one subedge (excluding itself)."""
        result = set(self.group_adj[group])
        result.discard(group)
        return result

    def two_hop_groups(self, group: int) -> Set[int]:
        """Groups within distance two of ``group`` (the merge-candidate pool)."""
        direct = self.neighbors(group)
        result = set(direct)
        for other in direct:
            result.update(self.group_adj[other])
        result.discard(group)
        return result

    def pair_cost(self, group_a: int, group_b: int) -> int:
        """Optimal encoding cost of the subedges between two groups (or within one)."""
        subedges = self.group_adj[group_a].get(group_b, 0)
        if group_a == group_b:
            size = self.size(group_a)
            possible = size * (size - 1) // 2
        else:
            possible = self.size(group_a) * self.size(group_b)
        return pair_encoding_cost(subedges, possible)

    def group_cost(self, group: int) -> int:
        """Navlakha cost of ``group``: sum of pair costs over all incident pairs."""
        return sum(self.pair_cost(group, other) for other in self.group_adj[group])

    def merged_cost(self, group_a: int, group_b: int) -> int:
        """Cost of the hypothetical merged group ``A ∪ B``."""
        size_a, size_b = self.size(group_a), self.size(group_b)
        merged_size = size_a + size_b
        adj_a, adj_b = self.group_adj[group_a], self.group_adj[group_b]
        cost = 0
        intra = (
            adj_a.get(group_a, 0) + adj_b.get(group_b, 0) + adj_a.get(group_b, 0)
        )
        cost += pair_encoding_cost(intra, merged_size * (merged_size - 1) // 2)
        others = (set(adj_a) | set(adj_b)) - {group_a, group_b}
        for other in others:
            subedges = adj_a.get(other, 0) + adj_b.get(other, 0)
            cost += pair_encoding_cost(subedges, merged_size * self.size(other))
        return cost

    def saving(self, group_a: int, group_b: int) -> float:
        """Normalized cost reduction of merging two groups (Navlakha's saving)."""
        cost_a = self.group_cost(group_a)
        cost_b = self.group_cost(group_b)
        overlap = self.pair_cost(group_a, group_b)
        denominator = cost_a + cost_b - overlap
        if denominator <= 0:
            return float("-inf")
        return 1.0 - self.merged_cost(group_a, group_b) / denominator

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_singleton(self, node: int) -> int:
        """Register a fresh singleton group for a (new) node id."""
        group_id = self._next_id
        self._next_id += 1
        self.members[group_id] = {node}
        while node >= len(self.group_of):
            self.group_of.append(-1)
        self.group_of[node] = group_id
        self.group_adj[group_id] = {}
        return group_id

    def insert_edge(self, u: int, v: int) -> None:
        """Record a new graph edge ``(u, v)`` (ids) in substrate and counters."""
        self.dense.add_edge(u, v)
        self._csr = None
        self._bump(self.group_of[u], self.group_of[v], 1)

    def delete_edge(self, u: int, v: int) -> None:
        """Remove the graph edge ``(u, v)`` (ids) from substrate and counters."""
        self.dense.remove_edge(u, v)
        self._csr = None
        self._bump(self.group_of[u], self.group_of[v], -1)

    def merge(self, group_a: int, group_b: int) -> int:
        """Merge two groups; returns the id of the surviving (larger) group."""
        if group_a == group_b:
            raise SummaryInvariantError("cannot merge a group with itself")
        if group_a not in self.members or group_b not in self.members:
            raise SummaryInvariantError("both groups must exist to merge")
        # Keep the larger member set to make the merge cost amortized.
        if self.size(group_b) > self.size(group_a):
            group_a, group_b = group_b, group_a
        members_b = self.members.pop(group_b)
        self.members[group_a].update(members_b)
        group_of = self.group_of
        for node in members_b:
            group_of[node] = group_a

        adj_a = self.group_adj[group_a]
        adj_b = self.group_adj.pop(group_b)
        intra = adj_a.pop(group_b, 0) + adj_b.pop(group_b, 0)
        adj_b.pop(group_a, 0)
        if intra:
            adj_a[group_a] = adj_a.get(group_a, 0) + intra
        for other, value in adj_b.items():
            adj_a[other] = adj_a.get(other, 0) + value
        for other in list(adj_a):
            if other in (group_a, group_b):
                continue
            other_adj = self.group_adj[other]
            other_adj.pop(group_b, None)
            other_adj[group_a] = adj_a[other]
        return group_a

    def move(self, node: int, target_group: Optional[int]) -> int:
        """Move node id ``node`` into ``target_group`` (or a fresh singleton when ``None``).

        Returns the id of the group the node ends up in.  Used by the
        incremental baseline (MoSSo), which relocates individual nodes
        rather than merging whole groups.
        """
        source = self.group_of[node]
        if target_group == source:
            return source
        if target_group is not None and target_group not in self.members:
            raise SummaryInvariantError(f"unknown target group {target_group}")
        # Detach from the source group.
        group_of = self.group_of
        self.members[source].discard(node)
        for neighbor in self.dense.neighbors[node]:
            self._bump(source, group_of[neighbor], -1)
        if target_group is None:
            target_group = self._next_id
            self._next_id += 1
            self.members[target_group] = set()
            self.group_adj[target_group] = {}
        self.members[target_group].add(node)
        group_of[node] = target_group
        for neighbor in self.dense.neighbors[node]:
            self._bump(target_group, group_of[neighbor], 1)
        if not self.members[source]:
            del self.members[source]
            leftovers = self.group_adj.pop(source)
            for other in leftovers:
                if other != source and other in self.group_adj:
                    self.group_adj[other].pop(source, None)
        return target_group

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def total_cost(self) -> int:
        """Navlakha encoding cost of the current grouping (without membership edges)."""
        total = 0
        for group, adjacency in self.group_adj.items():
            for other in adjacency:
                if other >= group:
                    total += self.pair_cost(group, other)
        return total

    def to_summary(self) -> FlatSummary:
        """Freeze the current grouping into an optimally encoded :class:`FlatSummary`.

        This is the boundary where dense ids are mapped back to the
        original node labels.
        """
        labels = self.index.labels()
        return FlatSummary.from_grouping(
            self.graph,
            ([labels[node] for node in group] for group in self.members.values()),
        )
