"""GREEDY summarization [Navlakha, Rastogi, Shrivastava; SIGMOD 2008].

At every step the pair of supernodes with the globally largest positive
saving is merged.  The method gives the most concise flat summaries of
the 2008 paper but is quadratic-ish in practice, so it is used here for
small graphs, tests, and as an optimality reference for the other
heuristics.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Set, Tuple

from repro.baselines.common import FlatGroupingState
from repro.engine.hooks import GraphResources
from repro.graphs.graph import Graph
from repro.model.flat import FlatSummary

__all__ = ["greedy_summarize"]


def greedy_summarize(
    graph: Graph,
    max_merges: int = 10**9,
    resources: Optional[GraphResources] = None,
) -> FlatSummary:
    """Summarize ``graph`` by repeatedly merging the best pair of supernodes.

    A lazy max-heap of candidate pairs is kept; entries are re-validated
    when popped (the standard way to avoid decrease-key).  Only pairs
    within distance two of each other are considered, since farther pairs
    can never have positive saving.
    """
    state = FlatGroupingState(
        graph, dense=resources.dense() if resources is not None else None
    )
    heap: List[Tuple[float, int, int]] = []
    alive: Set[int] = set(state.groups())

    def push_candidates(group: int) -> None:
        for other in state.two_hop_groups(group):
            if other not in state.members:
                continue
            value = state.saving(group, other)
            if value > 0:
                heapq.heappush(heap, (-value, min(group, other), max(group, other)))

    for group in state.groups():
        for other in state.two_hop_groups(group):
            if other > group:
                value = state.saving(group, other)
                if value > 0:
                    heapq.heappush(heap, (-value, group, other))

    merges = 0
    while heap and merges < max_merges:
        negative_saving, group_a, group_b = heapq.heappop(heap)
        if group_a not in state.members or group_b not in state.members:
            continue
        current = state.saving(group_a, group_b)
        if current <= 0:
            continue
        if abs(-negative_saving - current) > 1e-12:
            # The stored saving is stale; re-insert with the fresh value.
            heapq.heappush(heap, (-current, group_a, group_b))
            continue
        merged = state.merge(group_a, group_b)
        alive.discard(group_a)
        alive.discard(group_b)
        alive.add(merged)
        merges += 1
        push_candidates(merged)
    return state.to_summary()
