"""MoSSo: incremental lossless graph summarization [Ko, Kook, Shin; KDD 2020].

MoSSo maintains a flat summary of a *fully dynamic* graph stream: every
edge insertion or deletion triggers a constant amount of corrective work.
The reproduction follows the algorithm's two key ideas:

* when an edge ``(u, v)`` arrives, a limited number of candidate nodes
  (sampled from the neighborhoods of ``u`` and ``v``) get a chance to
  *move* — either into the supernode of a sampled neighbor or out into a
  fresh singleton ("escape", taken with probability ``e``);
* a move is accepted only if it does not increase the encoding cost, so
  compression quality tracks the offline algorithms while each update
  stays cheap.

The class exposes the streaming API (``add_edge`` / ``remove_edge``);
:func:`mosso_summarize` replays a static graph as an insertion stream,
which is how MoSSo is compared against the offline methods in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, List, Optional

from repro.baselines.common import FlatGroupingState
from repro.exceptions import ConfigurationError
from repro.graphs.graph import Graph
from repro.model.flat import FlatSummary
from repro.utils.rng import SeedLike, ensure_rng

__all__ = ["MoSSo", "MossoConfig", "mosso_summarize"]

Subnode = Hashable


@dataclass
class MossoConfig:
    """Parameters of MoSSo (paper defaults: escape probability 0.3, sample size 120)."""

    escape_probability: float = 0.3
    sample_size: int = 120
    moves_per_update: int = 3
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.escape_probability <= 1.0:
            raise ConfigurationError("escape_probability must be in [0, 1]")
        if self.sample_size < 1:
            raise ConfigurationError("sample_size must be >= 1")
        if self.moves_per_update < 1:
            raise ConfigurationError("moves_per_update must be >= 1")


class MoSSo:
    """Incremental summarizer over a fully dynamic edge stream."""

    def __init__(self, config: Optional[MossoConfig] = None, **overrides) -> None:
        if config is None:
            config = MossoConfig(**overrides)
        elif overrides:
            raise TypeError("pass either a config object or keyword overrides, not both")
        self.config = config
        self._rng = ensure_rng(config.seed)
        self._graph = Graph()
        self._state: Optional[FlatGroupingState] = None

    # ------------------------------------------------------------------
    # Streaming interface
    # ------------------------------------------------------------------
    @property
    def graph(self) -> Graph:
        """The graph accumulated from the stream so far."""
        return self._graph

    @property
    def substrate(self):
        """The dense integer-id adjacency mirroring the stream (or ``None``).

        The grouping state maintains it incrementally — one
        :class:`~repro.graphs.dense.DenseAdjacency` update per event —
        so downstream consumers (checkpoint analytics, the streaming
        bench) can read array-backed adjacency without rebuilding it.
        """
        return self._state.dense if self._state is not None else None

    def add_edge(self, u: Subnode, v: Subnode) -> None:
        """Process the insertion of edge ``(u, v)`` (node labels)."""
        if u == v or self._graph.has_edge(u, v):
            return
        # Build the grouping state from the graph *before* the new edge so
        # the substrate/counter update below is applied exactly once.
        self._ensure_state()
        assert self._state is not None
        state = self._state
        self._graph.add_edge(u, v)
        for node in (u, v):
            if node not in state.index:
                state.add_singleton(state.dense.add_node(node))
        state.insert_edge(state.index.id_of(u), state.index.id_of(v))
        self._corrective_moves(u, v)

    def remove_edge(self, u: Subnode, v: Subnode) -> None:
        """Process the deletion of edge ``(u, v)`` (a no-op if absent)."""
        if self._state is None or not self._graph.has_edge(u, v):
            return
        state = self._state
        state.delete_edge(state.index.id_of(u), state.index.id_of(v))
        self._graph.remove_edge(u, v)
        self._corrective_moves(u, v)

    def summary(self) -> FlatSummary:
        """The current flat summary of the accumulated graph."""
        self._ensure_state()
        assert self._state is not None
        return self._state.to_summary()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    # Candidate *sampling* stays on the label graph: the sampled neighbor
    # lists (and therefore the RNG consumption) are exactly those of the
    # original algorithm, keeping outputs bit-identical for fixed seeds.
    # All grouping-state reads and writes go through dense ids.
    def _ensure_state(self) -> None:
        if self._state is None:
            self._state = FlatGroupingState(self._graph)

    def _corrective_moves(self, u: Subnode, v: Subnode) -> None:
        """Give a few sampled nodes around the update a chance to relocate."""
        assert self._state is not None
        candidates: List[Subnode] = [u, v]
        for endpoint in (u, v):
            neighbors = list(self._graph.neighbor_set(endpoint))
            if neighbors:
                self._rng.shuffle(neighbors)
                candidates.extend(neighbors[: self.config.moves_per_update])
        for node in candidates[: self.config.sample_size]:
            self._try_move(node)

    def _try_move(self, node: Subnode) -> bool:
        """Move ``node`` to the best of {stay, escape to singleton, join a neighbor's group}."""
        assert self._state is not None
        state = self._state
        id_of = state.index.id_of
        node_id = id_of(node)
        current_group = state.group_of[node_id]
        neighbors = list(self._graph.neighbor_set(node))
        if not neighbors:
            return False
        # Candidate target groups: a few sampled neighbors' groups, plus
        # escaping into a fresh singleton with the configured probability.
        # MoSSo deliberately looks at a constant number of candidates per
        # update so the per-edge work stays bounded.
        sample = neighbors
        if len(sample) > self.config.moves_per_update:
            sample = self._rng.sample(sample, self.config.moves_per_update)
        group_of = state.group_of
        target_groups = {group_of[id_of(neighbor)] for neighbor in sample}
        target_groups.discard(current_group)
        consider_escape = (
            len(state.members[current_group]) > 1
            and self._rng.random() < self.config.escape_probability
        )
        if not target_groups and not consider_escape:
            return False

        involved = target_groups | {current_group}
        context = self._evaluation_context(node, involved)
        baseline = self._placement_cost(node_id, involved, context)

        stay = object()  # Sentinel: group ids can change when the node's
        best_target: object = stay  # original group is emptied and re-created.
        best_cost = baseline
        if consider_escape:
            escaped = state.move(node_id, None)
            cost = self._placement_cost(node_id, involved | {escaped}, context)
            if cost < best_cost:
                best_cost = cost
                best_target = None
            current_group = self._restore(node_id, current_group)
        for target in target_groups:
            state.move(node_id, target)
            cost = self._placement_cost(node_id, involved, context)
            if cost < best_cost:
                best_cost = cost
                best_target = target
            current_group = self._restore(node_id, current_group)
        if best_target is stay:
            return False
        state.move(node_id, best_target if best_target is None else int(best_target))
        return True

    def _restore(self, node: int, original_group: int) -> int:
        """Put ``node`` back into its original group after a trial move.

        If the trial move emptied (and therefore deleted) the original
        group, a fresh singleton takes its place and its id is returned.
        """
        assert self._state is not None
        state = self._state
        if original_group in state.members:
            return state.move(node, original_group)
        return state.move(node, None)

    def _evaluation_context(self, node: Subnode, candidate_groups) -> List[int]:
        """Fixed set of counterpart groups used to price every trial placement.

        Only the pairs between the node's (current or trial) group and
        these counterparts change when the node moves, so restricting the
        cost to them keeps every trial O(degree) while staying comparable
        across trials.
        """
        assert self._state is not None
        state = self._state
        groups = set(candidate_groups)
        neighbors = list(self._graph.neighbor_set(node))
        if len(neighbors) > self.config.sample_size:
            neighbors = sorted(neighbors, key=repr)[: self.config.sample_size]
        group_of = state.group_of
        id_of = state.index.id_of
        for neighbor in neighbors:
            groups.add(group_of[id_of(neighbor)])
        return sorted(groups)

    def _placement_cost(self, node: int, involved, context: List[int]) -> int:
        """Cost of every pair touching the involved groups, for the current placement.

        ``involved`` are the groups whose content differs between trial
        placements (the node's original group, the candidate targets, and
        a possible escape singleton); ``context`` is the fixed set of
        counterpart groups.  The sum also includes the flat-model
        membership edges of the involved groups (one per member once a
        group is non-singleton), which keeps the heuristic aligned with
        the Eq. 11 output size and stops it from growing supernodes that
        never pay for themselves.
        """
        assert self._state is not None
        state = self._state
        # Sorted for hash-order independence; only commutative cost sums
        # consume the order, so the pinned output is unchanged.
        live = sorted(
            group for group in {*involved, state.group_of[node]} if group in state.members
        )
        live_set = set(live)
        cost = 0
        for group in live:
            for other in context:
                if other not in state.members:
                    continue
                if other in live_set and other <= group:
                    continue  # Each involved-involved pair is counted once.
                cost += state.pair_cost(group, other)
            cost += state.pair_cost(group, group)
            size = state.size(group)
            if size >= 2:
                cost += size
        return cost


def mosso_summarize(
    graph: Graph, config: Optional[MossoConfig] = None, **overrides
) -> FlatSummary:
    """Run MoSSo over ``graph`` replayed as an edge-insertion stream."""
    summarizer = MoSSo(config, **overrides)
    rng = ensure_rng(summarizer.config.seed)
    edges = sorted(graph.edges(), key=repr)
    rng.shuffle(edges)
    for node in graph.nodes():
        # Isolated nodes never appear in the stream; register them so the
        # output covers exactly the input's node set.
        if graph.degree(node) == 0:
            summarizer.graph.add_node(node)
    for u, v in edges:
        summarizer.add_edge(u, v)
    return summarizer.summary()
