"""RANDOMIZED summarization [Navlakha, Rastogi, Shrivastava; SIGMOD 2008].

The algorithm repeatedly picks a random unfinished supernode ``u``,
searches its two-hop neighborhood for the partner ``v`` with the largest
saving, merges the pair when the saving is positive, and retires ``u``
otherwise.  It is the slowest but conceptually simplest baseline of the
paper's evaluation.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.common import FlatGroupingState
from repro.engine.hooks import GraphResources
from repro.graphs.graph import Graph
from repro.model.flat import FlatSummary
from repro.utils.rng import SeedLike, ensure_rng

__all__ = ["randomized_summarize"]


def randomized_summarize(
    graph: Graph,
    seed: SeedLike = None,
    max_rounds: Optional[int] = None,
    resources: Optional[GraphResources] = None,
) -> FlatSummary:
    """Summarize ``graph`` with the RANDOMIZED heuristic.

    Parameters
    ----------
    graph:
        Input graph.
    seed:
        Seed for the random supernode selection.
    max_rounds:
        Optional cap on the number of pick-and-merge rounds (useful in
        tests); ``None`` runs until every supernode is finished, as in the
        original algorithm.
    resources:
        Optional prebuilt substrate views (service graph-store interning);
        cannot change the summary.
    """
    rng = ensure_rng(seed)
    state = FlatGroupingState(
        graph, dense=resources.dense() if resources is not None else None
    )
    unfinished = set(state.groups())
    rounds = 0
    while unfinished:
        if max_rounds is not None and rounds >= max_rounds:
            break
        rounds += 1
        group = rng.choice(sorted(unfinished))
        if group not in state.members:
            unfinished.discard(group)
            continue
        best_saving = 0.0
        best_partner = None
        for candidate in state.two_hop_groups(group):
            if candidate not in state.members:
                continue
            value = state.saving(group, candidate)
            if value > best_saving:
                best_saving = value
                best_partner = candidate
        if best_partner is None:
            unfinished.discard(group)
            continue
        merged = state.merge(group, best_partner)
        unfinished.discard(group)
        unfinished.discard(best_partner)
        unfinished.add(merged)
    return state.to_summary()
