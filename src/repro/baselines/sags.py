"""SAGS: set-based approximate graph summarization [Khan, Nawaz, Lee; Computing 2015].

SAGS avoids computing merge savings altogether: it hashes node
neighborhoods into locality-sensitive-hashing (LSH) signatures, bands the
signatures, and directly merges nodes that collide in a band (accepting
each collision with probability ``p``).  This makes it the fastest — and,
as in the paper's evaluation, the least concise — baseline.

Parameters follow the paper's setup: signature length ``h = 30``, band
count ``b = 10``, acceptance probability ``p = 0.3``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

from repro.baselines.common import FlatGroupingState
from repro.core.shingles import make_hash_function
from repro.engine.hooks import GraphResources
from repro.exceptions import ConfigurationError
from repro.graphs.graph import Graph
from repro.model.flat import FlatSummary
from repro.utils.rng import ensure_rng

__all__ = ["SagsConfig", "sags_summarize"]

Subnode = Hashable


@dataclass
class SagsConfig:
    """Parameters of SAGS (paper defaults: h=30, b=10, p=0.3)."""

    signature_length: int = 30
    bands: int = 10
    acceptance_probability: float = 0.3
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.signature_length < 1:
            raise ConfigurationError("signature_length must be >= 1")
        if self.bands < 1 or self.bands > self.signature_length:
            raise ConfigurationError("bands must be in [1, signature_length]")
        if not 0.0 < self.acceptance_probability <= 1.0:
            raise ConfigurationError("acceptance_probability must be in (0, 1]")


def sags_summarize(
    graph: Graph,
    config: Optional[SagsConfig] = None,
    resources: Optional["GraphResources"] = None,
    **overrides,
) -> FlatSummary:
    """Summarize ``graph`` with the SAGS LSH heuristic; returns a flat summary."""
    if config is None:
        config = SagsConfig(**overrides)
    elif overrides:
        raise TypeError("pass either a config object or keyword overrides, not both")
    rng = ensure_rng(config.seed)
    state = FlatGroupingState(
        graph, dense=resources.dense() if resources is not None else None
    )
    if graph.num_edges == 0:
        return state.to_summary()

    signatures = _minhash_signatures(state.dense, config, rng)
    rows_per_band = config.signature_length // config.bands

    for band in range(config.bands):
        start = band * rows_per_band
        buckets: Dict[Tuple[int, ...], List[int]] = {}
        for node, signature in enumerate(signatures):
            key = tuple(signature[start:start + rows_per_band])
            buckets.setdefault(key, []).append(node)
        for colliding in buckets.values():
            if len(colliding) < 2:
                continue
            # Merge colliding nodes into the group of the first one, each
            # with the configured acceptance probability.
            anchor = state.group_of[colliding[0]]
            for node in colliding[1:]:
                if rng.random() > config.acceptance_probability:
                    continue
                group = state.group_of[node]
                if group == anchor or anchor not in state.members or group not in state.members:
                    continue
                anchor = state.merge(anchor, group)
    return state.to_summary()


def _minhash_signatures(dense, config: SagsConfig, rng) -> List[List[int]]:
    """Min-hash signature of every node id's closed neighborhood.

    Each hash function is evaluated once per node over the original
    labels (``signature_length * n`` invocations, shared across closed
    neighborhoods through per-function value rows), instead of once per
    (function, neighborhood member) pair as the naive scheme would — the
    produced minima are identical.
    """
    labels = dense.index.labels()
    value_rows: List[List[int]] = []
    for _ in range(config.signature_length):
        hash_function = make_hash_function(rng.randrange(2**61))
        value_rows.append([hash_function(label) for label in labels])
    signatures: List[List[int]] = []
    for node, neighbors in enumerate(dense.neighbors):
        closed_neighborhood = [node, *neighbors]
        signatures.append([
            min(map(row.__getitem__, closed_neighborhood)) for row in value_rows
        ])
    return signatures
