"""SWeG: lossless (and lossy) summarization of web-scale graphs [Shin et al., WWW 2019].

SWeG is the strongest flat-model competitor in the paper's evaluation and
shares its outer structure with SLUGGER: ``T`` rounds of (a) dividing the
supernodes into groups via min-hash shingles and (b) merging, within each
group, pairs that clear the threshold θ(t) = (1 + t)^-1.  Inside a group
SWeG ranks partners by a Jaccard similarity of neighbor sets (cheap) and
then checks the exact saving of the best-ranked partner before merging.

The optional corrections-dropping post-step implements SWeG's lossy mode:
up to ``epsilon * degree(v)`` corrections incident to each node may be
dropped, trading exactness for size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Set

from repro.baselines.common import FlatGroupingState
from repro.core.shingles import (
    dense_subnode_shingles,
    make_hash_function,
    sharded_shingles,
)
from repro.engine.execution import (
    ExecutionConfig,
    ProcessShardExecutor,
    shard_bounds,
)
from repro.engine.hooks import GraphResources, RunControl
from repro.exceptions import ConfigurationError
from repro.graphs.graph import Graph
from repro.model.flat import FlatSummary
from repro.utils.rng import SeedLike, ensure_rng

__all__ = ["SwegConfig", "drop_corrections", "sweg_summarize"]

Subnode = Hashable


@dataclass
class SwegConfig:
    """Parameters of SWeG (defaults follow the paper's experimental settings)."""

    iterations: int = 20
    max_group_size: int = 500
    shingle_rounds: int = 10
    epsilon: float = 0.0
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ConfigurationError(f"iterations must be >= 1, got {self.iterations}")
        if self.max_group_size < 2:
            raise ConfigurationError(f"max_group_size must be >= 2, got {self.max_group_size}")
        if self.epsilon < 0:
            raise ConfigurationError(f"epsilon must be >= 0, got {self.epsilon}")

    def threshold(self, iteration: int) -> float:
        """Merging threshold θ(t) of SWeG (same schedule as SLUGGER's Eq. 9)."""
        if iteration >= self.iterations:
            return 0.0
        return 1.0 / (1.0 + iteration)


def sweg_summarize(
    graph: Graph,
    config: Optional[SwegConfig] = None,
    execution: Optional[ExecutionConfig] = None,
    control: Optional[RunControl] = None,
    resources: Optional[GraphResources] = None,
    **overrides,
) -> FlatSummary:
    """Summarize ``graph`` with SWeG; returns a flat summary.

    With ``epsilon == 0`` (default) the output is lossless.  A positive
    ``epsilon`` additionally drops corrections within the per-node error
    budget, reproducing SWeG's lossy variant.

    ``execution`` shards the divide step's per-round shingle sweeps over
    worker processes; the pool is either the caller's warm one
    (``resources.shingle_executor``, shared across runs by the serving
    layer) or a per-run fork.  Shingle values — and hence the summary —
    are bit-identical for a fixed seed at any worker count.  ``control``
    receives one progress event per iteration and its cancel token is
    checked between iterations.
    """
    if config is None:
        config = SwegConfig(**overrides)
    elif overrides:
        raise TypeError("pass either a config object or keyword overrides, not both")
    rng = ensure_rng(config.seed)
    # Only the sharded divide step reads the frozen CSR; fetching it on
    # serial runs would force an O(n+m) freeze nothing consumes.
    wants_csr = (
        resources is not None
        and execution is not None
        and execution.parallel
        and graph.num_nodes >= execution.shingle_parallel_min_nodes
    )
    state = FlatGroupingState(
        graph,
        dense=resources.dense() if resources is not None else None,
        csr=resources.csr() if wants_csr else None,
    )

    shingler = _make_shingler(state, execution, resources)
    try:
        if graph.num_edges > 0:
            for iteration in range(1, config.iterations + 1):
                if control is not None:
                    control.checkpoint()
                threshold = config.threshold(iteration)
                groups = _divide(state, config, rng, shingler)
                merges = 0
                for group in groups:
                    merges += _merge_within_group(state, group, threshold, rng)
                if control is not None:
                    control.emit(
                        "iteration",
                        iteration=iteration,
                        iterations=config.iterations,
                        threshold=threshold,
                        merges=merges,
                        groups=len(state.members),
                    )
    finally:
        shingler.close()

    summary = state.to_summary()
    if config.epsilon > 0:
        drop_corrections(summary, graph, config.epsilon, seed=rng.randrange(2**61))
    return summary


# ----------------------------------------------------------------------
# Dividing step
# ----------------------------------------------------------------------
class _SerialShingler:
    """Per-round shingle sweeps computed inline (the reference path)."""

    def __init__(self, state: FlatGroupingState) -> None:
        self._dense = state.dense

    def __call__(self, seed: int) -> List[int]:
        return dense_subnode_shingles(self._dense, make_hash_function(seed))

    def close(self) -> None:
        pass


class _ShardedShingler:
    """Per-round shingle sweeps sharded over a persistent forked pool.

    The pool lives at least as long as the SWeG run: the adjacency never
    changes, so the workers' forked CSR snapshot stays valid across all
    rounds and only ``(seed, start, stop)`` payloads cross the process
    boundary.  With a *borrowed* pool (the serving layer's per-graph warm
    pool) even the fork is amortized across runs — ``close()`` then
    leaves the pool to its owner.  Values are bit-identical to
    :class:`_SerialShingler` — sharding only moves where the minima are
    computed.
    """

    def __init__(
        self,
        state: FlatGroupingState,
        execution: ExecutionConfig,
        executor: Optional[ProcessShardExecutor] = None,
    ) -> None:
        self._bounds = shard_bounds(state.dense.num_nodes, execution.workers)
        self._owned = executor is None
        if executor is None:
            csr = state.frozen_adjacency()
            labels = state.index.labels()
            executor = ProcessShardExecutor(execution.workers, context=(csr, labels))
        self._executor = executor

    def __call__(self, seed: int) -> List[int]:
        return sharded_shingles(self._executor, self._bounds, seed)

    def close(self) -> None:
        if self._owned:
            self._executor.close()


def _make_shingler(
    state: FlatGroupingState,
    execution: Optional[ExecutionConfig],
    resources: Optional[GraphResources] = None,
):
    """Pick the shingle backend for this run (serial unless it can pay off)."""
    if (
        execution is not None
        and execution.parallel
        and state.dense.num_nodes >= execution.shingle_parallel_min_nodes
    ):
        warm = resources.shingle_executor(execution) if resources is not None else None
        return _ShardedShingler(state, execution, executor=warm)
    return _SerialShingler(state)


def _divide(
    state: FlatGroupingState, config: SwegConfig, rng, shingler=None
) -> List[List[int]]:
    """Split the current supernodes into shingle groups of bounded size."""
    if shingler is None:
        shingler = _SerialShingler(state)
    pending: List[List[int]] = [state.groups()]
    finished: List[List[int]] = []
    for _ in range(config.shingle_rounds):
        oversized = [group for group in pending if len(group) > config.max_group_size]
        finished.extend(group for group in pending if len(group) <= config.max_group_size)
        if not oversized:
            pending = []
            break
        # List-backed shingles over the dense substrate; group members are
        # node ids, so the min-aggregation below is pure list indexing.
        node_shingles = shingler(rng.randrange(2**61))
        pending = []
        for group in oversized:
            buckets: Dict[int, List[int]] = {}
            for supernode in group:
                shingle = min(node_shingles[node] for node in state.members[supernode])
                buckets.setdefault(shingle, []).append(supernode)
            if len(buckets) == 1:
                pending.append(group)
            else:
                # repro-lint: disable=unordered-iter (dict insertion order is deterministic and the pinned RNG stream depends on it)
                pending.extend(buckets.values())
    for group in pending:
        if len(group) <= config.max_group_size:
            finished.append(group)
        else:
            shuffled = list(group)
            rng.shuffle(shuffled)
            for start in range(0, len(shuffled), config.max_group_size):
                finished.append(shuffled[start:start + config.max_group_size])
    candidate_groups = [group for group in finished if len(group) >= 2]
    rng.shuffle(candidate_groups)
    return candidate_groups


# ----------------------------------------------------------------------
# Merging step
# ----------------------------------------------------------------------
def _neighbor_profile(state: FlatGroupingState, supernode: int) -> Set[int]:
    """Groups adjacent to ``supernode`` (including itself if it has internal edges)."""
    return set(state.group_adj[supernode])


def _jaccard(profile_a: Set[int], profile_b: Set[int]) -> float:
    union = len(profile_a | profile_b)
    if union == 0:
        return 0.0
    return len(profile_a & profile_b) / union


def _merge_within_group(
    state: FlatGroupingState, group: List[int], threshold: float, rng
) -> int:
    """SWeG's inner loop: rank partners by Jaccard, verify with the exact saving."""
    queue = [supernode for supernode in group if supernode in state.members]
    merges = 0
    while len(queue) > 1:
        index = rng.randrange(len(queue))
        supernode = queue[index]
        queue[index] = queue[-1]
        queue.pop()
        if supernode not in state.members:
            continue
        profile = _neighbor_profile(state, supernode)
        best_similarity = -1.0
        best_partner = -1
        for candidate in queue:
            if candidate not in state.members:
                continue
            similarity = _jaccard(profile, _neighbor_profile(state, candidate))
            if similarity > best_similarity:
                best_similarity = similarity
                best_partner = candidate
        if best_partner < 0:
            continue
        if state.saving(supernode, best_partner) < threshold:
            continue
        merged = state.merge(supernode, best_partner)
        queue[queue.index(best_partner)] = merged
        merges += 1
    return merges


# ----------------------------------------------------------------------
# Lossy post-step
# ----------------------------------------------------------------------
def drop_corrections(
    summary: FlatSummary, graph: Graph, epsilon: float, seed: SeedLike = None
) -> int:
    """Drop corrections while keeping each node's neighborhood error ≤ ε·degree.

    This reproduces the error model of SWeG's lossy mode: each dropped
    correction changes the reconstructed neighborhood of its two endpoint
    nodes by one edge, and a node ``v`` may lose or gain at most
    ``epsilon * degree(v)`` neighbors in total.  Returns the number of
    corrections removed.  With ``epsilon == 0`` nothing changes.
    """
    if epsilon <= 0:
        return 0
    rng = ensure_rng(seed)
    budget: Dict[Subnode, float] = {
        node: epsilon * graph.degree(node) for node in graph.nodes()
    }
    dropped = 0
    for corrections in (summary.corrections_minus, summary.corrections_plus):
        for pair in sorted(corrections, key=lambda item: rng.random()):
            u, v = pair
            if budget.get(u, 0.0) >= 1.0 and budget.get(v, 0.0) >= 1.0:
                corrections.discard(pair)
                budget[u] -= 1.0
                budget[v] -= 1.0
                dropped += 1
    return dropped
