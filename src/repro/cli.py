"""Command-line interface: summarize graphs and run paper experiments.

Examples
--------
Summarize an edge list with SLUGGER and save the summary::

    repro-slugger summarize --input graph.txt --output summary.json --iterations 10

Compare all methods on a built-in dataset analogue::

    repro-slugger compare --dataset PR --iterations 5

List the built-in dataset analogues::

    repro-slugger datasets

Measure the summarize-then-compress pipeline, replay a dynamic stream,
sweep the lossy error bound, or export the hierarchy::

    repro-slugger compress --dataset CN --code gamma --ordering bfs
    repro-slugger stream --dataset FA --mode dynamic --deletion-ratio 0.2
    repro-slugger lossy --dataset PR --epsilon 0.1 --epsilon 0.3
    repro-slugger export --dataset PR --format ascii

Serve a batch of requests from a JSON file through one warm service
(shared substrate builds, configurable in-flight concurrency), and watch
per-iteration progress::

    repro-slugger serve --batch requests.json --inflight 4 --progress
    repro-slugger summarize --dataset PR --progress

Pack an edge list into a binary container (mmap-loaded in later runs),
inspect a container, or let a cache directory do both transparently —
the first ``--cache-dir`` run parses + packs, every later one
memory-maps::

    repro-slugger pack --input graph.txt --output graph.slg
    repro-slugger inspect --container graph.slg
    repro-slugger summarize --input graph.txt --cache-dir ~/.cache/slg

Serve graph queries straight off a packed substrate — the container is
memory-mapped and queried id-native, with no label-keyed graph ever
materialized::

    repro-slugger query pagerank --container graph.slg --top 5
    repro-slugger query bfs --input graph.txt --cache-dir ~/.cache/slg --source 0

Persist the summary itself: ``pack --with-summary`` embeds the SLUGGER
summary as ``SUMM`` sections in the container, ``serve
--summary-cache`` warm-starts identical requests from a
content-addressed result cache (and resumes interrupted jobs from
per-iteration checkpoints), and ``cache stats`` / ``cache gc`` manage
the cache directory::

    repro-slugger pack --input graph.txt --with-summary --seed 0
    repro-slugger query components --container graph.txt.slg
    repro-slugger serve --batch requests.json --summary-cache ~/.cache/summ
    repro-slugger cache stats --dir ~/.cache/summ
    repro-slugger cache gc --dir ~/.cache/summ --budget 50000000

Observe a run without perturbing it: ``--trace`` writes the phase/shard
span tree (Chrome trace-event JSON, or JSON-lines for ``.jsonl`` paths),
``--metrics-file`` writes a Prometheus text-format snapshot, and the
``metrics`` subcommand pretty-prints such a file — summaries stay
bit-identical with telemetry on or off::

    repro-slugger summarize --dataset PR --workers 4 --trace run.trace.json
    repro-slugger serve --batch requests.json --metrics-file metrics.prom
    repro-slugger metrics --file metrics.prom --match service_
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List, Optional, Sequence

from repro import engine
from repro.analysis.comparison import compare_methods, default_methods
from repro.engine.hooks import RunControl
from repro.service import SummaryRequest, SummaryService
from repro.compression.pipeline import compression_report
from repro.core import Slugger, SluggerConfig
from repro.experiments.reporting import format_table
from repro.graphs.datasets import available_datasets, dataset_table, load_dataset
from repro.graphs.io import read_edge_list
from repro.lossy.bounded import lossy_tradeoff_curve
from repro.model.export import ascii_hierarchy, summary_to_dot
from repro.model.serialization import save_hierarchical_summary
from repro.streaming.online import replay_stream
from repro.streaming.stream import (
    fully_dynamic_stream,
    insertion_stream,
    sliding_window_stream,
)

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser for the ``repro-slugger`` command."""
    parser = argparse.ArgumentParser(
        prog="repro-slugger",
        description="Lossless hierarchical graph summarization (SLUGGER reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    summarize_parser = subparsers.add_parser("summarize", help="summarize one graph with SLUGGER")
    source = summarize_parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--input", help="edge-list file to summarize")
    source.add_argument("--dataset", help="built-in dataset analogue key (e.g. PR)")
    summarize_parser.add_argument("--output", help="write the summary as JSON to this path")
    summarize_parser.add_argument("--iterations", type=int, default=20, help="number of iterations T")
    summarize_parser.add_argument("--seed", type=int, default=0, help="random seed")
    summarize_parser.add_argument("--no-prune", action="store_true", help="skip the pruning step")
    summarize_parser.add_argument(
        "--height-bound", type=int, default=None, help="optional bound H_b on hierarchy height"
    )
    _add_workers_argument(summarize_parser)
    _add_progress_argument(summarize_parser)
    _add_cache_argument(summarize_parser)
    _add_telemetry_arguments(summarize_parser)

    compare_parser = subparsers.add_parser("compare", help="compare SLUGGER with the baselines")
    compare_source = compare_parser.add_mutually_exclusive_group(required=True)
    compare_source.add_argument("--input", help="edge-list file")
    compare_source.add_argument("--dataset", help="built-in dataset analogue key")
    compare_parser.add_argument("--iterations", type=int, default=10)
    compare_parser.add_argument("--seed", type=int, default=0)
    compare_parser.add_argument(
        "--method", action="append", default=None, metavar="NAME",
        help="summarizer registry name to include (repeatable; default: the paper's suite; "
             "see the 'methods' subcommand)",
    )
    _add_workers_argument(compare_parser)
    _add_progress_argument(compare_parser)
    _add_cache_argument(compare_parser)
    _add_telemetry_arguments(compare_parser)

    pack_parser = subparsers.add_parser(
        "pack", help="pack an edge list into a binary mmap-able container"
    )
    pack_parser.add_argument("--input", required=True, help="edge-list file to pack")
    pack_parser.add_argument(
        "--output", default=None, metavar="PATH",
        help="container path (default: the input path with a .slg suffix)",
    )
    pack_parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="parse the edge list over N forked shard workers (default 1)",
    )
    pack_parser.add_argument(
        "--with-summary", action="store_true",
        help="also run SLUGGER and embed the summary as SUMM sections, "
             "so later runs warm-start with zero recompute",
    )
    pack_parser.add_argument(
        "--iterations", type=int, default=20,
        help="iterations for --with-summary (default 20)",
    )
    pack_parser.add_argument(
        "--seed", type=int, default=0,
        help="seed for --with-summary (default 0)",
    )

    inspect_parser = subparsers.add_parser(
        "inspect", help="show the header and sections of a packed container"
    )
    inspect_parser.add_argument("--container", required=True, help="container file to inspect")
    inspect_parser.add_argument(
        "--no-verify", action="store_true",
        help="skip the per-section checksum verification",
    )

    query_parser = subparsers.add_parser(
        "query", help="run a graph query straight off a packed substrate"
    )
    query_parser.add_argument(
        "kind", choices=("pagerank", "bfs", "components", "triangles", "cores"),
        help="which query to run",
    )
    query_source = query_parser.add_mutually_exclusive_group(required=True)
    query_source.add_argument("--container", help="packed .slg container to query (mmap)")
    query_source.add_argument("--input", help="edge-list file (pair with --cache-dir to serve mmap)")
    query_source.add_argument("--dataset", help="built-in dataset analogue key")
    query_parser.add_argument(
        "--source", default=None, metavar="NODE",
        help="start node for bfs (integer-looking values are tried as ints first)",
    )
    query_parser.add_argument("--top", type=int, default=None, metavar="N",
                              help="truncate ranked output to the N best entries")
    query_parser.add_argument("--iterations", type=int, default=20,
                              help="pagerank power iterations (default 20)")
    query_parser.add_argument("--damping", type=float, default=0.85,
                              help="pagerank damping factor (default 0.85)")
    query_parser.add_argument("--seed", type=int, default=0,
                              help="seed for generating built-in dataset analogues")
    query_parser.add_argument("--json", action="store_true",
                              help="emit the raw result payload as JSON")
    _add_cache_argument(query_parser)
    _add_telemetry_arguments(query_parser)

    cache_parser = subparsers.add_parser(
        "cache", help="inspect or trim a summary result cache directory"
    )
    cache_parser.add_argument(
        "action", choices=("stats", "gc"),
        help="stats = report entries and bytes; gc = evict LRU entries to a budget",
    )
    cache_parser.add_argument("--dir", required=True, metavar="DIR",
                              help="summary cache directory")
    cache_parser.add_argument(
        "--budget", type=int, default=None, metavar="BYTES",
        help="byte budget for gc (0 empties the cache; default: keep everything)",
    )
    cache_parser.add_argument("--json", action="store_true",
                              help="emit the raw stats/gc report as JSON")

    serve_parser = subparsers.add_parser(
        "serve", help="run a batch file of requests through a warm SummaryService"
    )
    serve_parser.add_argument(
        "--batch", required=True, metavar="PATH",
        help="JSON file: a list of request records, each with 'method', a graph "
             "reference ('dataset' key or 'input' edge-list path), and optional "
             "'seed', 'options', 'workers', 'tag'",
    )
    serve_parser.add_argument("--inflight", type=int, default=2, metavar="N",
                              help="jobs executed concurrently (default 2)")
    serve_parser.add_argument("--mode", choices=("thread", "process"), default="thread",
                              help="job execution mode (process = warm forked worker pool)")
    serve_parser.add_argument("--seed", type=int, default=0,
                              help="seed for generating built-in dataset analogues")
    serve_parser.add_argument(
        "--summary-cache", default=None, metavar="DIR",
        help="content-addressed summary result cache: finished summaries are "
             "persisted as SUMM containers and later identical requests "
             "warm-start from the mmap with zero summarizer iterations",
    )
    serve_parser.add_argument(
        "--summary-budget", type=int, default=None, metavar="BYTES",
        help="byte budget for --summary-cache (LRU eviction after stores)",
    )
    _add_progress_argument(serve_parser)
    _add_cache_argument(serve_parser)
    _add_telemetry_arguments(serve_parser)

    metrics_parser = subparsers.add_parser(
        "metrics", help="pretty-print a Prometheus metrics file written by --metrics-file"
    )
    metrics_parser.add_argument("--file", required=True, metavar="FILE",
                                help="Prometheus text-exposition file to render")
    metrics_parser.add_argument(
        "--match", default=None, metavar="SUBSTR",
        help="only show samples whose metric name contains SUBSTR",
    )
    metrics_parser.add_argument("--json", action="store_true",
                                help="emit the parsed samples as JSON")

    subparsers.add_parser("datasets", help="list the built-in dataset analogues")

    subparsers.add_parser("methods", help="list the registered summarizers")

    compress_parser = subparsers.add_parser(
        "compress", help="measure the summarize-then-compress pipeline"
    )
    compress_source = compress_parser.add_mutually_exclusive_group(required=True)
    compress_source.add_argument("--input", help="edge-list file")
    compress_source.add_argument("--dataset", help="built-in dataset analogue key")
    compress_parser.add_argument("--iterations", type=int, default=10)
    compress_parser.add_argument("--seed", type=int, default=0)
    compress_parser.add_argument("--code", default="gamma",
                                 help="gap code (unary, gamma, delta, rice2, rice4)")
    compress_parser.add_argument("--ordering", default="bfs",
                                 help="node ordering (natural, degree, bfs, shingle)")
    _add_workers_argument(compress_parser)

    stream_parser = subparsers.add_parser(
        "stream", help="replay an edge stream through the online summarizer"
    )
    stream_source = stream_parser.add_mutually_exclusive_group(required=True)
    stream_source.add_argument("--input", help="edge-list file")
    stream_source.add_argument("--dataset", help="built-in dataset analogue key")
    stream_parser.add_argument("--mode", choices=("insertion", "dynamic", "window"),
                               default="insertion", help="stream workload shape")
    stream_parser.add_argument("--deletion-ratio", type=float, default=0.2,
                               help="deletion ratio for --mode dynamic")
    stream_parser.add_argument("--window", type=int, default=1000,
                               help="window size for --mode window")
    stream_parser.add_argument("--checkpoints", type=int, default=8)
    stream_parser.add_argument("--seed", type=int, default=0)

    lossy_parser = subparsers.add_parser(
        "lossy", help="sweep the error bound of lossy summarization"
    )
    lossy_source = lossy_parser.add_mutually_exclusive_group(required=True)
    lossy_source.add_argument("--input", help="edge-list file")
    lossy_source.add_argument("--dataset", help="built-in dataset analogue key")
    lossy_parser.add_argument("--epsilon", type=float, action="append", default=None,
                              help="error bound to evaluate (repeatable)")
    lossy_parser.add_argument("--iterations", type=int, default=10)
    lossy_parser.add_argument("--seed", type=int, default=0)

    # ``lint`` is dispatched before this parser runs (see :func:`main`) so
    # every following argument — including options like ``--json`` —
    # reaches the analyzer's own parser untouched; the subparser here
    # only makes the command visible in ``--help``.
    subparsers.add_parser(
        "lint",
        help="run the repro-lint static analyzer (determinism, fork-safety, hygiene)",
        add_help=False,
    )

    export_parser = subparsers.add_parser(
        "export", help="render the SLUGGER hierarchy as ASCII or Graphviz DOT"
    )
    export_source = export_parser.add_mutually_exclusive_group(required=True)
    export_source.add_argument("--input", help="edge-list file")
    export_source.add_argument("--dataset", help="built-in dataset analogue key")
    export_parser.add_argument("--format", choices=("ascii", "dot"), default="ascii")
    export_parser.add_argument("--output", help="write the rendering to this path")
    export_parser.add_argument("--iterations", type=int, default=10)
    export_parser.add_argument("--seed", type=int, default=0)
    return parser


def _add_workers_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="worker processes for the parallel execution phases (default 1 = serial; "
             "output is bit-identical for a fixed seed at any worker count)",
    )


def _add_progress_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--progress", action="store_true",
        help="print per-iteration progress events while runs execute",
    )


def _add_cache_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="content-addressed container cache for --input edge lists: the "
             "first run parses and packs, later runs memory-map the packed "
             "substrate (output is bit-identical either way)",
    )


def _add_telemetry_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace", default=None, metavar="FILE",
        help="record phase/shard spans and write them to FILE — Chrome "
             "trace-event JSON (load in chrome://tracing or Perfetto), or "
             "one JSON object per span when FILE ends in .jsonl; output is "
             "bit-identical with tracing on or off",
    )
    parser.add_argument(
        "--metrics-file", default=None, metavar="FILE",
        help="write the run's metrics snapshot to FILE in Prometheus text "
             "exposition format (pretty-print with the 'metrics' subcommand)",
    )


def _telemetry_from_args(arguments: argparse.Namespace):
    """``(metrics, tracer)`` per the telemetry flags — ``None`` when off."""
    from repro.obs import MetricsRegistry, Tracer

    metrics = MetricsRegistry() if getattr(arguments, "metrics_file", None) else None
    tracer = Tracer() if getattr(arguments, "trace", None) else None
    return metrics, tracer


def _write_telemetry(arguments, metrics, tracer, snapshot=None) -> None:
    """Persist collected telemetry to the files the flags asked for.

    ``snapshot`` optionally overrides ``metrics.snapshot()`` — the serve
    path hands in the service's federated :meth:`telemetry` snapshot so
    the file covers store/cache counters, not just the run registry.
    """
    from repro.obs import render_prometheus

    if tracer is not None:
        spans = len(tracer.sorted_spans())
        if arguments.trace.endswith(".jsonl"):
            tracer.write_jsonl(arguments.trace)
        else:
            tracer.write_chrome_trace(arguments.trace)
        print(f"trace written to {arguments.trace} ({spans} spans)")
    if metrics is not None:
        data = snapshot if snapshot is not None else metrics.snapshot()
        with open(arguments.metrics_file, "w", encoding="utf-8") as handle:
            handle.write(render_prometheus(data))
        print(f"metrics written to {arguments.metrics_file} "
              f"({len(data)} metric families)")


def _execution_config(arguments: argparse.Namespace):
    workers = getattr(arguments, "workers", 1)
    if workers <= 1:
        return None
    return engine.ExecutionConfig(workers=workers)


def _format_progress(label: str, event: Dict[str, Any]) -> str:
    stage = event.get("stage", "progress")
    if stage == "iteration":
        detail = (f"iteration {event.get('iteration')}/{event.get('iterations')}"
                  f"  merges={event.get('merges')}")
        if "cost" in event:
            detail += f"  cost={event.get('cost')}"
    else:
        extras = {k: v for k, v in event.items() if k != "stage"}
        detail = stage + ("" if not extras else " " + " ".join(
            f"{key}={value}" for key, value in extras.items()))
    return f"[{label}] {detail}"


def _load_graph(arguments: argparse.Namespace):
    if arguments.input:
        return read_edge_list(
            arguments.input, workers=getattr(arguments, "workers", 1)
        )
    return load_dataset(arguments.dataset, seed=arguments.seed)


def _load_graph_cached(arguments: argparse.Namespace):
    """Load the input graph, optionally through a container cache.

    Returns ``(graph, resources)`` — ``resources`` is a
    :class:`~repro.storage.mapped.StoredGraph` on a cache hit (the run
    then consumes the memory-mapped substrate zero-copy) and ``None``
    otherwise.  Hits skip the label-graph materialization entirely:
    ``graph`` is then the read-only ``CSRGraphView`` facade, which the
    summarizers initialize from directly (``from_substrate`` semantics —
    leaf numbering and substrate ids coincide, so output is
    bit-identical to a run over the parsed graph).
    """
    cache_dir = getattr(arguments, "cache_dir", None)
    if arguments.input and cache_dir:
        from repro.storage import GraphCache

        cached = GraphCache(cache_dir).fetch_edge_list(
            arguments.input, workers=getattr(arguments, "workers", 1),
            materialize=False,
        )
        origin = "cache hit (mmap)" if cached.hit else "parsed + packed"
        print(f"cache: {origin}  {cached.container_path}")
        return cached.graph, cached.stored
    return _load_graph(arguments), None


def _command_summarize(arguments: argparse.Namespace) -> int:
    graph, resources = _load_graph_cached(arguments)
    config = SluggerConfig(
        iterations=arguments.iterations,
        seed=arguments.seed,
        prune=not arguments.no_prune,
        height_bound=arguments.height_bound,
    )
    metrics, tracer = _telemetry_from_args(arguments)
    control = None
    if arguments.progress or metrics is not None or tracer is not None:
        on_progress = None
        if arguments.progress:
            on_progress = lambda event: print(_format_progress("slugger", event))  # noqa: E731
        control = RunControl(on_progress=on_progress, metrics=metrics, tracer=tracer)
    result = Slugger(config, execution=_execution_config(arguments)).summarize(
        graph, control=control, resources=resources
    )
    print(f"nodes={graph.num_nodes} edges={graph.num_edges}")
    print(
        f"cost={result.cost()} relative_size={result.relative_size(graph):.4f} "
        f"p={result.summary.num_p_edges} n={result.summary.num_n_edges} "
        f"h={result.summary.num_h_edges} seconds={result.runtime_seconds:.2f}"
    )
    if arguments.output:
        save_hierarchical_summary(result.summary, arguments.output)
        print(f"summary written to {arguments.output}")
    _write_telemetry(arguments, metrics, tracer)
    return 0


def _command_compare(arguments: argparse.Namespace) -> int:
    graph, resources = _load_graph_cached(arguments)
    methods = engine.default_suite(
        iterations=arguments.iterations, methods=arguments.method
    )
    on_progress = None
    if arguments.progress:
        on_progress = lambda name, event: print(_format_progress(name, event))  # noqa: E731
    metrics, tracer = _telemetry_from_args(arguments)
    results = compare_methods(graph, methods=methods, seed=arguments.seed,
                              execution=_execution_config(arguments),
                              on_progress=on_progress, resources=resources,
                              metrics=metrics, tracer=tracer)
    rows = [
        {
            "method": result.method,
            "relative_size": result.relative_size,
            "cost": result.report["cost"],
            "seconds": result.runtime_seconds,
        }
        for result in results
    ]
    print(format_table(rows, ["method", "relative_size", "cost", "seconds"],
                       title=f"nodes={graph.num_nodes} edges={graph.num_edges}"))
    _write_telemetry(arguments, metrics, tracer)
    return 0


def _command_pack(arguments: argparse.Namespace) -> int:
    """Pack one edge list into a binary container."""
    from repro import storage

    graph = read_edge_list(arguments.input, workers=arguments.workers)
    output = arguments.output
    if output is None:
        output = arguments.input + storage.CONTAINER_SUFFIX
    if arguments.with_summary:
        from repro.graphs.dense import DenseAdjacency
        from repro.storage.format import write_container_image

        csr = DenseAdjacency.from_graph(graph).freeze()
        options = {"iterations": arguments.iterations}
        config_digest, config_json = storage.config_fingerprint("slugger", options)
        config = SluggerConfig(seed=arguments.seed, **options)
        result = Slugger(config, execution=_execution_config(arguments)).summarize(graph)
        meta = storage.SummaryMeta(
            kind="hierarchical", method="slugger", seed=arguments.seed,
            graph_digest=storage.container_digest(csr),
            config_digest=config_digest, config_json=config_json,
            extra={"history": result.history},
        )
        image = storage.encode_summary_container(csr, result.summary, meta)
        info = write_container_image(output, image)
        print(f"summary: method=slugger seed={arguments.seed} "
              f"iterations={arguments.iterations} key={meta.key[:16]}... "
              f"({result.runtime_seconds:.2f}s)")
    else:
        info = storage.pack(graph, output)
    text_bytes = os.path.getsize(arguments.input)
    ratio = text_bytes / info.file_bytes if info.file_bytes else float("inf")
    print(f"packed {arguments.input} -> {output}")
    print(f"nodes={info.num_nodes} edges={info.num_edges} "
          f"index_width={info.index_width} labels={'yes' if info.has_labels else 'no'} "
          f"summary={'yes' if info.has_summary else 'no'}")
    print(f"container={info.file_bytes} bytes  text={text_bytes} bytes  "
          f"({ratio:.2f}x smaller)")
    return 0


def _command_inspect(arguments: argparse.Namespace) -> int:
    """Print the header and section table of a container."""
    from repro import storage

    info = storage.inspect_container(
        arguments.container, verify=not arguments.no_verify
    )
    print(f"container {info.path}")
    print(f"  version={info.version} nodes={info.num_nodes} edges={info.num_edges} "
          f"index_width={info.index_width} labels={'yes' if info.has_labels else 'no'} "
          f"csr={'yes' if info.has_csr else 'no'} "
          f"summary={'yes' if info.has_summary else 'no'} "
          f"bytes={info.file_bytes}")
    if info.has_summary:
        meta = storage.read_summary_meta(arguments.container, info)
        checkpoint = info.maybe_section(b"CKPT")
        print(f"  summary: kind={meta.kind} method={meta.method} seed={meta.seed}")
        print(f"  summary: graph_digest={meta.graph_digest[:16]}... "
              f"config_digest={meta.config_digest[:16]}... key={meta.key[:16]}...")
        if checkpoint is not None:
            print("  summary: resumable checkpoint (CKPT section present)")
    rows = [
        {"section": entry.tag, "offset": entry.offset, "length": entry.length,
         "crc32": f"{entry.crc32:#010x}"}
        for entry in info.sections
    ]
    checked = "verified" if not arguments.no_verify else "not checked"
    print(format_table(rows, ["section", "offset", "length", "crc32"],
                       title=f"{len(rows)} sections (checksums {checked})"))
    return 0


def _coerce_node(value: str):
    """CLI node argument → label: integer-looking values become ints."""
    try:
        return int(value)
    except ValueError:
        return value


def _command_query(arguments: argparse.Namespace) -> int:
    """Serve one graph query, straight off the substrate where possible."""
    from repro.algorithms.query import run_query

    stored = None
    summary_note = None
    if arguments.container:
        from repro import storage

        info = storage.inspect_container(arguments.container, verify=False)
        if info.has_summary and info.has_csr:
            # A summary-bearing container: queries still run zero-copy
            # off the mmap CSR, and ``components`` is served straight
            # from the decoded summary (superedge-level shortcut) —
            # the stored graph is never materialized either way.
            opened = storage.load_summary(arguments.container)
            stored = opened.stored
            provider: Any = opened.summary if arguments.kind == "components" else stored
            summary_note = (f"summary: kind={opened.meta.kind} "
                            f"method={opened.meta.method} seed={opened.meta.seed}"
                            + ("  (superedge components shortcut)"
                               if arguments.kind == "components" else ""))
        else:
            stored = storage.load(arguments.container)
            provider = stored
        origin = f"container (mmap)  {arguments.container}"
    elif arguments.input and arguments.cache_dir:
        from repro.storage import GraphCache

        cached = GraphCache(arguments.cache_dir).fetch_edge_list(
            arguments.input, materialize=False
        )
        stored = cached.stored
        provider = cached.graph
        origin = (f"cache {'hit (mmap)' if cached.hit else 'miss (parsed + packed)'}  "
                  f"{cached.container_path}")
    elif arguments.input:
        provider = read_edge_list(arguments.input)
        origin = f"parsed  {arguments.input}"
    else:
        provider = load_dataset(arguments.dataset, seed=arguments.seed)
        origin = f"dataset  {arguments.dataset}"

    metrics, tracer = _telemetry_from_args(arguments)
    from repro.obs import NULL_METRICS, NULL_TRACER

    obs_metrics = metrics if metrics is not None else NULL_METRICS
    obs_tracer = tracer if tracer is not None else NULL_TRACER
    source = _coerce_node(arguments.source) if arguments.source is not None else None
    try:
        with obs_tracer.span("query", kind=arguments.kind) as span:
            try:
                result = run_query(
                    provider, arguments.kind, source=source, top=arguments.top,
                    damping=arguments.damping, iterations=arguments.iterations,
                )
            except KeyError:
                if not isinstance(source, int):
                    raise
                # An integer-looking --source on a string-labelled graph:
                # retry with the raw text label before giving up.
                result = run_query(
                    provider, arguments.kind, source=arguments.source, top=arguments.top,
                    damping=arguments.damping, iterations=arguments.iterations,
                )
    except KeyError:
        print(f"query source node {arguments.source!r} is not in the graph",
              file=sys.stderr)
        return 1
    obs_metrics.counter("cli_queries_total", kind=arguments.kind).inc()
    obs_metrics.histogram("cli_query_seconds", kind=arguments.kind).observe(span.duration)
    _write_telemetry(arguments, metrics, tracer)

    print(f"query: {arguments.kind}  {origin}")
    if summary_note is not None:
        print(summary_note)
    if stored is not None:
        # Substrate-served queries never materialize the label graph.
        print(f"serving: materialized_graphs={stored.materializations} "
              f"(zero-copy={'yes' if stored.materializations == 0 else 'no'})")
    if arguments.json:
        print(json.dumps(result.value, default=str))
        return 0
    for key, value in result.value.items():
        if key in ("ranking",):
            rows = [{"node": node, "value": value_of} for node, value_of in value]
            print(format_table(rows, ["node", "value"],
                               title=f"{len(rows)} ranked entries", precision=6))
        elif key == "order":
            print(f"{key}: {' '.join(str(node) for node in value)}")
        elif key == "sizes":
            print(f"{key}: {' '.join(str(size) for size in value)}")
        else:
            print(f"{key}={value}")
    return 0


def _command_cache(arguments: argparse.Namespace) -> int:
    """Report on — or garbage-collect — a summary result cache."""
    from repro.storage import SummaryCache

    cache = SummaryCache(arguments.dir, budget_bytes=arguments.budget)
    if arguments.action == "gc":
        report = cache.gc(budget_bytes=arguments.budget)
        if arguments.json:
            print(json.dumps(report))
            return 0
        budget = report["budget_bytes"]
        print(f"gc {arguments.dir}: evicted={report['evicted']} "
              f"freed={report['freed_bytes']} bytes  kept={report['kept']} "
              f"({report['total_bytes']} bytes, "
              f"budget={'unbounded' if budget is None else budget})")
        return 0
    stats = cache.stats()
    if arguments.json:
        print(json.dumps(stats))
        return 0
    print(f"cache {stats['directory']}")
    print(f"  entries={stats['entries']} (checkpoints={stats['checkpoints']}) "
          f"bytes={stats['total_bytes']} "
          f"budget={'unbounded' if stats['budget_bytes'] is None else stats['budget_bytes']}")
    rows = [
        {"key": entry["key"][:16] + "...", "kind": entry["kind"],
         "bytes": entry["bytes"]}
        for entry in cache.entries()
    ]
    if rows:
        print(format_table(rows, ["key", "kind", "bytes"],
                           title=f"{len(rows)} entries (least-recently-used first)"))
    return 0


def _command_serve(arguments: argparse.Namespace) -> int:
    """Batch-file serving: many requests, one warm service."""
    with open(arguments.batch, "r", encoding="utf-8") as handle:
        records = json.load(handle)
    if isinstance(records, dict):
        records = records.get("requests", [])
    if not isinstance(records, list) or not records:
        print(f"batch file {arguments.batch} holds no requests", file=sys.stderr)
        return 1

    cache = None
    if arguments.cache_dir:
        from repro.storage import GraphCache

        cache = GraphCache(arguments.cache_dir)
    metrics, tracer = _telemetry_from_args(arguments)
    with SummaryService(mode=arguments.mode, max_inflight=arguments.inflight,
                        cache_dir=arguments.cache_dir,
                        summary_cache_dir=arguments.summary_cache,
                        summary_cache_budget=arguments.summary_budget,
                        metrics=metrics, tracer=tracer) as service:
        jobs = []
        graphs: Dict[str, Any] = {}
        for record in records:
            record = dict(record)
            dataset = record.pop("dataset", None)
            input_path = record.pop("input", None)
            if (dataset is None) == (input_path is None):
                print(f"request {record} needs exactly one of 'dataset'/'input'",
                      file=sys.stderr)
                return 1
            key = dataset if dataset is not None else input_path
            workers = record.pop("workers", None)
            if workers is not None and "execution" not in record:
                record["execution"] = {"workers": workers}
            if key not in graphs:
                if input_path is not None and cache is not None:
                    # Through the container cache: a hit memory-maps the
                    # packed CSR and seeds the handle with it (dense is
                    # thawed lazily — in the prefetch lane, not here on
                    # the registration path); the lane also persists
                    # fresh substrates.
                    cached = cache.fetch_edge_list(input_path)
                    graph = cached.graph
                    service.register_graph(
                        key, graph,
                        csr=cached.stored.csr() if cached.stored else None,
                        prefetch=True,
                    )
                else:
                    graph = (read_edge_list(input_path) if input_path is not None
                             else load_dataset(dataset, seed=arguments.seed))
                    service.register_graph(key, graph, prefetch=True)
                graphs[key] = graph
            record["graph_key"] = key
            request = SummaryRequest.from_dict(record)
            job = service.submit(request, block=True)
            if arguments.progress:
                label = f"job {job.id} {request.method}@{key}"
                job.add_progress_listener(
                    lambda event, _label=label: print(
                        _format_progress(_label, {"stage": event.stage, **event.payload})
                    )
                )
            jobs.append((job, key))

        rows = []
        failures = 0
        for job, key in jobs:
            job.wait()
            row = {
                "job": job.id,
                "method": job.request.method,
                "graph": key,
                "state": job.state.value,
                "cost": "-",
                "relative_size": "-",
                "seconds": "-",
            }
            if job.state.value == "done":
                result = job.result()
                # Read the graph from the local table, not store.get():
                # the latter counts interning hits, and bookkeeping must
                # not inflate the footer's cache-effectiveness figure.
                graph = graphs[key]
                row["cost"] = result.cost()
                row["relative_size"] = round(result.relative_size(graph), 4)
                row["seconds"] = round(result.runtime_seconds, 3)
            else:
                failures += 1
                error = job.exception()
                if error is not None:
                    print(f"job {job.id} failed: {error!r}", file=sys.stderr)
            rows.append(row)
        stats = service.stats()
        print(format_table(
            rows, ["job", "method", "graph", "state", "cost", "relative_size", "seconds"],
            title=f"served {len(rows)} requests (mode={stats['mode']}, "
                  f"inflight={stats['max_inflight']}, substrate builds: "
                  f"{stats['store']['misses']}, warm hits: {stats['store']['hits']})",
        ))
        if arguments.summary_cache:
            print(f"summary cache: hits={stats['summary_cache_hits']} "
                  f"stores={stats['summary_cache_stores']} "
                  f"resumes={stats['summary_resumes']} "
                  f"errors={stats['summary_cache_errors']} "
                  f"({stats['summary_cache']['entries']} entries, "
                  f"{stats['summary_cache']['total_bytes']} bytes)")
        # Snapshot inside the ``with``: the federated telemetry view
        # reads the live store/cache stats, which close() tears down.
        snapshot = service.telemetry() if metrics is not None else None
    _write_telemetry(arguments, metrics, tracer, snapshot=snapshot)
    return 1 if failures else 0


def _command_metrics(arguments: argparse.Namespace) -> int:
    """Pretty-print a Prometheus text-format metrics file."""
    from repro.obs import parse_prometheus_text

    with open(arguments.file, "r", encoding="utf-8") as handle:
        text = handle.read()
    samples = parse_prometheus_text(text)
    if arguments.match:
        samples = [sample for sample in samples if arguments.match in sample[0]]
    if arguments.json:
        print(json.dumps(
            [{"name": name, "labels": labels, "value": value}
             for name, labels, value in samples]
        ))
        return 0
    rows = [
        {
            "metric": name,
            "labels": ",".join(f"{key}={value}"
                               for key, value in sorted(labels.items())) or "-",
            "value": value,
        }
        for name, labels, value in samples
    ]
    print(format_table(rows, ["metric", "labels", "value"],
                       title=f"{len(rows)} samples from {arguments.file}",
                       precision=6))
    return 0


def _command_methods(_arguments: argparse.Namespace) -> int:
    rows = []
    for name in engine.available_methods():
        summarizer_cls = type(engine.create(name))
        rows.append({
            "method": name,
            "iterations_knob": "yes" if summarizer_cls.iteration_controlled else "no",
            "description": (summarizer_cls.__doc__ or "").strip().splitlines()[0],
        })
    print(format_table(rows, ["method", "iterations_knob", "description"],
                       title=f"{len(rows)} registered summarizers"))
    return 0


def _command_datasets(_arguments: argparse.Namespace) -> int:
    rows = dataset_table()
    print(format_table(
        rows,
        ["key", "name", "domain", "paper_nodes", "paper_edges", "analogue_nodes", "analogue_edges"],
        title=f"{len(available_datasets())} dataset analogues",
    ))
    return 0


def _command_compress(arguments: argparse.Namespace) -> int:
    graph = _load_graph(arguments)
    config = SluggerConfig(iterations=arguments.iterations, seed=arguments.seed)
    summary = Slugger(config, execution=_execution_config(arguments)).summarize(graph).summary
    report = compression_report(
        graph, summary, code=arguments.code, ordering=arguments.ordering, seed=arguments.seed
    )
    rows = [{"metric": key, "value": value} for key, value in report.items()]
    print(format_table(rows, ["metric", "value"],
                       title=f"summarize-then-compress pipeline "
                             f"(code={arguments.code}, ordering={arguments.ordering})",
                       precision=4))
    return 0


def _command_stream(arguments: argparse.Namespace) -> int:
    graph = _load_graph(arguments)
    if arguments.mode == "dynamic":
        events = fully_dynamic_stream(graph, deletion_ratio=arguments.deletion_ratio,
                                      seed=arguments.seed)
    elif arguments.mode == "window":
        events = sliding_window_stream(graph, window=arguments.window, seed=arguments.seed)
    else:
        events = insertion_stream(graph, seed=arguments.seed)
    result = replay_stream(events, checkpoints=arguments.checkpoints, validate=False)
    if result.final_graph is not None and result.final_graph.num_edges:
        result.final_summary.validate(result.final_graph)
    print(format_table(result.as_rows(), ["time", "num_edges", "cost", "relative_size"],
                       title=f"online summarization over a {arguments.mode} stream "
                             f"({len(events)} events)"))
    return 0


def _command_lossy(arguments: argparse.Namespace) -> int:
    graph = _load_graph(arguments)
    epsilons = arguments.epsilon if arguments.epsilon else [0.0, 0.1, 0.25, 0.5]
    rows = lossy_tradeoff_curve(graph, epsilons, iterations=arguments.iterations,
                                seed=arguments.seed)
    print(format_table(rows, ["epsilon", "relative_size", "dropped_corrections",
                              "max_relative_error"],
                       title="lossy summarization trade-off (SWeG + correction dropping)"))
    return 0


def _command_export(arguments: argparse.Namespace) -> int:
    graph = _load_graph(arguments)
    config = SluggerConfig(iterations=arguments.iterations, seed=arguments.seed)
    summary = Slugger(config).summarize(graph).summary
    if arguments.format == "dot":
        rendering = summary_to_dot(summary)
    else:
        rendering = ascii_hierarchy(summary)
    if arguments.output:
        with open(arguments.output, "w", encoding="utf-8") as handle:
            handle.write(rendering + "\n")
        print(f"{arguments.format} rendering written to {arguments.output}")
    else:
        print(rendering)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of the ``repro-slugger`` console script."""
    arg_list = list(sys.argv[1:] if argv is None else argv)
    if arg_list[:1] == ["lint"]:
        # Forward to the analyzer's own parser, imported lazily: the
        # serving stack must never pay for the analyzer, and vice versa.
        from repro.devtools.lint import main as lint_main

        return lint_main(arg_list[1:])
    parser = build_parser()
    arguments = parser.parse_args(arg_list)
    handlers = {
        "summarize": _command_summarize,
        "compare": _command_compare,
        "pack": _command_pack,
        "inspect": _command_inspect,
        "query": _command_query,
        "cache": _command_cache,
        "serve": _command_serve,
        "metrics": _command_metrics,
        "datasets": _command_datasets,
        "methods": _command_methods,
        "compress": _command_compress,
        "stream": _command_stream,
        "lossy": _command_lossy,
        "export": _command_export,
    }
    return handlers[arguments.command](arguments)


if __name__ == "__main__":
    sys.exit(main())
