"""Bit-level graph compression: the downstream stage of the summarization pipeline.

The paper (Sect. I) positions lossless summarization as a pre-process
whose outputs "can be further compressed using any graph-compression
techniques".  This subpackage provides that downstream compressor —
WebGraph-style gap-coded adjacency lists with pluggable universal codes
and node orderings — plus codecs for compressing the summaries
themselves, so the benchmark suite can measure end-to-end bits-per-edge
of raw versus summarize-then-compress representations.
"""

from repro.compression.bits import BitReader, BitWriter, bits_to_list
from repro.compression.codes import (
    GapCode,
    available_codes,
    decode_delta,
    decode_gamma,
    decode_rice,
    decode_unary,
    decode_varint,
    decode_varint_sequence,
    encode_delta,
    encode_gamma,
    encode_rice,
    encode_unary,
    encode_varint,
    encode_varint_sequence,
    get_code,
    zigzag_decode,
    zigzag_encode,
)
from repro.compression.ordering import (
    available_orderings,
    bfs_ordering,
    compute_ordering,
    degree_ordering,
    invert_ordering,
    natural_ordering,
    ordering_locality,
    shingle_ordering,
)
from repro.compression.adjacency import (
    CompressedAdjacency,
    decode_adjacency,
    encode_adjacency,
)
from repro.compression.pipeline import (
    CompressedFlatSummary,
    CompressedGraph,
    CompressedHierarchicalSummary,
    compress_flat_summary,
    compress_graph,
    compress_hierarchical_summary,
    compress_summary,
    compression_report,
    decompress_flat_summary,
    decompress_hierarchical_summary,
)

__all__ = [
    "BitReader",
    "BitWriter",
    "bits_to_list",
    "GapCode",
    "available_codes",
    "get_code",
    "encode_unary",
    "decode_unary",
    "encode_gamma",
    "decode_gamma",
    "encode_delta",
    "decode_delta",
    "encode_rice",
    "decode_rice",
    "encode_varint",
    "decode_varint",
    "encode_varint_sequence",
    "decode_varint_sequence",
    "zigzag_encode",
    "zigzag_decode",
    "available_orderings",
    "compute_ordering",
    "natural_ordering",
    "degree_ordering",
    "bfs_ordering",
    "shingle_ordering",
    "invert_ordering",
    "ordering_locality",
    "CompressedAdjacency",
    "encode_adjacency",
    "decode_adjacency",
    "CompressedGraph",
    "CompressedHierarchicalSummary",
    "CompressedFlatSummary",
    "compress_graph",
    "compress_hierarchical_summary",
    "compress_flat_summary",
    "compress_summary",
    "compression_report",
    "decompress_hierarchical_summary",
    "decompress_flat_summary",
]
