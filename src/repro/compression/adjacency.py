"""Gap-compressed adjacency-list representation of an undirected graph.

:class:`CompressedAdjacency` is a small, faithful stand-in for the
WebGraph-style encoders the paper assumes as the downstream compression
stage: nodes are relabeled with one of the orderings of
:mod:`repro.compression.ordering`, each (symmetric) adjacency list is
sorted, delta-encoded (first element against the owning node id via
zig-zag, subsequent elements as positive gaps), and the gaps are written
with one of the universal codes of :mod:`repro.compression.codes`.

Decoding restores the exact original graph, so the whole pipeline —
summarize, then bit-compress the summary's three output graphs — remains
lossless end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence

from repro.compression.bits import BitReader, BitWriter
from repro.compression.codes import GapCode, get_code, zigzag_decode, zigzag_encode
from repro.compression.ordering import Ordering, compute_ordering, invert_ordering
from repro.exceptions import CompressionError
from repro.graphs.graph import Graph
from repro.utils.rng import SeedLike

__all__ = ["CompressedAdjacency", "decode_adjacency", "encode_adjacency"]

Node = Hashable


@dataclass
class CompressedAdjacency:
    """A bit-compressed adjacency structure plus the metadata to invert it.

    Attributes
    ----------
    payload:
        The packed gap-coded adjacency bits.
    bit_length:
        Number of meaningful bits in ``payload``.
    code_name:
        Name of the gap code used (``gamma``, ``delta``, ...).
    ordering_scheme:
        Name of the node ordering used for relabeling.
    node_order:
        The node at each dense id (``node_order[i]`` has id ``i``).
    num_edges:
        Number of undirected edges encoded.
    """

    payload: bytes
    bit_length: int
    code_name: str
    ordering_scheme: str
    node_order: List[Node]
    num_edges: int

    @property
    def num_nodes(self) -> int:
        """Number of nodes in the encoded graph."""
        return len(self.node_order)

    def size_bits(self) -> int:
        """Size of the adjacency payload in bits (excluding the node-order metadata)."""
        return self.bit_length

    def size_bytes(self) -> int:
        """Size of the adjacency payload in bytes, rounded up."""
        return (self.bit_length + 7) // 8

    def bits_per_edge(self) -> float:
        """Payload bits divided by the number of undirected edges."""
        if self.num_edges == 0:
            return 0.0
        return self.bit_length / self.num_edges

    def decode(self) -> Graph:
        """Reconstruct the original graph exactly."""
        return decode_adjacency(self)


def _encode_list(writer: BitWriter, code: GapCode, owner: int, neighbors: Sequence[int]) -> None:
    """Encode one sorted neighbor-id list relative to its owner id."""
    code.encode(writer, len(neighbors))
    if not neighbors:
        return
    first = neighbors[0]
    code.encode(writer, zigzag_encode(first - owner))
    previous = first
    for neighbor in neighbors[1:]:
        gap = neighbor - previous
        if gap <= 0:
            raise CompressionError("adjacency lists must be strictly increasing")
        code.encode(writer, gap - 1)
        previous = neighbor


def _decode_list(reader: BitReader, code: GapCode, owner: int) -> List[int]:
    """Decode one neighbor-id list previously written by :func:`_encode_list`."""
    count = code.decode(reader)
    if count == 0:
        return []
    neighbors = [owner + zigzag_decode(code.decode(reader))]
    for _ in range(count - 1):
        neighbors.append(neighbors[-1] + code.decode(reader) + 1)
    return neighbors


def encode_adjacency(
    graph: Graph,
    code: str = "gamma",
    ordering: str = "natural",
    seed: SeedLike = 0,
    precomputed_ordering: Optional[Ordering] = None,
) -> CompressedAdjacency:
    """Compress ``graph`` into a :class:`CompressedAdjacency`.

    Parameters
    ----------
    graph:
        The graph to compress.
    code:
        Gap-code name (see :func:`repro.compression.codes.available_codes`).
    ordering:
        Node-ordering scheme name (see
        :func:`repro.compression.ordering.available_orderings`).
    seed:
        Seed forwarded to randomized orderings (``shingle``).
    precomputed_ordering:
        Skip ordering computation and use this ``node -> id`` mapping
        instead; ``ordering`` is then recorded as ``"custom"`` unless it
        names the scheme that produced the mapping.
    """
    gap_code = get_code(code)
    if precomputed_ordering is not None:
        node_to_id = dict(precomputed_ordering)
        if set(node_to_id) != set(graph.nodes()):
            raise CompressionError("precomputed ordering does not cover the graph's nodes")
        scheme = ordering if ordering else "custom"
    else:
        node_to_id = compute_ordering(graph, ordering, seed=seed)
        scheme = ordering
    node_order = invert_ordering(node_to_id)

    writer = BitWriter()
    for owner_id, node in enumerate(node_order):
        neighbor_ids = sorted(node_to_id[neighbor] for neighbor in graph.neighbor_set(node))
        _encode_list(writer, gap_code, owner_id, neighbor_ids)
    return CompressedAdjacency(
        payload=writer.to_bytes(),
        bit_length=writer.bit_length,
        code_name=code,
        ordering_scheme=scheme,
        node_order=node_order,
        num_edges=graph.num_edges,
    )


def decode_adjacency(compressed: CompressedAdjacency) -> Graph:
    """Reconstruct the graph encoded in ``compressed``.

    Every undirected edge appears in both endpoint lists; the decoder
    checks the two sides agree and raises
    :class:`~repro.exceptions.CompressionError` on any inconsistency.
    """
    code = get_code(compressed.code_name)
    reader = BitReader(compressed.payload, compressed.bit_length)
    adjacency: Dict[int, List[int]] = {}
    for owner_id in range(compressed.num_nodes):
        adjacency[owner_id] = _decode_list(reader, code, owner_id)
    if reader.remaining:
        raise CompressionError(f"{reader.remaining} unread bits after decoding all lists")

    graph = Graph(nodes=compressed.node_order)
    seen_directed = 0
    for owner_id, neighbor_ids in adjacency.items():
        owner = compressed.node_order[owner_id]
        for neighbor_id in neighbor_ids:
            if neighbor_id < 0 or neighbor_id >= compressed.num_nodes:
                raise CompressionError(f"decoded neighbor id {neighbor_id} out of range")
            if neighbor_id == owner_id:
                raise CompressionError("decoded a self-loop; payload is corrupt")
            seen_directed += 1
            graph.add_edge(owner, compressed.node_order[neighbor_id])
    if seen_directed != 2 * compressed.num_edges or graph.num_edges != compressed.num_edges:
        raise CompressionError(
            "decoded edge count does not match the recorded count "
            f"(expected {compressed.num_edges}, got {graph.num_edges})"
        )
    return graph
