"""Bit-level writer and reader used by the integer codes.

The paper motivates lossless summarization as a *pre-process*: its three
output graphs "can be further compressed using any graph-compression
technique" (Sect. I).  The :mod:`repro.compression` subpackage provides
that downstream stage — WebGraph-style gap/code compression — so the
benchmarks can measure bits-per-edge of raw graphs versus summarized
graphs.  Everything bottoms out in the two classes here: a
:class:`BitWriter` that accumulates individual bits into bytes and a
:class:`BitReader` that consumes them again.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.exceptions import CompressionError

__all__ = ["BitReader", "BitWriter", "bits_to_list"]


class BitWriter:
    """Accumulates bits most-significant-bit first and packs them into bytes.

    Examples
    --------
    >>> writer = BitWriter()
    >>> writer.write_bit(1)
    >>> writer.write_bits(0b0101, 4)
    >>> writer.bit_length
    5
    >>> len(writer.to_bytes())
    1
    """

    def __init__(self) -> None:
        self._bytes = bytearray()
        self._current = 0
        self._filled = 0
        self._bit_length = 0

    @property
    def bit_length(self) -> int:
        """Number of bits written so far."""
        return self._bit_length

    def write_bit(self, bit: int) -> None:
        """Append a single bit (``0`` or ``1``)."""
        if bit not in (0, 1):
            raise CompressionError(f"bit must be 0 or 1, got {bit!r}")
        self._current = (self._current << 1) | bit
        self._filled += 1
        self._bit_length += 1
        if self._filled == 8:
            self._bytes.append(self._current)
            self._current = 0
            self._filled = 0

    def write_bits(self, value: int, width: int) -> None:
        """Append the ``width`` lowest bits of ``value``, most significant first."""
        if width < 0:
            raise CompressionError(f"width must be non-negative, got {width}")
        if value < 0:
            raise CompressionError(f"value must be non-negative, got {value}")
        if width and value >> width:
            raise CompressionError(f"value {value} does not fit in {width} bits")
        for shift in range(width - 1, -1, -1):
            self.write_bit((value >> shift) & 1)

    def write_run(self, bit: int, count: int) -> None:
        """Append ``count`` copies of ``bit`` (used by the unary code)."""
        if count < 0:
            raise CompressionError(f"count must be non-negative, got {count}")
        for _ in range(count):
            self.write_bit(bit)

    def extend(self, bits: Iterable[int]) -> None:
        """Append every bit of ``bits`` in order."""
        for bit in bits:
            self.write_bit(bit)

    def to_bytes(self) -> bytes:
        """Return the written bits packed into bytes (zero-padded at the end)."""
        result = bytearray(self._bytes)
        if self._filled:
            result.append(self._current << (8 - self._filled))
        return bytes(result)


class BitReader:
    """Reads bits most-significant-bit first from a byte string.

    The reader tracks its position; attempting to read past
    ``bit_length`` raises :class:`~repro.exceptions.CompressionError`,
    which is how the decoders detect truncated payloads.
    """

    def __init__(self, data: bytes, bit_length: int | None = None) -> None:
        self._data = bytes(data)
        max_bits = len(self._data) * 8
        if bit_length is None:
            bit_length = max_bits
        if bit_length < 0 or bit_length > max_bits:
            raise CompressionError(
                f"bit_length must be in [0, {max_bits}], got {bit_length}"
            )
        self._bit_length = bit_length
        self._position = 0

    @property
    def bit_length(self) -> int:
        """Total number of readable bits."""
        return self._bit_length

    @property
    def position(self) -> int:
        """Index of the next bit to be read."""
        return self._position

    @property
    def remaining(self) -> int:
        """Number of bits left to read."""
        return self._bit_length - self._position

    def read_bit(self) -> int:
        """Read and return the next bit."""
        if self._position >= self._bit_length:
            raise CompressionError("attempted to read past the end of the bit stream")
        byte = self._data[self._position // 8]
        bit = (byte >> (7 - self._position % 8)) & 1
        self._position += 1
        return bit

    def read_bits(self, width: int) -> int:
        """Read ``width`` bits and return them as an unsigned integer."""
        if width < 0:
            raise CompressionError(f"width must be non-negative, got {width}")
        value = 0
        for _ in range(width):
            value = (value << 1) | self.read_bit()
        return value

    def read_unary(self) -> int:
        """Read a unary-coded value: the number of 1-bits before the terminating 0."""
        count = 0
        while self.read_bit() == 1:
            count += 1
        return count

    def peek_bits(self, width: int) -> int:
        """Read ``width`` bits without consuming them."""
        saved = self._position
        try:
            return self.read_bits(width)
        finally:
            self._position = saved


def bits_to_list(data: bytes, bit_length: int | None = None) -> List[int]:
    """Expand a packed byte string into a list of bits (testing helper)."""
    reader = BitReader(data, bit_length)
    return [reader.read_bit() for _ in range(reader.bit_length)]
