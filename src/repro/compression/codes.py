"""Universal integer codes used to compress adjacency gaps.

The WebGraph framework [Boldi & Vigna, WWW'04] — cited by the paper as
the canonical downstream compressor for summarization outputs — encodes
adjacency-list gaps with universal codes.  This module provides the four
codes the literature uses most:

``unary``        best for very small values (run of 1s terminated by 0)
``gamma``        Elias γ: unary length prefix + binary remainder
``delta``        Elias δ: γ-coded length prefix + binary remainder
``rice(k)``      Golomb-Rice with power-of-two divisor, good for skewed
                 but not tiny gaps
``varint``       byte-aligned LEB128, the format used by the byte-level
                 payload serializer

All codes operate on *non-negative* integers; signed values go through
:func:`zigzag_encode` first.  Every encoder has a matching decoder and the
property-based tests round-trip random values through each pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Tuple

from repro.compression.bits import BitReader, BitWriter
from repro.exceptions import CompressionError

__all__ = [
    "GapCode",
    "available_codes",
    "decode_delta",
    "decode_gamma",
    "decode_rice",
    "decode_unary",
    "decode_varint",
    "decode_varint_sequence",
    "encode_delta",
    "encode_gamma",
    "encode_rice",
    "encode_unary",
    "encode_varint",
    "encode_varint_sequence",
    "get_code",
    "zigzag_decode",
    "zigzag_encode",
]


def _require_non_negative(value: int, name: str = "value") -> int:
    if not isinstance(value, int) or isinstance(value, bool):
        raise CompressionError(f"{name} must be an int, got {type(value).__name__}")
    if value < 0:
        raise CompressionError(f"{name} must be non-negative, got {value}")
    return value


# ----------------------------------------------------------------------
# Zig-zag mapping for signed values
# ----------------------------------------------------------------------
def zigzag_encode(value: int) -> int:
    """Map a signed integer to an unsigned one (0, -1, 1, -2, ... -> 0, 1, 2, 3, ...)."""
    if not isinstance(value, int) or isinstance(value, bool):
        raise CompressionError(f"value must be an int, got {type(value).__name__}")
    return (value << 1) ^ (value >> 63) if value >= 0 else ((-value) << 1) - 1


def zigzag_decode(value: int) -> int:
    """Inverse of :func:`zigzag_encode`."""
    _require_non_negative(value)
    return (value >> 1) if value % 2 == 0 else -((value + 1) >> 1)


# ----------------------------------------------------------------------
# Unary
# ----------------------------------------------------------------------
def encode_unary(writer: BitWriter, value: int) -> None:
    """Write ``value`` as ``value`` 1-bits followed by a terminating 0-bit."""
    _require_non_negative(value)
    writer.write_run(1, value)
    writer.write_bit(0)


def decode_unary(reader: BitReader) -> int:
    """Read one unary-coded value."""
    return reader.read_unary()


# ----------------------------------------------------------------------
# Elias gamma
# ----------------------------------------------------------------------
def encode_gamma(writer: BitWriter, value: int) -> None:
    """Write ``value`` with the Elias γ code (defined for value >= 0 via +1 shift)."""
    _require_non_negative(value)
    shifted = value + 1
    width = shifted.bit_length() - 1
    writer.write_run(1, width)
    writer.write_bit(0)
    writer.write_bits(shifted - (1 << width), width)


def decode_gamma(reader: BitReader) -> int:
    """Read one Elias γ coded value."""
    width = reader.read_unary()
    remainder = reader.read_bits(width)
    return (1 << width) + remainder - 1


# ----------------------------------------------------------------------
# Elias delta
# ----------------------------------------------------------------------
def encode_delta(writer: BitWriter, value: int) -> None:
    """Write ``value`` with the Elias δ code (γ-coded length, then remainder)."""
    _require_non_negative(value)
    shifted = value + 1
    width = shifted.bit_length() - 1
    encode_gamma(writer, width)
    writer.write_bits(shifted - (1 << width), width)


def decode_delta(reader: BitReader) -> int:
    """Read one Elias δ coded value."""
    width = decode_gamma(reader)
    remainder = reader.read_bits(width)
    return (1 << width) + remainder - 1


# ----------------------------------------------------------------------
# Golomb-Rice
# ----------------------------------------------------------------------
def encode_rice(writer: BitWriter, value: int, k: int) -> None:
    """Write ``value`` with the Rice code of parameter ``k`` (divisor ``2**k``)."""
    _require_non_negative(value)
    _require_non_negative(k, "k")
    quotient = value >> k
    writer.write_run(1, quotient)
    writer.write_bit(0)
    writer.write_bits(value & ((1 << k) - 1), k)


def decode_rice(reader: BitReader, k: int) -> int:
    """Read one Rice-coded value of parameter ``k``."""
    _require_non_negative(k, "k")
    quotient = reader.read_unary()
    remainder = reader.read_bits(k)
    return (quotient << k) | remainder


# ----------------------------------------------------------------------
# Byte-aligned varint (LEB128)
# ----------------------------------------------------------------------
def encode_varint(value: int) -> bytes:
    """Encode a non-negative integer as LEB128 bytes."""
    _require_non_negative(value)
    output = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            output.append(byte | 0x80)
        else:
            output.append(byte)
            return bytes(output)


def decode_varint(data: bytes, offset: int = 0) -> Tuple[int, int]:
    """Decode one LEB128 value starting at ``offset``; return ``(value, next_offset)``."""
    value = 0
    shift = 0
    position = offset
    while True:
        if position >= len(data):
            raise CompressionError("truncated varint")
        byte = data[position]
        position += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, position
        shift += 7
        if shift > 63:
            raise CompressionError("varint is too long (more than 64 bits)")


def encode_varint_sequence(values: Iterable[int]) -> bytes:
    """Encode a sequence of non-negative integers as concatenated varints."""
    output = bytearray()
    for value in values:
        output.extend(encode_varint(value))
    return bytes(output)


def decode_varint_sequence(data: bytes, count: int, offset: int = 0) -> Tuple[List[int], int]:
    """Decode ``count`` varints starting at ``offset``; return ``(values, next_offset)``."""
    _require_non_negative(count, "count")
    values: List[int] = []
    position = offset
    for _ in range(count):
        value, position = decode_varint(data, position)
        values.append(value)
    return values, position


# ----------------------------------------------------------------------
# Code registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GapCode:
    """A named bit-level integer code with its encoder/decoder pair.

    ``parameter`` carries the Rice parameter ``k`` and is ignored by the
    parameter-free codes.
    """

    name: str
    encoder: Callable[[BitWriter, int], None]
    decoder: Callable[[BitReader], int]

    def encode(self, writer: BitWriter, value: int) -> None:
        """Encode one value into ``writer``."""
        self.encoder(writer, value)

    def decode(self, reader: BitReader) -> int:
        """Decode one value from ``reader``."""
        return self.decoder(reader)

    def encoded_length(self, value: int) -> int:
        """Number of bits this code spends on ``value``."""
        writer = BitWriter()
        self.encode(writer, value)
        return writer.bit_length


def _rice_code(k: int) -> GapCode:
    return GapCode(
        name=f"rice{k}",
        encoder=lambda writer, value, _k=k: encode_rice(writer, value, _k),
        decoder=lambda reader, _k=k: decode_rice(reader, _k),
    )


_CODES: Dict[str, GapCode] = {
    "unary": GapCode("unary", encode_unary, decode_unary),
    "gamma": GapCode("gamma", encode_gamma, decode_gamma),
    "delta": GapCode("delta", encode_delta, decode_delta),
    "rice2": _rice_code(2),
    "rice4": _rice_code(4),
}


def available_codes() -> List[str]:
    """Names of all registered gap codes."""
    return sorted(_CODES)


def get_code(name: str) -> GapCode:
    """Look up a gap code by name (``unary``, ``gamma``, ``delta``, ``rice2``, ``rice4``)."""
    try:
        return _CODES[name]
    except KeyError:
        raise CompressionError(
            f"unknown gap code {name!r}; available: {', '.join(available_codes())}"
        ) from None
