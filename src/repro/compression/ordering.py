"""Node-ordering (relabeling) schemes for locality-friendly compression.

Gap compression of adjacency lists only pays off when neighboring node
ids are numerically close, which is why the WebGraph line of work relies
on node *relabeling* schemes (references [1], [9]-[11] of the paper:
recursive bisection, shingle ordering, BFS ordering, layered label
propagation).  This module implements the orderings the ablation bench
compares:

``natural``   keep the existing ids (sorted for determinism)
``degree``    descending degree — hubs get small ids
``bfs``       breadth-first visiting order from the highest-degree node,
              restarting per connected component [Apostolico & Drovandi]
``shingle``   nodes sorted by the min-hash of their neighborhood, which
              places nodes with similar neighborhoods (and thus similar
              adjacency gaps) next to each other [Chierichetti et al.]

Every ordering returns a dense ``node -> index`` mapping covering all
nodes of the graph.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Hashable, List

from repro.exceptions import CompressionError
from repro.graphs.dense import DenseAdjacency
from repro.graphs.graph import Graph
from repro.utils.rng import ensure_rng
from repro.utils.rng import SeedLike

__all__ = [
    "available_orderings",
    "bfs_ordering",
    "compute_ordering",
    "degree_ordering",
    "invert_ordering",
    "natural_ordering",
    "ordering_locality",
    "shingle_ordering",
]

Node = Hashable
Ordering = Dict[Node, int]


def _sorted_nodes(graph: Graph) -> List[Node]:
    return sorted(graph.nodes(), key=repr)


def natural_ordering(graph: Graph, seed: SeedLike = None) -> Ordering:
    """Deterministic identity-like ordering: nodes sorted by their repr."""
    return {node: index for index, node in enumerate(_sorted_nodes(graph))}


def degree_ordering(graph: Graph, seed: SeedLike = None) -> Ordering:
    """Descending-degree ordering, ties broken by repr.

    Hubs receive small ids, which shortens the gaps of the many lists
    that contain them.  A single sort over the existing adjacency is all
    this needs — building a substrate just to read degrees would cost
    more than the ordering itself.
    """
    nodes = sorted(_sorted_nodes(graph), key=lambda node: (-graph.degree(node), repr(node)))
    return {node: index for index, node in enumerate(nodes)}


def bfs_ordering(graph: Graph, seed: SeedLike = None) -> Ordering:
    """Breadth-first visiting order, one BFS per connected component.

    Each component is entered at its highest-degree node; neighbors are
    expanded in descending degree so dense regions receive contiguous
    ids (the BFS compression ordering of Apostolico & Drovandi).  The
    traversal runs on dense integer ids; labels reappear in the returned
    mapping only.
    """
    dense = DenseAdjacency.from_graph(graph)
    labels = dense.index.labels()
    degrees = dense.degrees
    neighbor_sets = dense.neighbors
    ordering: Ordering = {}
    pending = set(range(len(labels)))
    counter = 0
    while pending:
        start = max(pending, key=lambda node_id: (degrees[node_id], repr(labels[node_id])))
        queue = deque([start])
        pending.discard(start)
        while queue:
            node_id = queue.popleft()
            ordering[labels[node_id]] = counter
            counter += 1
            neighbors = sorted(
                (nbr for nbr in neighbor_sets[node_id] if nbr in pending),
                key=lambda nbr: (-degrees[nbr], repr(labels[nbr])),
            )
            for neighbor in neighbors:
                pending.discard(neighbor)
                queue.append(neighbor)
    return ordering


def shingle_ordering(graph: Graph, seed: SeedLike = 0) -> Ordering:
    """Min-hash (shingle) ordering: sort nodes by the smallest hash of their closed neighborhood.

    Nodes whose neighborhoods share their minimum-hash member end up
    adjacent, which is the single-shingle ordering of Chierichetti et
    al. used for social-network compression — and the same primitive
    SLUGGER/SWeG use for candidate generation.  Hash values are computed
    once per node (from the original labels, so the ordering is
    substrate-independent) and the per-edge minima run on dense ids.
    """
    rng = ensure_rng(seed)
    salt = rng.randrange(2**61)
    dense = DenseAdjacency.from_graph(graph)
    labels = dense.index.labels()
    # The second sanctioned label-hashing boundary: CI pins the orderings
    # under PYTHONHASHSEED=0.
    node_hash: List[int] = [
        # repro-lint: disable=builtin-hash (documented boundary, pinned under PYTHONHASHSEED=0)
        hash((salt, repr(label))) & 0x7FFFFFFFFFFFFFFF
        for label in labels
    ]

    shingles: List[int] = []
    for node_id, neighbors in enumerate(dense.neighbors):
        best = node_hash[node_id]
        if neighbors:
            smallest = min(map(node_hash.__getitem__, neighbors))
            if smallest < best:
                best = smallest
        shingles.append(best)

    ids = sorted(range(len(labels)), key=lambda node_id: repr(labels[node_id]))
    ids.sort(key=lambda node_id: (shingles[node_id], node_hash[node_id]))
    return {labels[node_id]: index for index, node_id in enumerate(ids)}


_ORDERINGS: Dict[str, Callable[[Graph, SeedLike], Ordering]] = {
    "natural": natural_ordering,
    "degree": degree_ordering,
    "bfs": bfs_ordering,
    "shingle": shingle_ordering,
}


def available_orderings() -> List[str]:
    """Names of all registered node orderings."""
    return sorted(_ORDERINGS)


def compute_ordering(graph: Graph, scheme: str = "natural", seed: SeedLike = 0) -> Ordering:
    """Compute the ordering named ``scheme`` for ``graph``.

    Raises
    ------
    CompressionError
        If ``scheme`` is not a registered ordering.
    """
    try:
        function = _ORDERINGS[scheme]
    except KeyError:
        raise CompressionError(
            f"unknown ordering {scheme!r}; available: {', '.join(available_orderings())}"
        ) from None
    ordering = function(graph, seed)
    _validate_ordering(graph, ordering)
    return ordering


def _validate_ordering(graph: Graph, ordering: Ordering) -> None:
    if set(ordering) != set(graph.nodes()):
        raise CompressionError("ordering does not cover exactly the graph's nodes")
    positions = sorted(ordering.values())
    if positions != list(range(len(positions))):
        raise CompressionError("ordering positions must be a permutation of 0..n-1")


def invert_ordering(ordering: Ordering) -> List[Node]:
    """Return the node at every position: ``result[index] == node``."""
    result: List[Node] = [None] * len(ordering)  # type: ignore[list-item]
    for node, index in ordering.items():
        if index < 0 or index >= len(result):
            raise CompressionError(f"ordering position {index} out of range")
        result[index] = node
    return result


def ordering_locality(graph: Graph, ordering: Ordering) -> float:
    """Mean absolute id gap across edges (lower means more compressible).

    This is the quantity the ordering ablation reports: a good relabeling
    scheme makes endpoints of edges numerically close, so adjacency gaps
    and therefore code lengths shrink.
    """
    if graph.num_edges == 0:
        return 0.0
    total = 0
    for u, v in graph.edges():
        total += abs(ordering[u] - ordering[v])
    return total / graph.num_edges
