"""End-to-end bit compression of graphs and summaries.

The paper's pitch for lossless summarization is that it is a *front end*
for any graph compressor: the summary's outputs "are three graphs, and
thus they can be further compressed using any graph-compression
techniques" (Sect. I).  This module closes that loop:

* :func:`compress_graph` bit-compresses a raw graph with gap codes;
* :func:`compress_hierarchical_summary` / :func:`compress_flat_summary`
  bit-compress a summary's output graphs (P+, P-, and H, or P, C+, C-,
  and the membership function);
* the matching ``decompress_*`` functions restore the exact original
  objects, keeping the pipeline lossless end to end;
* :func:`compression_report` compares bits-per-edge of the raw graph
  against summarize-then-compress, which is what the compression-pipeline
  bench regenerates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Sequence, Tuple, Union

from repro.compression.adjacency import CompressedAdjacency, decode_adjacency, encode_adjacency
from repro.compression.bits import BitReader, BitWriter
from repro.compression.codes import get_code, zigzag_decode, zigzag_encode
from repro.exceptions import CompressionError
from repro.graphs.graph import Graph
from repro.model.flat import FlatSummary
from repro.model.hierarchy import Hierarchy
from repro.model.summary import HierarchicalSummary
from repro.utils.rng import SeedLike

__all__ = [
    "CompressedFlatSummary",
    "CompressedGraph",
    "CompressedHierarchicalSummary",
    "compress_flat_summary",
    "compress_graph",
    "compress_hierarchical_summary",
    "compress_summary",
    "compression_report",
    "decompress_flat_summary",
    "decompress_hierarchical_summary",
]

Subnode = Hashable
Pair = Tuple[int, int]
AnySummary = Union[HierarchicalSummary, FlatSummary]


# ----------------------------------------------------------------------
# Shared pair-list codec
# ----------------------------------------------------------------------
def _encode_pair_list(writer: BitWriter, code_name: str, pairs: Sequence[Pair]) -> None:
    """Encode a set of canonical ``(a, b)`` integer pairs (``a <= b``, self-pairs allowed)."""
    code = get_code(code_name)
    ordered = sorted(pairs)
    code.encode(writer, len(ordered))
    previous_a = 0
    previous_b = 0
    for a, b in ordered:
        if a > b:
            raise CompressionError(f"pair ({a}, {b}) is not canonical (a <= b expected)")
        delta_a = a - previous_a
        if delta_a < 0:
            raise CompressionError("pairs must be sorted before encoding")
        code.encode(writer, delta_a)
        if delta_a > 0:
            code.encode(writer, b - a)
        else:
            code.encode(writer, b - previous_b if previous_b <= b else 0)
            if previous_b > b:
                raise CompressionError("pairs with equal first element must have increasing second element")
        previous_a, previous_b = a, b


def _decode_pair_list(reader: BitReader, code_name: str) -> List[Pair]:
    """Decode a pair list written by :func:`_encode_pair_list`."""
    code = get_code(code_name)
    count = code.decode(reader)
    pairs: List[Pair] = []
    previous_a = 0
    previous_b = 0
    for _ in range(count):
        delta_a = code.decode(reader)
        a = previous_a + delta_a
        if delta_a > 0:
            b = a + code.decode(reader)
        else:
            b = previous_b + code.decode(reader)
        pairs.append((a, b))
        previous_a, previous_b = a, b
    return pairs


def _encode_int_list(writer: BitWriter, code_name: str, values: Sequence[int]) -> None:
    """Encode a list of (possibly negative) integers with a leading count."""
    code = get_code(code_name)
    code.encode(writer, len(values))
    for value in values:
        code.encode(writer, zigzag_encode(value))


def _decode_int_list(reader: BitReader, code_name: str) -> List[int]:
    """Decode a list written by :func:`_encode_int_list`."""
    code = get_code(code_name)
    count = code.decode(reader)
    return [zigzag_decode(code.decode(reader)) for _ in range(count)]


# ----------------------------------------------------------------------
# Raw graphs
# ----------------------------------------------------------------------
@dataclass
class CompressedGraph:
    """A raw graph compressed with gap-coded adjacency lists."""

    adjacency: CompressedAdjacency

    def size_bits(self) -> int:
        """Payload size in bits."""
        return self.adjacency.size_bits()

    def bits_per_edge(self) -> float:
        """Payload bits divided by |E|."""
        return self.adjacency.bits_per_edge()

    def decompress(self) -> Graph:
        """Restore the original graph exactly."""
        return decode_adjacency(self.adjacency)


def compress_graph(
    graph: Graph, code: str = "gamma", ordering: str = "natural", seed: SeedLike = 0
) -> CompressedGraph:
    """Bit-compress a raw graph (the no-summarization baseline of the pipeline bench)."""
    return CompressedGraph(encode_adjacency(graph, code=code, ordering=ordering, seed=seed))


# ----------------------------------------------------------------------
# Hierarchical summaries
# ----------------------------------------------------------------------
@dataclass
class CompressedHierarchicalSummary:
    """A hierarchical summary (S, P+, P-, H) compressed into one bit payload.

    The payload stores, in order: the parent pointer of every supernode
    (densely relabeled), the p-edge pair list, and the n-edge pair list.
    ``leaf_subnodes`` maps dense leaf positions back to subnode labels so
    the summary can be reconstructed exactly.
    """

    payload: bytes
    bit_length: int
    code_name: str
    supernode_order: List[int] = field(repr=False)
    leaf_subnodes: Dict[int, Subnode] = field(repr=False)

    @property
    def num_supernodes(self) -> int:
        """Number of supernodes encoded."""
        return len(self.supernode_order)

    def size_bits(self) -> int:
        """Payload size in bits (excluding the subnode-label metadata)."""
        return self.bit_length

    def decompress(self) -> HierarchicalSummary:
        """Restore an equivalent :class:`HierarchicalSummary`."""
        return decompress_hierarchical_summary(self)


def compress_hierarchical_summary(
    summary: HierarchicalSummary, code: str = "gamma"
) -> CompressedHierarchicalSummary:
    """Bit-compress the three output graphs of a hierarchical summary."""
    hierarchy = summary.hierarchy
    supernode_order = sorted(hierarchy.supernodes())
    dense_of = {supernode: index for index, supernode in enumerate(supernode_order)}

    writer = BitWriter()
    gap_code = get_code(code)
    gap_code.encode(writer, len(supernode_order))
    # Parent pointers: zig-zag of (parent_dense - own_dense), 0 marks a root
    # because a supernode can never be its own parent.
    parent_offsets: List[int] = []
    for index, supernode in enumerate(supernode_order):
        parent = hierarchy.parent(supernode)
        parent_offsets.append(0 if parent is None else dense_of[parent] - index)
    _encode_int_list(writer, code, parent_offsets)

    def dense_pairs(edges) -> List[Pair]:
        pairs = []
        for a, b in edges:
            da, db = dense_of[a], dense_of[b]
            pairs.append((da, db) if da <= db else (db, da))
        return pairs

    _encode_pair_list(writer, code, dense_pairs(summary.p_edges()))
    _encode_pair_list(writer, code, dense_pairs(summary.n_edges()))

    leaf_subnodes = {
        dense_of[supernode]: hierarchy.subnode_of_leaf(supernode)
        for supernode in supernode_order
        if hierarchy.is_leaf(supernode)
    }
    return CompressedHierarchicalSummary(
        payload=writer.to_bytes(),
        bit_length=writer.bit_length,
        code_name=code,
        supernode_order=supernode_order,
        leaf_subnodes=leaf_subnodes,
    )


def decompress_hierarchical_summary(
    compressed: CompressedHierarchicalSummary,
) -> HierarchicalSummary:
    """Rebuild a :class:`HierarchicalSummary` from its compressed form.

    The reconstructed summary uses fresh supernode ids but represents
    exactly the same graph (same subnodes, same p/n/h structure), which
    is what the round-trip tests verify via ``decompress()`` equality.
    """
    reader = BitReader(compressed.payload, compressed.bit_length)
    gap_code = get_code(compressed.code_name)
    num_supernodes = gap_code.decode(reader)
    parent_offsets = _decode_int_list(reader, compressed.code_name)
    if len(parent_offsets) != num_supernodes:
        raise CompressionError("parent-pointer list length does not match the supernode count")
    p_pairs = _decode_pair_list(reader, compressed.code_name)
    n_pairs = _decode_pair_list(reader, compressed.code_name)
    if reader.remaining:
        raise CompressionError(f"{reader.remaining} unread bits after decoding the summary")

    children_of: Dict[int, List[int]] = {index: [] for index in range(num_supernodes)}
    roots: List[int] = []
    for index, offset in enumerate(parent_offsets):
        if offset == 0:
            roots.append(index)
        else:
            parent = index + offset
            if parent < 0 or parent >= num_supernodes:
                raise CompressionError(f"parent pointer of supernode {index} is out of range")
            children_of[parent].append(index)

    hierarchy = Hierarchy()
    new_id: Dict[int, int] = {}

    def build(dense_index: int) -> int:
        children = children_of[dense_index]
        if not children:
            if dense_index not in compressed.leaf_subnodes:
                raise CompressionError(f"leaf supernode {dense_index} has no recorded subnode")
            identifier = hierarchy.add_leaf(compressed.leaf_subnodes[dense_index])
        else:
            identifier = hierarchy.create_parent([build(child) for child in children])
        new_id[dense_index] = identifier
        return identifier

    for root in roots:
        build(root)
    if len(new_id) != num_supernodes:
        raise CompressionError("hierarchy reconstruction did not reach every supernode")

    summary = HierarchicalSummary(hierarchy)
    for a, b in p_pairs:
        summary.add_p_edge(new_id[a], new_id[b])
    for a, b in n_pairs:
        summary.add_n_edge(new_id[a], new_id[b])
    return summary


# ----------------------------------------------------------------------
# Flat summaries
# ----------------------------------------------------------------------
@dataclass
class CompressedFlatSummary:
    """A flat (Navlakha) summary compressed into one bit payload."""

    payload: bytes
    bit_length: int
    code_name: str
    subnode_order: List[Subnode] = field(repr=False)

    def size_bits(self) -> int:
        """Payload size in bits (excluding the subnode-label metadata)."""
        return self.bit_length

    def decompress(self) -> FlatSummary:
        """Restore an equivalent :class:`FlatSummary`."""
        return decompress_flat_summary(self)


def compress_flat_summary(summary: FlatSummary, code: str = "gamma") -> CompressedFlatSummary:
    """Bit-compress a flat summary (group membership, P, C+, C-)."""
    subnode_order = sorted(summary.group_of, key=repr)
    subnode_id = {subnode: index for index, subnode in enumerate(subnode_order)}
    group_order = sorted(summary.groups)
    group_id = {group: index for index, group in enumerate(group_order)}

    writer = BitWriter()
    gap_code = get_code(code)
    gap_code.encode(writer, len(subnode_order))
    gap_code.encode(writer, len(group_order))
    membership = [group_id[summary.group_of[subnode]] for subnode in subnode_order]
    _encode_int_list(writer, code, membership)

    def canonical_group_pairs(edges) -> List[Pair]:
        pairs = []
        for a, b in edges:
            da, db = group_id[a], group_id[b]
            pairs.append((da, db) if da <= db else (db, da))
        return pairs

    def canonical_subnode_pairs(edges) -> List[Pair]:
        pairs = []
        for u, v in edges:
            du, dv = subnode_id[u], subnode_id[v]
            pairs.append((du, dv) if du <= dv else (dv, du))
        return pairs

    _encode_pair_list(writer, code, canonical_group_pairs(summary.superedges))
    _encode_pair_list(writer, code, canonical_subnode_pairs(summary.corrections_plus))
    _encode_pair_list(writer, code, canonical_subnode_pairs(summary.corrections_minus))
    return CompressedFlatSummary(
        payload=writer.to_bytes(),
        bit_length=writer.bit_length,
        code_name=code,
        subnode_order=subnode_order,
    )


def decompress_flat_summary(compressed: CompressedFlatSummary) -> FlatSummary:
    """Rebuild a :class:`FlatSummary` from its compressed form."""
    reader = BitReader(compressed.payload, compressed.bit_length)
    gap_code = get_code(compressed.code_name)
    num_subnodes = gap_code.decode(reader)
    num_groups = gap_code.decode(reader)
    if num_subnodes != len(compressed.subnode_order):
        raise CompressionError("subnode count does not match the recorded subnode order")
    membership = _decode_int_list(reader, compressed.code_name)
    if len(membership) != num_subnodes:
        raise CompressionError("membership list length does not match the subnode count")
    superedge_pairs = _decode_pair_list(reader, compressed.code_name)
    plus_pairs = _decode_pair_list(reader, compressed.code_name)
    minus_pairs = _decode_pair_list(reader, compressed.code_name)
    if reader.remaining:
        raise CompressionError(f"{reader.remaining} unread bits after decoding the summary")

    summary = FlatSummary()
    members: Dict[int, set] = {index: set() for index in range(num_groups)}
    for subnode, group in zip(compressed.subnode_order, membership):
        if group < 0 or group >= num_groups:
            raise CompressionError(f"membership group {group} out of range")
        members[group].add(subnode)
        summary.group_of[subnode] = group
    for group, nodes in members.items():
        if nodes:
            summary.groups[group] = frozenset(nodes)
    for a, b in superedge_pairs:
        if a not in summary.groups or b not in summary.groups:
            raise CompressionError("superedge references an empty group")
        summary.superedges.add((a, b))

    def to_subnode_pair(pair: Pair) -> Tuple[Subnode, Subnode]:
        u = compressed.subnode_order[pair[0]]
        v = compressed.subnode_order[pair[1]]
        return (u, v) if repr(u) <= repr(v) else (v, u)

    summary.corrections_plus.update(to_subnode_pair(pair) for pair in plus_pairs)
    summary.corrections_minus.update(to_subnode_pair(pair) for pair in minus_pairs)
    return summary


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------
def compress_summary(summary: AnySummary, code: str = "gamma"):
    """Compress either summary type with the matching codec."""
    if isinstance(summary, HierarchicalSummary):
        return compress_hierarchical_summary(summary, code=code)
    if isinstance(summary, FlatSummary):
        return compress_flat_summary(summary, code=code)
    raise TypeError(f"unsupported summary type {type(summary).__name__}")


def compression_report(
    graph: Graph,
    summary: AnySummary,
    code: str = "gamma",
    ordering: str = "natural",
    seed: SeedLike = 0,
) -> Dict[str, float]:
    """Bits needed for the raw graph versus the summarize-then-compress pipeline.

    Returns a record with the raw payload bits, the summary payload bits,
    their bits-per-edge, and the ratio ``summary_bits / raw_bits`` (lower
    is better for the pipeline), which is the row format of the
    compression-pipeline bench.
    """
    if graph.num_edges == 0:
        raise CompressionError("compression report is undefined for an edgeless graph")
    raw = compress_graph(graph, code=code, ordering=ordering, seed=seed)
    compressed_summary = compress_summary(summary, code=code)
    raw_bits = float(raw.size_bits())
    summary_bits = float(compressed_summary.size_bits())
    return {
        "num_edges": float(graph.num_edges),
        "raw_bits": raw_bits,
        "summary_bits": summary_bits,
        "raw_bits_per_edge": raw_bits / graph.num_edges,
        "summary_bits_per_edge": summary_bits / graph.num_edges,
        "pipeline_ratio": summary_bits / raw_bits if raw_bits else 0.0,
    }
