"""SLUGGER: scalable lossless summarization of graphs with hierarchy.

The package implements Algorithm 1 of the paper and its components:

* :mod:`repro.core.config` — tunable parameters (iterations ``T``,
  candidate-set cap, merging-threshold schedule, height bound ``H_b``).
* :mod:`repro.core.shingles` — min-hash shingle values over root supernodes.
* :mod:`repro.core.candidates` — candidate-set generation (Sect. III-B2).
* :mod:`repro.core.encoder` — memoized local encoding search used when two
  root supernodes are merged (Sect. III-B3, Cases 1 and 2).
* :mod:`repro.core.state` — the mutable summarization state with the
  per-root bookkeeping that makes saving evaluation O(degree).
* :mod:`repro.core.saving` — the saving objective (Eq. 8).
* :mod:`repro.core.merging` — the merging step (Algorithm 2).
* :mod:`repro.core.pruning` — the three pruning substeps (Sect. III-B4).
* :mod:`repro.core.slugger` — the top-level driver (Algorithm 1).
"""

from repro.core.config import SluggerConfig
from repro.core.slugger import Slugger, SluggerResult, summarize

__all__ = ["SluggerConfig", "Slugger", "SluggerResult", "summarize"]
