"""Candidate-set generation (Sect. III-B2).

Naively searching all root pairs for the merge with the largest cost
reduction is quadratic in the number of roots.  SLUGGER instead groups
roots that share a min-hash shingle (and therefore are likely to lie
within distance 2 of each other — merging more distant pairs never helps,
Lemma 1), splits oversized groups with further shingle rounds, and
finally splits any group still above the cap at random.

Lazy, cached shingle rounds
---------------------------
Each shingle round only has to split the groups that are still above the
candidate-size cap, so shingles are computed *lazily* per oversized
group: one :class:`~repro.core.shingles.ShingleCache` is created per
round (keyed by the round's hash-function seed in a per-iteration cache
dictionary), and only the leaf sets of the roots that still need
splitting are hashed.  The first round typically covers the whole graph
— the cache then bulk-hashes every node once up front so the per-edge
minimum runs at C speed — while later rounds touch only the shrinking
oversized remainder instead of rehashing all of ``graph.nodes()`` as the
seed implementation did.  The produced candidate sets are bit-identical
to the eager scheme for a fixed seed: laziness changes where the hashing
work happens, not which shingle values are computed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from repro.core.config import SluggerConfig
from repro.core.shingles import DenseShingleCache, ShingleCache
from repro.graphs.dense import DenseAdjacency
from repro.graphs.graph import Graph
from repro.model.hierarchy import Hierarchy
from repro.utils.rng import SeedLike, ensure_rng

__all__ = ["generate_candidate_sets"]


def generate_candidate_sets(
    graph: Graph,
    hierarchy: Hierarchy,
    roots: Sequence[int],
    config: SluggerConfig,
    seed: SeedLike = None,
    dense: Optional[DenseAdjacency] = None,
    shingle_caches: Optional[Dict[int, Union[ShingleCache, DenseShingleCache]]] = None,
) -> List[List[int]]:
    """Split ``roots`` into candidate sets of at most ``config.max_candidate_size``.

    Each returned list contains root supernode ids that are promising to
    merge with one another.  Groups of size one are dropped because they
    offer nothing to merge.  A different ``seed`` per iteration varies the
    grouping so more root pairs get considered over time (Sect. III-B2).

    With ``dense`` supplied (the driver passes the state's substrate),
    the shingle rounds run entirely on integer ids: a leaf root *is* its
    dense node id, internal roots aggregate over the hierarchy's memoized
    leaf-id tuples, and per-node storage is list-backed.  The produced
    candidate sets are bit-identical to the label path for a fixed seed.

    ``shingle_caches`` optionally seeds the per-iteration cache
    dictionary (hash-function seed → cache).  The batch shingle phase
    uses it to inject a pre-computed first-round cache: the cached values
    are bit-identical to what the rounds below would compute, so the
    produced candidate sets cannot depend on whether (or where) the
    pre-computation ran.
    """
    rng = ensure_rng(seed)
    groups: List[List[int]] = [list(roots)]
    finished: List[List[int]] = []
    # Per-iteration shingle caches, keyed by hash-function seed: every
    # round draws a fresh seed, and all groups split within that round
    # share the round's lazily-filled cache.
    use_dense = dense is not None
    if shingle_caches is None:
        shingle_caches = {}
    # Leaf lists per root, shared by every round of this call (roots do
    # not change while candidate sets are being generated).  Leaf roots —
    # the entire first iteration, and stragglers later — resolve through
    # a single probe instead.
    root_leaves: Dict[int, Sequence] = {}
    leaf_map = hierarchy.leaf_subnode_map()
    missing = object()

    for _ in range(config.shingle_rounds):
        oversized = [group for group in groups if len(group) > config.max_candidate_size]
        finished.extend(group for group in groups if len(group) <= config.max_candidate_size)
        if not oversized:
            groups = []
            break
        round_seed = rng.randrange(2**61)
        cache = shingle_caches.get(round_seed)
        if cache is None:
            cache = (DenseShingleCache(dense, round_seed) if use_dense
                     else ShingleCache(graph, round_seed))
            shingle_caches[round_seed] = cache
        if 2 * sum(len(group) for group in oversized) >= len(roots):
            # The round still covers most of the roots (always true for the
            # first round), so its closed neighborhoods touch most of the
            # graph: bulk-compute every shingle once so the per-edge minima
            # and the per-root lookups below run at C speed.
            shingle_of = cache.ensure_shingles().__getitem__
        else:
            shingle_of = cache.shingle
        groups = []
        for group in oversized:
            buckets: Dict[int, List[int]] = {}
            for root in group:
                if use_dense:
                    if root in leaf_map:  # A leaf root is its own dense id.
                        value = shingle_of(root)
                    else:
                        leaves = root_leaves.get(root)
                        if leaves is None:
                            leaves = root_leaves[root] = hierarchy.leaf_id_view(root)
                        value = min(map(shingle_of, leaves))
                else:
                    subnode = leaf_map.get(root, missing)
                    if subnode is not missing:
                        value = shingle_of(subnode)
                    else:
                        leaves = root_leaves.get(root)
                        if leaves is None:
                            leaves = root_leaves[root] = hierarchy.leaf_subnodes(root)
                        value = min(map(shingle_of, leaves))
                buckets.setdefault(value, []).append(root)
            if len(buckets) == 1:
                # The shingle could not separate the group; keep it whole and
                # let the random splitting below handle it.
                groups.append(group)
            else:
                # repro-lint: disable=unordered-iter (dict insertion order is deterministic and the pinned RNG stream depends on it)
                groups.extend(buckets.values())

    # Any group still above the cap is split uniformly at random.
    for group in groups:
        if len(group) <= config.max_candidate_size:
            finished.append(group)
        else:
            shuffled = list(group)
            rng.shuffle(shuffled)
            for start in range(0, len(shuffled), config.max_candidate_size):
                finished.append(shuffled[start:start + config.max_candidate_size])

    candidate_sets = [group for group in finished if len(group) >= 2]
    rng.shuffle(candidate_sets)
    return candidate_sets
