"""Candidate-set generation (Sect. III-B2).

Naively searching all root pairs for the merge with the largest cost
reduction is quadratic in the number of roots.  SLUGGER instead groups
roots that share a min-hash shingle (and therefore are likely to lie
within distance 2 of each other — merging more distant pairs never helps,
Lemma 1), splits oversized groups with further shingle rounds, and
finally splits any group still above the cap at random.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.config import SluggerConfig
from repro.core.shingles import make_hash_function, root_shingles, subnode_shingles
from repro.graphs.graph import Graph
from repro.model.hierarchy import Hierarchy
from repro.utils.rng import SeedLike, ensure_rng


def generate_candidate_sets(
    graph: Graph,
    hierarchy: Hierarchy,
    roots: Sequence[int],
    config: SluggerConfig,
    seed: SeedLike = None,
) -> List[List[int]]:
    """Split ``roots`` into candidate sets of at most ``config.max_candidate_size``.

    Each returned list contains root supernode ids that are promising to
    merge with one another.  Groups of size one are dropped because they
    offer nothing to merge.  A different ``seed`` per iteration varies the
    grouping so more root pairs get considered over time (Sect. III-B2).
    """
    rng = ensure_rng(seed)
    groups: List[List[int]] = [list(roots)]
    finished: List[List[int]] = []

    for _ in range(config.shingle_rounds):
        oversized = [group for group in groups if len(group) > config.max_candidate_size]
        finished.extend(group for group in groups if len(group) <= config.max_candidate_size)
        if not oversized:
            groups = []
            break
        hash_function = make_hash_function(rng.randrange(2**61))
        node_shingles = subnode_shingles(graph, hash_function)
        groups = []
        for group in oversized:
            shingles = root_shingles(group, hierarchy, node_shingles)
            buckets: Dict[int, List[int]] = {}
            for root in group:
                buckets.setdefault(shingles[root], []).append(root)
            if len(buckets) == 1:
                # The shingle could not separate the group; keep it whole and
                # let the random splitting below handle it.
                groups.append(group)
            else:
                groups.extend(buckets.values())

    # Any group still above the cap is split uniformly at random.
    for group in groups:
        if len(group) <= config.max_candidate_size:
            finished.append(group)
        else:
            shuffled = list(group)
            rng.shuffle(shuffled)
            for start in range(0, len(shuffled), config.max_candidate_size):
                finished.append(shuffled[start:start + config.max_candidate_size])

    candidate_sets = [group for group in finished if len(group) >= 2]
    rng.shuffle(candidate_sets)
    return candidate_sets
