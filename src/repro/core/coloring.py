"""Colored merge sweeps: parallel zero-threshold iterations without replay.

Zero-threshold iterations (SLUGGER's final passes) merge nearly every
candidate group, so the optimistic decide/apply split of
:mod:`repro.core.slugger` degenerates there: almost every trace fails
its conflict check and is thrown away.  The ``serial_zero_threshold``
heuristic therefore used to force those iterations onto the serial
reference loop — the serial tail this module drains.

The colored sweep exploits a different source of safety.  Candidate
groups interact only through their *footprints*
(:meth:`~repro.core.state.SluggerState.group_footprint`: the member
roots plus every root adjacent to one of them); two groups with
disjoint footprints cannot observe each other's merges.  Treating the
groups (in canonical order) as vertices of an interaction graph whose
edges connect footprint-overlapping groups, a deterministic greedy pass
(:func:`first_color_class`) extracts an independent class: group ``i``
enters the class iff its footprint is disjoint from the footprints of
**all** canonically-earlier groups — not merely the earlier class
members.  That stronger condition buys structural exactness:

* *decide*: class members are pairwise disjoint, so forked workers can
  decide several of them back-to-back on one copy-on-write image —
  each decision is exactly what the serial reference would compute;
* *apply*: every group (class member or not) is applied **in canonical
  order** — traced members replay their trace, gaps run the serial
  reference computation in place.  A class member's replay stays exact
  because the writes of every canonically-earlier group, whenever it is
  applied, stay inside the closure of earlier footprints: merges re-key
  root state only onto supernodes made from roots already inside those
  footprints, and a root adjacent to the member's footprint would have
  put itself into both footprints, contradicting disjointness.  The
  member's decide-time view therefore never goes stale — no conflict
  check, no replay fallback.

Applying strictly in canonical order also preserves the hierarchy's
``create_parent`` id sequence, so the summary is **bit-identical** to
the serial reference at any worker count (pinned by the execution test
suite).  When the class is too small to pay for a decide round
(``colored_min_class``), the sweep finishes the remainder on the serial
reference path; the driver falls back to the optimistic replay pipeline
when even the *first* class degenerates.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.config import SluggerConfig
from repro.core.merging import apply_merge_trace, decide_merges, process_candidate_set
from repro.core.state import SluggerState
from repro.engine.execution import ExecutionConfig, executor_for, shard_bounds, worker_context
from repro.obs import NULL_TRACER

__all__ = [
    "color_classes",
    "colored_apply_sweep",
    "colored_decide_worker",
    "first_color_class",
]

MergeTrace = List[Tuple[int, int]]


def first_color_class(
    state: SluggerState,
    candidate_sets: Sequence[List[int]],
    start: int = 0,
) -> List[int]:
    """Indices of the first independent class of ``candidate_sets[start:]``.

    One deterministic pass in canonical order: group ``i`` is admitted
    iff its footprint is disjoint from the *running union* of the
    footprints of every earlier group (admitted or not), which makes the
    class pairwise disjoint **and** disjoint from every earlier
    unapplied group — the invariant the sweep's exactness proof needs.
    Footprints are read from the live state, so callers must not mutate
    it between this pass and the class's decide round.
    """
    ready: List[int] = []
    seen: Set[int] = set()
    for index in range(start, len(candidate_sets)):
        footprint = state.group_footprint(candidate_sets[index])
        if seen.isdisjoint(footprint):
            ready.append(index)
        seen |= footprint
    return ready


def color_classes(
    state: SluggerState, candidate_sets: Sequence[List[int]]
) -> List[List[int]]:
    """Greedy coloring of the group interaction graph, strongest class first.

    Repeatedly peels :func:`first_color_class` off the remaining groups,
    so every class is an independent set under the *running-union*
    criterion (each member's footprint disjoint from every earlier
    remaining group's).  Deterministic: a pure function of the state and
    the canonical group order.  The sweep itself only consumes the first
    class per round against live state; the full partition exists for
    diagnostics and the property-based tests.
    """
    remaining = list(range(len(candidate_sets)))
    classes: List[List[int]] = []
    while remaining:
        subset = [candidate_sets[index] for index in remaining]
        picked = first_color_class(state, subset)
        picked_set = set(picked)
        classes.append([remaining[position] for position in picked])
        remaining = [
            index
            for position, index in enumerate(remaining)
            if position not in picked_set
        ]
    return classes


class _ColorDecideContext:
    """Worker context of one colored decide round (inherited via fork).

    ``indices`` maps shard positions back to canonical group indices;
    everything else is the snapshot the workers simulate on.  Class
    members are pairwise footprint-disjoint, so one worker deciding
    several of them in sequence on its private image computes exactly
    what the serial reference would.
    """

    __slots__ = ("state", "candidate_sets", "threshold", "config", "seeds", "indices")

    def __init__(
        self,
        state: SluggerState,
        candidate_sets: Sequence[List[int]],
        threshold: float,
        config: SluggerConfig,
        seeds: Sequence[int],
        indices: Sequence[int],
    ) -> None:
        self.state = state
        self.candidate_sets = candidate_sets
        self.threshold = threshold
        self.config = config
        self.seeds = seeds
        self.indices = indices


def colored_decide_worker(
    bounds: Tuple[int, int],
) -> List[Tuple[int, MergeTrace]]:
    """Decide one shard of a colored class on this worker's forked image.

    Reads the :class:`_ColorDecideContext` via :func:`worker_context`
    (no locks; the image is a private copy-on-write snapshot) and
    returns ``(group_index, trace)`` pairs.  Traces are exact — the
    class construction guarantees no replay-time conflict — and may be
    empty when nothing in the group clears the threshold.
    """
    start, stop = bounds
    context = worker_context()
    state = context.state
    candidate_sets = context.candidate_sets
    seeds = context.seeds
    decided: List[Tuple[int, MergeTrace]] = []
    for position in range(start, stop):
        index = context.indices[position]
        trace = decide_merges(
            state,
            candidate_sets[index],
            context.threshold,
            context.config,
            seed=seeds[index],
        )
        decided.append((index, trace))
    return decided


def colored_apply_sweep(
    state: SluggerState,
    candidate_sets: Sequence[List[int]],
    seeds: Sequence[int],
    threshold: float,
    config: SluggerConfig,
    execution: ExecutionConfig,
    stats: Dict[str, int],
    first_ready: Optional[List[int]] = None,
    tracer=NULL_TRACER,
) -> int:
    """Run one zero-threshold iteration as colored rounds; returns merges.

    ``tracer`` records one ``colored-round`` span per sweep round (class
    size, decide/apply split) — pure observation, the sweep's decisions
    and ordering are identical with tracing on or off.

    Each round: extract the first independent class of the unapplied
    suffix (``first_ready`` hands in the driver's already-computed
    round-one class), decide the class's groups concurrently, then walk
    the groups in canonical order — replaying traced groups, running
    untraced gaps through the serial reference — pausing after a gap so
    the next round re-colors against the mutated state.  Traces retained
    across a round boundary are re-certified by the next round's class
    pass (a retained group that falls out of the class is re-decided or
    applied serially), so every replay stays exact.  Classes below
    ``execution.colored_min_class`` end the coloring: the remainder
    finishes on the serial reference path.
    """
    total = len(candidate_sets)
    traces: Dict[int, MergeTrace] = {}
    merges = 0
    cursor = 0
    ready = first_ready
    round_number = 0
    while cursor < total:
        if ready is None:
            ready = first_color_class(state, candidate_sets, start=cursor)
        round_number += 1
        round_span = tracer.span(
            "colored-round", round=round_number,
            class_size=len(ready), cursor=cursor, groups=total,
        )
        with round_span:
            ready_set = set(ready)
            traces = {index: trace for index, trace in traces.items() if index in ready_set}
            undecided = [index for index in ready if index not in traces]
            colored = (
                len(ready) >= execution.colored_min_class
                and execution.effective_workers(len(undecided)) > 1
            )
            if colored:
                context = _ColorDecideContext(
                    state, candidate_sets, threshold, config, seeds, undecided
                )
                executor = executor_for(execution, len(undecided), context=context)
                try:
                    bounds = shard_bounds(
                        len(undecided), execution.workers * execution.chunks_per_worker
                    )
                    with tracer.span("colored-decide", undecided=len(undecided)):
                        for shard in executor.map_shards(colored_decide_worker, bounds):
                            for index, trace in shard:
                                traces[index] = trace
                finally:
                    executor.close()
                stats["colored_rounds"] += 1
            ready = None
            if not colored:
                # Degenerate class: no parallelism left to extract — finish
                # the suffix on the serial reference path (replaying what was
                # already decided, in canonical order).
                round_span.annotate(degenerate=True)
                for index in range(cursor, total):
                    trace = traces.pop(index, None)
                    if trace is not None:
                        merges += apply_merge_trace(state, trace, config)
                        stats["colored_replayed"] += 1
                    else:
                        merges += process_candidate_set(
                            state, candidate_sets[index], threshold, config,
                            seed=seeds[index],
                        )
                        stats["colored_serial"] += 1
                cursor = total
                break
            # Canonical apply walk: replay the traced run, absorb one serial
            # gap, keep replaying, and stop at the second gap — mutated state
            # has diverged enough that re-coloring beats more serial work.
            gap_done = False
            while cursor < total:
                trace = traces.pop(cursor, None)
                if trace is not None:
                    merges += apply_merge_trace(state, trace, config)
                    stats["colored_replayed"] += 1
                    cursor += 1
                elif not gap_done:
                    merges += process_candidate_set(
                        state, candidate_sets[cursor], threshold, config,
                        seed=seeds[cursor],
                    )
                    stats["colored_serial"] += 1
                    cursor += 1
                    gap_done = True
                else:
                    break
    return merges
