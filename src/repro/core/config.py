"""Configuration of the SLUGGER heuristic."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.exceptions import ConfigurationError

__all__ = ["SluggerConfig"]


@dataclass
class SluggerConfig:
    """Tunable parameters of SLUGGER (Algorithm 1).

    Attributes
    ----------
    iterations:
        The number of candidate-generation + merging rounds ``T``.  The
        paper uses ``T = 20`` by default and studies the effect of ``T``
        in Table III.
    max_candidate_size:
        Upper bound on the size of a candidate root set.  The paper caps
        candidate sets at 500 roots; the pure-Python reproduction defaults
        to a smaller cap because saving evaluation inside a candidate set
        is quadratic in its size (the cap is swept in an ablation bench).
    shingle_rounds:
        Maximum number of min-hash splitting rounds before oversized
        groups are split randomly (the paper uses at most 10).
    height_bound:
        Optional upper bound ``H_b`` on the height of hierarchy trees
        (Table V).  ``None`` reproduces the unbounded original algorithm.
    threshold_schedule:
        ``"paper"`` uses Eq. 9, θ(t) = 1/(1+t) with θ(T) = 0;
        ``"zero"`` always merges any cost-non-increasing pair; a string of
        the form ``"constant:0.25"`` keeps a fixed threshold (used by the
        threshold ablation bench).
    use_memoized_encoder:
        When ``False``, the local encoding search re-solves the blanket
        pattern optimisation for every merge instead of using the
        process-wide memo table (ablation of the paper's memoization).
    prune:
        Whether to run the pruning step after the merge phase.
    prune_rounds:
        How many times the three pruning substeps are repeated (the paper
        notes they "can be repeated a few times").
    seed:
        Seed for all randomized choices; ``None`` gives fresh randomness.
    validate_output:
        When ``True`` the driver validates the final summary against the
        input graph and raises if losslessness was broken (cheap safety
        net for small graphs; disable for large runs).
    check_invariants:
        When ``True`` the driver runs ``SluggerState.check_consistency``
        after every iteration, verifying the incremental indices (superedge
        counters, adjacency counters, leaf-set cache) against the summary.
        O(|summary|) per iteration — for tests and debugging only.
    use_dense_substrate:
        When ``True`` (default) shingle rounds, candidate generation, and
        the local encoder run on the dense integer-id substrate
        (:class:`~repro.graphs.dense.DenseAdjacency`) instead of the
        label-keyed adjacency.  Output is bit-identical either way; the
        flag exists for the substrate benchmark and as a debugging
        fallback.
    """

    iterations: int = 20
    max_candidate_size: int = 120
    shingle_rounds: int = 10
    height_bound: Optional[int] = None
    threshold_schedule: str = "paper"
    use_memoized_encoder: bool = True
    prune: bool = True
    prune_rounds: int = 2
    seed: Optional[int] = None
    validate_output: bool = False
    check_invariants: bool = False
    use_dense_substrate: bool = True

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ConfigurationError(f"iterations must be >= 1, got {self.iterations}")
        if self.max_candidate_size < 2:
            raise ConfigurationError(
                f"max_candidate_size must be >= 2, got {self.max_candidate_size}"
            )
        if self.shingle_rounds < 0:
            raise ConfigurationError(f"shingle_rounds must be >= 0, got {self.shingle_rounds}")
        if self.height_bound is not None and self.height_bound < 1:
            raise ConfigurationError(f"height_bound must be >= 1 or None, got {self.height_bound}")
        if self.prune_rounds < 0:
            raise ConfigurationError(f"prune_rounds must be >= 0, got {self.prune_rounds}")
        self._parse_threshold_schedule()

    def _parse_threshold_schedule(self) -> Optional[float]:
        schedule = self.threshold_schedule
        if schedule in ("paper", "zero"):
            return None
        if schedule.startswith("constant:"):
            try:
                value = float(schedule.split(":", 1)[1])
            except ValueError as error:
                raise ConfigurationError(f"invalid threshold schedule {schedule!r}") from error
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError("constant threshold must lie in [0, 1]")
            return value
        raise ConfigurationError(
            f"threshold_schedule must be 'paper', 'zero', or 'constant:<x>', got {schedule!r}"
        )

    def threshold(self, iteration: int) -> float:
        """Merging threshold θ(t) for the 1-based ``iteration`` (Eq. 9)."""
        if iteration < 1 or iteration > self.iterations:
            raise ConfigurationError(
                f"iteration must be in [1, {self.iterations}], got {iteration}"
            )
        if self.threshold_schedule == "zero":
            return 0.0
        constant = self._parse_threshold_schedule()
        if constant is not None:
            return constant
        if iteration >= self.iterations:
            return 0.0
        return 1.0 / (1.0 + iteration)
