"""Local encoding search used when two root supernodes are merged.

When SLUGGER merges root supernodes, the p-edges and n-edges between the
affected trees are re-encoded locally (Sect. III-B3).  Each side of the
re-encoding is viewed as a two-level *panel*: the root supernode plus its
direct children (the paper's ``S_X``).  A candidate encoding places
"blanket" p/n-edges on pairs of panel members such that every
bottom-level block (pair of child supernodes) ends up with a net coverage
of 0 or 1 — the restriction the paper also imposes — and the remaining
discrepancies are fixed with p/n-edges between singleton leaves.

The optimal blanket realisation of a given 0/1 block-coverage pattern
depends only on the panel *shapes*, not on the graph, so it is memoized
process-wide exactly like the paper's pre-computed lookup table; the
per-merge work is then just counting edges per block and picking the
pattern with the least total cost.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.graphs.dense import DenseAdjacency
from repro.graphs.graph import Graph
from repro.model.hierarchy import Hierarchy

__all__ = [
    "EncodingPlan",
    "IntraEncodingPlan",
    "Panel",
    "apply_cross_plan",
    "apply_intra_plan",
    "count_edges_between",
    "count_edges_within",
    "memo_table_sizes",
    "missing_pairs_between",
    "missing_pairs_within",
    "plan_cross_encoding",
    "plan_intra_encoding",
    "present_pairs_between",
    "present_pairs_within",
]

Subnode = Hashable

POSITIVE = 1
NEGATIVE = -1

# A blanket slot assignment: (endpoint index on side A, endpoint index on
# side B, sign).  Endpoint index 0 is the panel top when the top is
# distinct from its parts, otherwise endpoints are the parts themselves.
SlotAssignment = Tuple[Tuple[int, int, int], ...]

# The exhaustive pattern search enumerates 3**num_slots sign assignments,
# so it is only used while that stays small (3**12 ≈ 5·10^5, well under a
# second and computed once per panel shape).  Larger panels — which the
# SLUGGER driver itself never produces, since merged roots always have two
# children, but which library users may build directly — fall back to a
# structured heuristic search over a constant family of coverage patterns.
_MAX_EXACT_SLOTS = 12


class Panel:
    """A root supernode viewed as ``{top} ∪ children(top)`` (the paper's S_X)."""

    def __init__(self, hierarchy: Hierarchy, top: int) -> None:
        self.top = top
        children = hierarchy.children(top)
        self.parts: List[int] = list(children) if children else [top]
        self.sizes: List[int] = [hierarchy.size(part) for part in self.parts]
        self.has_distinct_top = bool(children)

    @property
    def shape(self) -> Tuple[int, bool]:
        """(number of parts, whether the top is a separate endpoint)."""
        return (len(self.parts), self.has_distinct_top)

    def endpoints(self) -> List[int]:
        """Supernode ids usable as blanket endpoints, top (if distinct) first."""
        if self.has_distinct_top:
            return [self.top] + self.parts
        return list(self.parts)

    def endpoint_coverage(self) -> List[Tuple[int, ...]]:
        """Which part indices each endpoint covers (aligned with :meth:`endpoints`)."""
        part_indices = tuple(range(len(self.parts)))
        if self.has_distinct_top:
            return [part_indices] + [(index,) for index in range(len(self.parts))]
        return [(index,) for index in range(len(self.parts))]


@dataclass
class EncodingPlan:
    """Result of the local search for one panel pair.

    ``cost`` is the total number of superedges the plan will create
    (blankets plus leaf-level corrections).  ``superedges`` are the
    blanket edges between panel members; ``positive_blocks`` are blocks
    whose present subedges must be added as leaf p-edges (net coverage 0);
    ``negative_blocks`` are blocks whose missing subedges must be added as
    leaf n-edges (net coverage 1).
    """

    cost: int
    superedges: List[Tuple[int, int, int]] = field(default_factory=list)
    positive_blocks: List[Tuple[int, int]] = field(default_factory=list)
    negative_blocks: List[Tuple[int, int]] = field(default_factory=list)


# ----------------------------------------------------------------------
# Memoized blanket-pattern solver
# ----------------------------------------------------------------------
@lru_cache(maxsize=None)
def _pattern_table(
    coverage_a: Tuple[Tuple[int, ...], ...],
    coverage_b: Tuple[Tuple[int, ...], ...],
    num_parts_a: int,
    num_parts_b: int,
) -> Dict[Tuple[Tuple[int, ...], ...], Tuple[int, SlotAssignment]]:
    """Optimal blanket assignments for every achievable 0/1 coverage pattern.

    The table maps a target block matrix (rows = parts of side A, columns
    = parts of side B, entries in {0, 1}) to the minimum number of blanket
    edges realising it and one optimal assignment.  This is the
    graph-independent part of the paper's memoization: it is computed once
    per panel *shape* and reused for every merge and every input graph.
    """
    return _solve_pattern_table(coverage_a, coverage_b, num_parts_a, num_parts_b)


# A flattened cross-table entry: (targets, slot cost, assignment, flat
# indices of the 1-blocks, flat indices of the 0-blocks).  The index
# tuples are part of the per-shape memo so the per-merge cost evaluation
# is a flat-list walk instead of a nested row/column scan.
CrossEntry = Tuple[Tuple[Tuple[int, ...], ...], int, SlotAssignment,
                   Tuple[int, ...], Tuple[int, ...]]


def _enrich_cross_entries(
    table: Dict[Tuple[Tuple[int, ...], ...], Tuple[int, SlotAssignment]],
    num_parts_b: int,
) -> List[CrossEntry]:
    """Flatten a cross-pattern table for the per-merge cost evaluation."""
    entries: List[CrossEntry] = []
    for targets, (slot_cost, assignment) in table.items():
        ones: List[int] = []
        zeros: List[int] = []
        for row_index, row in enumerate(targets):
            base = row_index * num_parts_b
            for col_index, value in enumerate(row):
                (ones if value == 1 else zeros).append(base + col_index)
        entries.append((targets, slot_cost, assignment, tuple(ones), tuple(zeros)))
    return entries


@lru_cache(maxsize=None)
def _pattern_entries(
    coverage_a: Tuple[Tuple[int, ...], ...],
    coverage_b: Tuple[Tuple[int, ...], ...],
    num_parts_a: int,
    num_parts_b: int,
) -> List[CrossEntry]:
    """Memoized flattened view of :func:`_pattern_table` for one panel shape."""
    table = _pattern_table(coverage_a, coverage_b, num_parts_a, num_parts_b)
    return _enrich_cross_entries(table, num_parts_b)


def _solve_pattern_table(
    coverage_a: Sequence[Tuple[int, ...]],
    coverage_b: Sequence[Tuple[int, ...]],
    num_parts_a: int,
    num_parts_b: int,
) -> Dict[Tuple[Tuple[int, ...], ...], Tuple[int, SlotAssignment]]:
    slots = [
        (endpoint_a, endpoint_b)
        for endpoint_a in range(len(coverage_a))
        for endpoint_b in range(len(coverage_b))
    ]
    table: Dict[Tuple[Tuple[int, ...], ...], Tuple[int, SlotAssignment]] = {}
    for values in itertools.product((NEGATIVE, 0, POSITIVE), repeat=len(slots)):
        net = [[0] * num_parts_b for _ in range(num_parts_a)]
        used: List[Tuple[int, int, int]] = []
        for slot_index, sign in enumerate(values):
            if sign == 0:
                continue
            endpoint_a, endpoint_b = slots[slot_index]
            used.append((endpoint_a, endpoint_b, sign))
            for row in coverage_a[endpoint_a]:
                for col in coverage_b[endpoint_b]:
                    net[row][col] += sign
        if any(entry not in (0, 1) for row in net for entry in row):
            continue
        targets = tuple(tuple(row) for row in net)
        cost = len(used)
        existing = table.get(targets)
        if existing is None or cost < existing[0]:
            table[targets] = (cost, tuple(used))
    return table


# ----------------------------------------------------------------------
# Heuristic pattern family for large panels
# ----------------------------------------------------------------------
def _realize_cross_pattern(
    targets: Sequence[Sequence[int]],
    panel_a: "Panel",
    panel_b: "Panel",
) -> Tuple[int, SlotAssignment]:
    """A valid (not necessarily optimal) blanket realization of one 0/1 pattern.

    Allowed blanket endpoints are the panel tops (covering every part) and
    the individual parts, so the candidate realizations are cell-wise
    edges, a full blanket with cell-wise negations, and row/column-wise
    blankets with cell-wise fixes; the cheapest of those is returned.
    """
    num_a, num_b = len(panel_a.parts), len(panel_b.parts)

    def row_endpoint(index: int) -> int:
        return index + 1 if panel_a.has_distinct_top else index

    def col_endpoint(index: int) -> int:
        return index + 1 if panel_b.has_distinct_top else index

    all_a = 0  # Endpoint 0 always covers every part of its panel.
    all_b = 0
    ones = [(i, j) for i in range(num_a) for j in range(num_b) if targets[i][j] == 1]
    zeros = [(i, j) for i in range(num_a) for j in range(num_b) if targets[i][j] == 0]

    candidates: List[List[Tuple[int, int, int]]] = []
    # Cell-wise positive blankets on every 1-block.
    candidates.append([(row_endpoint(i), col_endpoint(j), POSITIVE) for i, j in ones])
    # One full blanket plus cell-wise negations of every 0-block.
    candidates.append(
        [(all_a, all_b, POSITIVE)] + [(row_endpoint(i), col_endpoint(j), NEGATIVE) for i, j in zeros]
    )
    # Row-wise: blanket dense rows, list sparse rows cell by cell.
    row_plan: List[Tuple[int, int, int]] = []
    for i in range(num_a):
        row_ones = [j for j in range(num_b) if targets[i][j] == 1]
        row_zeros = [j for j in range(num_b) if targets[i][j] == 0]
        if len(row_ones) > 1 + len(row_zeros):
            row_plan.append((row_endpoint(i), all_b, POSITIVE))
            row_plan.extend((row_endpoint(i), col_endpoint(j), NEGATIVE) for j in row_zeros)
        else:
            row_plan.extend((row_endpoint(i), col_endpoint(j), POSITIVE) for j in row_ones)
    candidates.append(row_plan)
    # Column-wise, symmetric to the row-wise plan.
    col_plan: List[Tuple[int, int, int]] = []
    for j in range(num_b):
        col_ones = [i for i in range(num_a) if targets[i][j] == 1]
        col_zeros = [i for i in range(num_a) if targets[i][j] == 0]
        if len(col_ones) > 1 + len(col_zeros):
            col_plan.append((all_a, col_endpoint(j), POSITIVE))
            col_plan.extend((row_endpoint(i), col_endpoint(j), NEGATIVE) for i in col_zeros)
        else:
            col_plan.extend((row_endpoint(i), col_endpoint(j), POSITIVE) for i in col_ones)
    candidates.append(col_plan)

    best = min(candidates, key=len)
    return len(best), tuple(best)


def _heuristic_cross_table(
    panel_a: "Panel",
    panel_b: "Panel",
    present: Sequence[Sequence[int]],
    totals: Sequence[Sequence[int]],
) -> Dict[Tuple[Tuple[int, ...], ...], Tuple[int, SlotAssignment]]:
    """Candidate coverage patterns (with realizations) for oversized panels.

    Instead of every achievable 0/1 pattern, only a structured family is
    considered: all-zero, all-one, and the per-block majority pattern.
    Every candidate is valid (corrections repair any block exactly), so
    losslessness is unaffected — only local optimality is relaxed, in the
    same spirit as the paper's own locality restriction.
    """
    num_a, num_b = len(panel_a.parts), len(panel_b.parts)
    zero = tuple(tuple(0 for _ in range(num_b)) for _ in range(num_a))
    ones = tuple(tuple(1 for _ in range(num_b)) for _ in range(num_a))
    majority = tuple(
        tuple(
            1 if totals[i][j] - present[i][j] < present[i][j] else 0
            for j in range(num_b)
        )
        for i in range(num_a)
    )
    table: Dict[Tuple[Tuple[int, ...], ...], Tuple[int, SlotAssignment]] = {}
    for pattern in (zero, ones, majority):
        if pattern in table:
            continue
        table[pattern] = _realize_cross_pattern(pattern, panel_a, panel_b)
    return table


def _realize_intra_pattern(
    targets: Sequence[int], num_blocks: int
) -> Tuple[int, SlotAssignment]:
    """A valid realization of one intra-panel 0/1 pattern (full blanket or per-block edges)."""
    ones = [index for index in range(num_blocks) if targets[index] == 1]
    zeros = [index for index in range(num_blocks) if targets[index] == 0]
    cellwise = [(index + 1, 0, POSITIVE) for index in ones]
    full = [(0, 0, POSITIVE)] + [(index + 1, 0, NEGATIVE) for index in zeros]
    best = cellwise if len(cellwise) <= len(full) else full
    return len(best), tuple(best)


def _heuristic_intra_table(
    blocks: Sequence[Tuple[int, int]],
    present: Dict[Tuple[int, int], int],
    totals: Dict[Tuple[int, int], int],
) -> Dict[Tuple[int, ...], Tuple[int, SlotAssignment]]:
    """Candidate intra-panel patterns for merged supernodes with many parts."""
    num_blocks = len(blocks)
    zero = tuple(0 for _ in range(num_blocks))
    ones = tuple(1 for _ in range(num_blocks))
    majority = tuple(
        1 if totals[block] - present[block] < present[block] else 0 for block in blocks
    )
    table: Dict[Tuple[int, ...], Tuple[int, SlotAssignment]] = {}
    for pattern in (zero, ones, majority):
        if pattern in table:
            continue
        table[pattern] = _realize_intra_pattern(pattern, num_blocks)
    return table


# ----------------------------------------------------------------------
# Block statistics — dense integer-id fast paths
# ----------------------------------------------------------------------
# On the dense substrate a supernode's leaf ids double as node ids, so
# block statistics reduce to set intersections between int-id neighbor
# sets and memoized leaf-id tuples — no per-neighbor ancestor walks
# (``contains_subnode``) and no label→leaf resolution on the way back.
# The produced counts and (unordered) pair sets are identical to the
# label path; only the representation of the work changes.

def _dense_count_between(dense: DenseAdjacency, hierarchy: Hierarchy,
                         first: int, second: int) -> int:
    """Subedges between two disjoint supernodes, by leaf-id intersection."""
    leaves_first = hierarchy.leaf_id_view(first)
    leaves_second = hierarchy.leaf_id_view(second)
    if len(leaves_first) > len(leaves_second):
        leaves_first, leaves_second = leaves_second, leaves_first
    second_set = set(leaves_second)
    neighbors = dense.neighbors
    count = 0
    for u in leaves_first:
        count += len(neighbors[u] & second_set)
    return count


def _dense_count_within(dense: DenseAdjacency, hierarchy: Hierarchy, supernode: int) -> int:
    """Subedges inside one supernode, by leaf-id intersection."""
    members = hierarchy.leaf_id_view(supernode)
    member_set = set(members)
    neighbors = dense.neighbors
    count = 0
    for u in members:
        count += len(neighbors[u] & member_set)
    return count // 2


def _dense_present_pairs_between(
    dense: DenseAdjacency, hierarchy: Hierarchy, first: int, second: int
) -> List[Tuple[int, int]]:
    """Actual subedges between two disjoint supernodes as leaf-id pairs."""
    leaves_first = hierarchy.leaf_id_view(first)
    leaves_second = hierarchy.leaf_id_view(second)
    swapped = len(leaves_first) > len(leaves_second)
    if swapped:
        leaves_first, leaves_second = leaves_second, leaves_first
    second_set = set(leaves_second)
    neighbors = dense.neighbors
    pairs: List[Tuple[int, int]] = []
    for u in leaves_first:
        for v in neighbors[u] & second_set:
            pairs.append((v, u) if swapped else (u, v))
    return pairs


def _dense_missing_pairs_between(
    dense: DenseAdjacency, hierarchy: Hierarchy, first: int, second: int
) -> List[Tuple[int, int]]:
    """Non-adjacent leaf-id pairs between two disjoint supernodes."""
    leaves_second = hierarchy.leaf_id_view(second)
    neighbors = dense.neighbors
    pairs: List[Tuple[int, int]] = []
    for u in hierarchy.leaf_id_view(first):
        neighbor_set = neighbors[u]
        for v in leaves_second:
            if v not in neighbor_set:
                pairs.append((u, v))
    return pairs


def _dense_present_pairs_within(
    dense: DenseAdjacency, hierarchy: Hierarchy, supernode: int
) -> List[Tuple[int, int]]:
    """Subedges inside one supernode as leaf-id pairs (each listed once)."""
    members = hierarchy.leaf_id_view(supernode)
    member_set = set(members)
    neighbors = dense.neighbors
    pairs: List[Tuple[int, int]] = []
    for u in members:
        for v in neighbors[u] & member_set:
            if u < v:
                pairs.append((u, v))
    return pairs


def _dense_missing_pairs_within(
    dense: DenseAdjacency, hierarchy: Hierarchy, supernode: int
) -> List[Tuple[int, int]]:
    """Non-adjacent leaf-id pairs inside one supernode."""
    members = hierarchy.leaf_id_view(supernode)
    neighbors = dense.neighbors
    pairs: List[Tuple[int, int]] = []
    for i in range(len(members)):
        neighbor_set = neighbors[members[i]]
        for j in range(i + 1, len(members)):
            if members[j] not in neighbor_set:
                pairs.append((members[i], members[j]))
    return pairs


# ----------------------------------------------------------------------
# Block statistics — label paths
# ----------------------------------------------------------------------
def count_edges_between(graph: Graph, hierarchy: Hierarchy, first: int, second: int) -> int:
    """Number of subedges between the leaf sets of two disjoint supernodes."""
    if hierarchy.size(first) > hierarchy.size(second):
        first, second = second, first
    count = 0
    for subnode in hierarchy.leaf_subnodes(first):
        for neighbor in graph.neighbor_set(subnode):
            if hierarchy.contains_subnode(second, neighbor):
                count += 1
    return count


def present_pairs_between(
    graph: Graph, hierarchy: Hierarchy, first: int, second: int
) -> List[Tuple[Subnode, Subnode]]:
    """Actual subedges between the leaf sets of two disjoint supernodes."""
    swapped = hierarchy.size(first) > hierarchy.size(second)
    if swapped:
        first, second = second, first
    pairs: List[Tuple[Subnode, Subnode]] = []
    for subnode in hierarchy.leaf_subnodes(first):
        for neighbor in graph.neighbor_set(subnode):
            if hierarchy.contains_subnode(second, neighbor):
                pairs.append((neighbor, subnode) if swapped else (subnode, neighbor))
    return pairs


def missing_pairs_between(
    graph: Graph, hierarchy: Hierarchy, first: int, second: int
) -> List[Tuple[Subnode, Subnode]]:
    """Non-adjacent subnode pairs between the leaf sets of two disjoint supernodes."""
    pairs: List[Tuple[Subnode, Subnode]] = []
    second_leaves = hierarchy.leaf_subnodes(second)
    for u in hierarchy.leaf_subnodes(first):
        neighbor_set = graph.neighbor_set(u)
        for v in second_leaves:
            if v not in neighbor_set:
                pairs.append((u, v))
    return pairs


# ----------------------------------------------------------------------
# Planner
# ----------------------------------------------------------------------
def plan_cross_encoding(
    graph: Graph,
    hierarchy: Hierarchy,
    panel_a: Panel,
    panel_b: Panel,
    *,
    use_memo: bool = True,
    dense: Optional[DenseAdjacency] = None,
) -> EncodingPlan:
    """Best local encoding of the subedges between two disjoint panels.

    The returned plan exactly reproduces the adjacency between the leaf
    sets of ``panel_a.top`` and ``panel_b.top`` when applied to a summary
    from which all existing superedges between the two trees have been
    removed.  With ``dense`` supplied, block statistics run on leaf-id
    set intersections instead of per-neighbor ancestor walks.
    """
    if dense is not None:
        present = [
            [_dense_count_between(dense, hierarchy, part_a, part_b)
             for part_b in panel_b.parts]
            for part_a in panel_a.parts
        ]
    else:
        present = [
            [count_edges_between(graph, hierarchy, part_a, part_b) for part_b in panel_b.parts]
            for part_a in panel_a.parts
        ]
    totals = [
        [size_a * size_b for size_b in panel_b.sizes]
        for size_a in panel_a.sizes
    ]
    coverage_a = tuple(panel_a.endpoint_coverage())
    coverage_b = tuple(panel_b.endpoint_coverage())
    num_parts_b = len(panel_b.parts)
    num_slots = len(coverage_a) * len(coverage_b)
    if num_slots > _MAX_EXACT_SLOTS:
        # Too many blanket slots for the exhaustive search; fall back to the
        # structured candidate family (valid but possibly sub-optimal).
        entries = _enrich_cross_entries(
            _heuristic_cross_table(panel_a, panel_b, present, totals), num_parts_b
        )
    elif use_memo:
        entries = _pattern_entries(
            coverage_a, coverage_b, len(panel_a.parts), num_parts_b
        )
    else:
        entries = _enrich_cross_entries(
            _solve_pattern_table(coverage_a, coverage_b, len(panel_a.parts), num_parts_b),
            num_parts_b,
        )

    present_flat = [value for row in present for value in row]
    totals_flat = [value for row in totals for value in row]
    best_entry: Optional[CrossEntry] = None
    best_cost = 0
    for entry in entries:
        cost = entry[1]
        for index in entry[3]:
            cost += totals_flat[index] - present_flat[index]
        for index in entry[4]:
            cost += present_flat[index]
        if best_entry is None or cost < best_cost:
            best_entry = entry
            best_cost = cost
    if best_entry is None:
        # The all-zero pattern is always in the table, so this cannot happen;
        # kept as a defensive fallback for exotic panel shapes.
        return EncodingPlan(
            cost=sum(present_flat),
            positive_blocks=[
                (index // num_parts_b, index % num_parts_b)
                for index, value in enumerate(present_flat)
                if value > 0
            ],
        )
    endpoints_a = panel_a.endpoints()
    endpoints_b = panel_b.endpoints()
    _targets, _slot_cost, assignment, ones_idx, zeros_idx = best_entry
    return EncodingPlan(
        cost=best_cost,
        superedges=[
            (endpoints_a[endpoint_a], endpoints_b[endpoint_b], sign)
            for endpoint_a, endpoint_b, sign in assignment
        ],
        positive_blocks=[
            (index // num_parts_b, index % num_parts_b)
            for index in zeros_idx
            if present_flat[index] > 0
        ],
        negative_blocks=[
            (index // num_parts_b, index % num_parts_b)
            for index in ones_idx
            if totals_flat[index] > present_flat[index]
        ],
    )


def apply_cross_plan(
    plan: EncodingPlan,
    graph: Graph,
    hierarchy: Hierarchy,
    panel_a: Panel,
    panel_b: Panel,
    add_superedge,
    dense: Optional[DenseAdjacency] = None,
) -> None:
    """Materialize ``plan`` by calling ``add_superedge(x, y, sign)``.

    Blanket edges come first, then the per-block leaf corrections.  The
    caller is responsible for having removed every pre-existing superedge
    between the two trees.  On the dense path the correction pairs are
    already leaf ids, so no label→leaf resolution happens here.
    """
    for x, y, sign in plan.superedges:
        add_superedge(x, y, sign)
    if dense is not None:
        for row, col in plan.positive_blocks:
            for u, v in _dense_present_pairs_between(
                    dense, hierarchy, panel_a.parts[row], panel_b.parts[col]):
                add_superedge(u, v, POSITIVE)
        for row, col in plan.negative_blocks:
            for u, v in _dense_missing_pairs_between(
                    dense, hierarchy, panel_a.parts[row], panel_b.parts[col]):
                add_superedge(u, v, NEGATIVE)
        return
    for row, col in plan.positive_blocks:
        for u, v in present_pairs_between(graph, hierarchy, panel_a.parts[row], panel_b.parts[col]):
            add_superedge(hierarchy.leaf_of(u), hierarchy.leaf_of(v), POSITIVE)
    for row, col in plan.negative_blocks:
        for u, v in missing_pairs_between(graph, hierarchy, panel_a.parts[row], panel_b.parts[col]):
            add_superedge(hierarchy.leaf_of(u), hierarchy.leaf_of(v), NEGATIVE)


# ----------------------------------------------------------------------
# Intra-tree (within one merged supernode) encoding
# ----------------------------------------------------------------------
@lru_cache(maxsize=None)
def _intra_pattern_table(
    num_parts: int,
) -> Dict[Tuple[int, ...], Tuple[int, SlotAssignment]]:
    """Optimal blanket assignments for intra-supernode coverage patterns.

    The merged supernode ``M`` with parts ``p_0 .. p_{k-1}`` has blocks
    for every unordered part pair (including the diagonal).  Endpoint 0
    is the self-loop on ``M`` (covering every block); the remaining
    endpoints are the part pairs themselves.  Targets are flattened in
    the order produced by :func:`_intra_blocks`.
    """
    blocks = _intra_blocks(num_parts)
    endpoints: List[Tuple[Tuple[int, int], ...]] = [tuple(blocks)]
    endpoints.extend((block,) for block in blocks)
    table: Dict[Tuple[int, ...], Tuple[int, SlotAssignment]] = {}
    for values in itertools.product((NEGATIVE, 0, POSITIVE), repeat=len(endpoints)):
        net = {block: 0 for block in blocks}
        used: List[Tuple[int, int, int]] = []
        for endpoint_index, sign in enumerate(values):
            if sign == 0:
                continue
            used.append((endpoint_index, 0, sign))
            for block in endpoints[endpoint_index]:
                net[block] += sign
        if any(value not in (0, 1) for value in net.values()):
            continue
        targets = tuple(net[block] for block in blocks)
        cost = len(used)
        existing = table.get(targets)
        if existing is None or cost < existing[0]:
            table[targets] = (cost, tuple(used))
    return table


def _intra_blocks(num_parts: int) -> List[Tuple[int, int]]:
    """Unordered part pairs (diagonal included) in a fixed order."""
    return [(i, j) for i in range(num_parts) for j in range(i, num_parts)]


# A flattened intra-table entry: (slot cost, assignment, indices of the
# 1-blocks, indices of the 0-blocks) over the :func:`_intra_blocks` order.
IntraEntry = Tuple[int, SlotAssignment, Tuple[int, ...], Tuple[int, ...]]


def _enrich_intra_entries(
    table: Dict[Tuple[int, ...], Tuple[int, SlotAssignment]]
) -> List[IntraEntry]:
    """Flatten an intra-pattern table for the per-merge cost evaluation."""
    entries: List[IntraEntry] = []
    for targets, (slot_cost, assignment) in table.items():
        ones = tuple(index for index, value in enumerate(targets) if value == 1)
        zeros = tuple(index for index, value in enumerate(targets) if value != 1)
        entries.append((slot_cost, assignment, ones, zeros))
    return entries


@lru_cache(maxsize=None)
def _intra_pattern_entries(num_parts: int) -> List[IntraEntry]:
    """Memoized flattened view of :func:`_intra_pattern_table`."""
    return _enrich_intra_entries(_intra_pattern_table(num_parts))


def count_edges_within(graph: Graph, hierarchy: Hierarchy, supernode: int) -> int:
    """Number of subedges with both endpoints inside one supernode."""
    members = hierarchy.leaf_subnodes(supernode)
    member_set = set(members)
    count = 0
    for u in members:
        for neighbor in graph.neighbor_set(u):
            if neighbor in member_set:
                count += 1
    return count // 2


def present_pairs_within(
    graph: Graph, hierarchy: Hierarchy, supernode: int
) -> List[Tuple[Subnode, Subnode]]:
    """Subedges with both endpoints inside one supernode (each listed once)."""
    members = hierarchy.leaf_subnodes(supernode)
    member_set = set(members)
    pairs: List[Tuple[Subnode, Subnode]] = []
    seen: set = set()
    for u in members:
        for neighbor in graph.neighbor_set(u):
            if neighbor in member_set:
                key = (u, neighbor) if repr(u) <= repr(neighbor) else (neighbor, u)
                if key not in seen:
                    seen.add(key)
                    pairs.append(key)
    return pairs


def missing_pairs_within(
    graph: Graph, hierarchy: Hierarchy, supernode: int
) -> List[Tuple[Subnode, Subnode]]:
    """Non-adjacent subnode pairs inside one supernode."""
    members = hierarchy.leaf_subnodes(supernode)
    pairs: List[Tuple[Subnode, Subnode]] = []
    for i in range(len(members)):
        neighbor_set = graph.neighbor_set(members[i])
        for j in range(i + 1, len(members)):
            if members[j] not in neighbor_set:
                pairs.append((members[i], members[j]))
    return pairs


@dataclass
class IntraEncodingPlan:
    """Plan for re-encoding every subedge inside one merged supernode.

    ``superedges`` reference the merged supernode (self-loop) and/or its
    parts; ``positive_blocks``/``negative_blocks`` are part pairs
    (diagonal included) whose present/missing subedges must be added as
    leaf p/n-edges.
    """

    cost: int
    superedges: List[Tuple[int, int, int]] = field(default_factory=list)
    positive_blocks: List[Tuple[int, int]] = field(default_factory=list)
    negative_blocks: List[Tuple[int, int]] = field(default_factory=list)


def plan_intra_encoding(
    graph: Graph,
    hierarchy: Hierarchy,
    merged: int,
    panel: Panel,
    *,
    use_memo: bool = True,
    dense: Optional[DenseAdjacency] = None,
) -> IntraEncodingPlan:
    """Best wholesale re-encoding of the subedges inside ``merged``.

    Unlike :func:`plan_cross_encoding`, this plan replaces the intra-tree
    encodings of the parts as well — it is what turns a merged clique or
    dense community into a single self-loop p-edge plus a few negative
    corrections.
    """
    parts = panel.parts
    blocks = _intra_blocks(len(parts))
    present: Dict[Tuple[int, int], int] = {}
    totals: Dict[Tuple[int, int], int] = {}
    for i, j in blocks:
        if i == j:
            size = panel.sizes[i]
            if dense is not None:
                present[(i, j)] = _dense_count_within(dense, hierarchy, parts[i])
            else:
                present[(i, j)] = count_edges_within(graph, hierarchy, parts[i])
            totals[(i, j)] = size * (size - 1) // 2
        else:
            if dense is not None:
                present[(i, j)] = _dense_count_between(dense, hierarchy, parts[i], parts[j])
            else:
                present[(i, j)] = count_edges_between(graph, hierarchy, parts[i], parts[j])
            totals[(i, j)] = panel.sizes[i] * panel.sizes[j]

    if 1 + len(blocks) > _MAX_EXACT_SLOTS:
        # Merged supernodes with many direct children have too many block
        # endpoints for the exhaustive table; use the candidate family.
        entries = _enrich_intra_entries(_heuristic_intra_table(blocks, present, totals))
    elif use_memo:
        entries = _intra_pattern_entries(len(parts))
    else:
        entries = _enrich_intra_entries(_intra_pattern_table.__wrapped__(len(parts)))

    present_flat = [present[block] for block in blocks]
    totals_flat = [totals[block] for block in blocks]
    best_entry: Optional[IntraEntry] = None
    best_cost = 0
    for entry in entries:
        cost = entry[0]
        for index in entry[2]:
            cost += totals_flat[index] - present_flat[index]
        for index in entry[3]:
            cost += present_flat[index]
        if best_entry is None or cost < best_cost:
            best_entry = entry
            best_cost = cost
    if best_entry is None:
        return IntraEncodingPlan(cost=sum(present_flat),
                                 positive_blocks=[b for b in blocks if present[b] > 0])

    endpoints: List[Tuple[int, int]] = [(merged, merged)]
    for i, j in blocks:
        endpoints.append((parts[i], parts[j]))
    _slot_cost, assignment, ones_idx, zeros_idx = best_entry
    return IntraEncodingPlan(
        cost=best_cost,
        superedges=[
            (endpoints[endpoint_index][0], endpoints[endpoint_index][1], sign)
            for endpoint_index, _unused, sign in assignment
        ],
        positive_blocks=[
            blocks[index] for index in zeros_idx if present_flat[index] > 0
        ],
        negative_blocks=[
            blocks[index] for index in ones_idx if totals_flat[index] > present_flat[index]
        ],
    )


def apply_intra_plan(
    plan: IntraEncodingPlan,
    graph: Graph,
    hierarchy: Hierarchy,
    panel: Panel,
    add_superedge,
    dense: Optional[DenseAdjacency] = None,
) -> None:
    """Materialize an intra-supernode plan via ``add_superedge(x, y, sign)``."""
    for x, y, sign in plan.superedges:
        add_superedge(x, y, sign)
    if dense is not None:
        for i, j in plan.positive_blocks:
            if i == j:
                id_pairs = _dense_present_pairs_within(dense, hierarchy, panel.parts[i])
            else:
                id_pairs = _dense_present_pairs_between(
                    dense, hierarchy, panel.parts[i], panel.parts[j])
            for u, v in id_pairs:
                add_superedge(u, v, POSITIVE)
        for i, j in plan.negative_blocks:
            if i == j:
                id_pairs = _dense_missing_pairs_within(dense, hierarchy, panel.parts[i])
            else:
                id_pairs = _dense_missing_pairs_between(
                    dense, hierarchy, panel.parts[i], panel.parts[j])
            for u, v in id_pairs:
                add_superedge(u, v, NEGATIVE)
        return
    for i, j in plan.positive_blocks:
        if i == j:
            pairs = present_pairs_within(graph, hierarchy, panel.parts[i])
        else:
            pairs = present_pairs_between(graph, hierarchy, panel.parts[i], panel.parts[j])
        for u, v in pairs:
            add_superedge(hierarchy.leaf_of(u), hierarchy.leaf_of(v), POSITIVE)
    for i, j in plan.negative_blocks:
        if i == j:
            pairs = missing_pairs_within(graph, hierarchy, panel.parts[i])
        else:
            pairs = missing_pairs_between(graph, hierarchy, panel.parts[i], panel.parts[j])
        for u, v in pairs:
            add_superedge(hierarchy.leaf_of(u), hierarchy.leaf_of(v), NEGATIVE)


def memo_table_sizes() -> Dict[str, int]:
    """Statistics of the memoized pattern tables (diagnostics/tests)."""
    cross_info = _pattern_table.cache_info()
    intra_info = _intra_pattern_table.cache_info()
    return {
        "cross_entries": cross_info.currsize,
        "cross_hits": cross_info.hits,
        "cross_misses": cross_info.misses,
        "intra_entries": intra_info.currsize,
        "intra_hits": intra_info.hits,
        "intra_misses": intra_info.misses,
    }
