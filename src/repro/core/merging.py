"""The merging step of SLUGGER (Algorithm 2).

Within each candidate root set, SLUGGER repeatedly picks a random root
``A``, finds the partner ``B`` with the largest saving, and — if the
saving clears the iteration's threshold θ(t) — merges the two trees and
re-encodes the superedges they are involved in:

* *Case 1*: the subedges between the two merged trees are re-encoded over
  the panel ``{A, children(A)} × {B, children(B)}``.
* *Case 2*: for every adjacent root tree ``C``, the subedges between the
  merged tree and ``C`` are re-encoded over ``{A∪B, A, B} × {C,
  children(C)}`` whenever that lowers the cost.

Both cases use the memoized local encoder and therefore cost O(1) pattern
search plus the work of counting/listing the affected subedges.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.config import SluggerConfig
from repro.core.encoder import (
    Panel,
    apply_cross_plan,
    apply_intra_plan,
    plan_cross_encoding,
    plan_intra_encoding,
)
from repro.core.saving import best_partner
from repro.core.state import SluggerState
from repro.exceptions import SummaryInvariantError
from repro.utils.rng import SeedLike, ensure_rng

__all__ = [
    "apply_merge_trace",
    "decide_merges",
    "merge_and_update",
    "process_candidate_set",
]


def merge_and_update(
    state: SluggerState, root_a: int, root_b: int, config: SluggerConfig
) -> int:
    """Merge two root supernodes and locally re-encode the affected superedges.

    Returns the id of the new root supernode.  Exactness is preserved:
    every re-encoding removes all superedges between the affected trees
    and replaces them with a plan that reproduces the same subedges.
    """
    graph = state.graph
    hierarchy = state.summary.hierarchy
    use_memo = config.use_memoized_encoder
    dense = state.dense

    # Case 1: re-encode the subedges between the two trees being merged,
    # while they are still separate roots (the panel endpoints are the two
    # roots and their direct children; the new root is not needed because
    # a blanket on it would also disturb the intra-tree encodings).
    cross_current = state.pn_cost_between(root_a, root_b)
    if cross_current > 0:
        panel_a = Panel(hierarchy, root_a)
        panel_b = Panel(hierarchy, root_b)
        plan = plan_cross_encoding(graph, hierarchy, panel_a, panel_b,
                                   use_memo=use_memo, dense=dense)
        if plan.cost < cross_current:
            state.remove_all_between(root_a, root_b)
            apply_cross_plan(
                plan, graph, hierarchy, panel_a, panel_b,
                lambda x, y, sign: state.add_superedge(root_a, root_b, x, y, sign),
                dense=dense,
            )

    merged = state.merge_roots(root_a, root_b)

    # Case 1 (continued): consider re-encoding the whole inside of the
    # merged tree at once — a self-loop p-edge on the new root plus a few
    # corrections is what collapses cliques and dense communities.
    intra_current = state.pn_cost_between(merged, merged)
    if intra_current > 1:
        panel_merged = Panel(hierarchy, merged)
        intra_plan = plan_intra_encoding(
            graph, hierarchy, merged, panel_merged, use_memo=use_memo, dense=dense
        )
        if intra_plan.cost < intra_current:
            state.remove_all_between(merged, merged)
            apply_intra_plan(
                intra_plan, graph, hierarchy, panel_merged,
                lambda x, y, sign: state.add_superedge(merged, merged, x, y, sign),
                dense=dense,
            )

    # Case 2: the new root can now act as a blanket endpoint towards every
    # adjacent root tree; re-encode those pairs when it helps.
    panel_merged = Panel(hierarchy, merged)
    for other in list(state.pn_count[merged]):
        if other == merged:
            continue
        current = state.pn_count[merged][other]
        if current < 2:
            # A pair already encoded with a single superedge cannot improve.
            continue
        panel_other = Panel(hierarchy, other)
        plan = plan_cross_encoding(graph, hierarchy, panel_merged, panel_other,
                                   use_memo=use_memo, dense=dense)
        if plan.cost < current:
            state.remove_all_between(merged, other)
            apply_cross_plan(
                plan, graph, hierarchy, panel_merged, panel_other,
                lambda x, y, sign: state.add_superedge(merged, other, x, y, sign),
                dense=dense,
            )
    return merged


def process_candidate_set(
    state: SluggerState,
    candidate_set: Iterable[int],
    threshold: float,
    config: SluggerConfig,
    seed: SeedLike = None,
    trace: Optional[List[Tuple[int, int]]] = None,
) -> int:
    """Run Algorithm 2 on one candidate root set; returns the number of merges.

    A position map (root id → queue slot) mirrors the queue so replacing a
    merged partner is O(1) instead of an O(n) ``list.index`` scan, and a
    partner that is unexpectedly absent raises a clear invariant error
    instead of ``ValueError``.

    With ``trace`` supplied, every performed merge is appended to it as an
    ``(a, b)`` pair in *trace encoding*: a non-negative value is a root id
    that existed when the call started, ``-(j + 1)`` refers to the result
    of the j-th merge recorded earlier in the same trace.  The encoding is
    position-independent — replaying the trace with
    :func:`apply_merge_trace` against a state whose visible neighborhood
    matches reproduces the exact same merges even though the replayed
    state assigns different merged-supernode ids.
    """
    rng = ensure_rng(seed)
    # dict.fromkeys dedups while keeping order: a duplicated root must get
    # one queue slot, or the position map would go out of sync with it.
    queue: List[int] = list(dict.fromkeys(
        root for root in candidate_set if root in state.roots
    ))
    position: Dict[int, int] = {root: index for index, root in enumerate(queue)}
    # Trace encoding of every root currently in play; merged roots get
    # negative codes so replays are independent of the id counter.
    code_of: Optional[Dict[int, int]] = None
    if trace is not None:
        code_of = {root: root for root in queue}
    merges = 0
    while len(queue) > 1:
        index = rng.randrange(len(queue))
        root_a = queue[index]
        del position[root_a]
        last = queue.pop()
        if index < len(queue):
            queue[index] = last
            position[last] = index
        value, root_b = best_partner(
            state, root_a, queue, height_bound=config.height_bound
        )
        if root_b < 0 or value < threshold:
            continue
        merged = merge_and_update(state, root_a, root_b, config)
        slot = position.pop(root_b, None)
        if slot is None:
            raise SummaryInvariantError(
                f"best_partner returned root {root_b}, which is not in the candidate queue"
            )
        queue[slot] = merged
        position[merged] = slot
        if code_of is not None:
            trace.append((code_of[root_a], code_of[root_b]))
            code_of[merged] = -(merges + 1)
        merges += 1
    return merges


def decide_merges(
    state: SluggerState,
    candidate_set: Iterable[int],
    threshold: float,
    config: SluggerConfig,
    seed: SeedLike = None,
) -> List[Tuple[int, int]]:
    """Decide one candidate set's merges; returns the merge trace (the *plan*).

    The decide half of the decide/apply split: it runs the full
    Algorithm-2 loop — partner search needs to observe each merge's
    effect on the group — so ``state`` is mutated and callers must hand
    in a disposable image (the execution layer forks the process, which
    makes the caller's own state an immutable snapshot).  The returned
    trace is id-independent (see :func:`process_candidate_set`) and can
    be replayed elsewhere with :func:`apply_merges`.

    Two parallel consumers exist: the optimistic decide phase (traces
    conflict-checked and possibly discarded at apply time) and the
    colored zero-threshold sweep of :mod:`repro.core.coloring`, whose
    footprint-disjoint classes let one forked worker decide several
    groups back-to-back on the same image with every trace staying
    exact.
    """
    trace: List[Tuple[int, int]] = []
    process_candidate_set(state, candidate_set, threshold, config, seed=seed,
                          trace=trace)
    return trace


def apply_merge_trace(
    state: SluggerState,
    trace: Iterable[Tuple[int, int]],
    config: SluggerConfig,
) -> int:
    """Replay a recorded merge trace against ``state``; returns the merge count.

    Trace entries use the encoding produced by :func:`process_candidate_set`
    (non-negative = pre-existing root id, ``-(j + 1)`` = result of the
    j-th replayed merge).  Replaying runs the full local re-encoding via
    :func:`merge_and_update`, so — provided the state visible to the
    merged trees matches the state the trace was decided against — the
    mutations are bit-identical to deciding and merging in one pass.
    """
    created: List[int] = []
    merges = 0
    for a_code, b_code in trace:
        root_a = created[-a_code - 1] if a_code < 0 else a_code
        root_b = created[-b_code - 1] if b_code < 0 else b_code
        created.append(merge_and_update(state, root_a, root_b, config))
        merges += 1
    return merges


#: The apply half of the decide/apply split (see :func:`decide_merges`).
apply_merges = apply_merge_trace
