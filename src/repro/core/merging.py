"""The merging step of SLUGGER (Algorithm 2).

Within each candidate root set, SLUGGER repeatedly picks a random root
``A``, finds the partner ``B`` with the largest saving, and — if the
saving clears the iteration's threshold θ(t) — merges the two trees and
re-encodes the superedges they are involved in:

* *Case 1*: the subedges between the two merged trees are re-encoded over
  the panel ``{A, children(A)} × {B, children(B)}``.
* *Case 2*: for every adjacent root tree ``C``, the subedges between the
  merged tree and ``C`` are re-encoded over ``{A∪B, A, B} × {C,
  children(C)}`` whenever that lowers the cost.

Both cases use the memoized local encoder and therefore cost O(1) pattern
search plus the work of counting/listing the affected subedges.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.core.config import SluggerConfig
from repro.core.encoder import (
    Panel,
    apply_cross_plan,
    apply_intra_plan,
    plan_cross_encoding,
    plan_intra_encoding,
)
from repro.core.saving import best_partner
from repro.core.state import SluggerState
from repro.exceptions import SummaryInvariantError
from repro.utils.rng import SeedLike, ensure_rng


def merge_and_update(
    state: SluggerState, root_a: int, root_b: int, config: SluggerConfig
) -> int:
    """Merge two root supernodes and locally re-encode the affected superedges.

    Returns the id of the new root supernode.  Exactness is preserved:
    every re-encoding removes all superedges between the affected trees
    and replaces them with a plan that reproduces the same subedges.
    """
    graph = state.graph
    hierarchy = state.summary.hierarchy
    use_memo = config.use_memoized_encoder
    dense = state.dense

    # Case 1: re-encode the subedges between the two trees being merged,
    # while they are still separate roots (the panel endpoints are the two
    # roots and their direct children; the new root is not needed because
    # a blanket on it would also disturb the intra-tree encodings).
    cross_current = state.pn_cost_between(root_a, root_b)
    if cross_current > 0:
        panel_a = Panel(hierarchy, root_a)
        panel_b = Panel(hierarchy, root_b)
        plan = plan_cross_encoding(graph, hierarchy, panel_a, panel_b,
                                   use_memo=use_memo, dense=dense)
        if plan.cost < cross_current:
            state.remove_all_between(root_a, root_b)
            apply_cross_plan(
                plan, graph, hierarchy, panel_a, panel_b,
                lambda x, y, sign: state.add_superedge(root_a, root_b, x, y, sign),
                dense=dense,
            )

    merged = state.merge_roots(root_a, root_b)

    # Case 1 (continued): consider re-encoding the whole inside of the
    # merged tree at once — a self-loop p-edge on the new root plus a few
    # corrections is what collapses cliques and dense communities.
    intra_current = state.pn_cost_between(merged, merged)
    if intra_current > 1:
        panel_merged = Panel(hierarchy, merged)
        intra_plan = plan_intra_encoding(
            graph, hierarchy, merged, panel_merged, use_memo=use_memo, dense=dense
        )
        if intra_plan.cost < intra_current:
            state.remove_all_between(merged, merged)
            apply_intra_plan(
                intra_plan, graph, hierarchy, panel_merged,
                lambda x, y, sign: state.add_superedge(merged, merged, x, y, sign),
                dense=dense,
            )

    # Case 2: the new root can now act as a blanket endpoint towards every
    # adjacent root tree; re-encode those pairs when it helps.
    panel_merged = Panel(hierarchy, merged)
    for other in list(state.pn_count[merged]):
        if other == merged:
            continue
        current = state.pn_count[merged][other]
        if current < 2:
            # A pair already encoded with a single superedge cannot improve.
            continue
        panel_other = Panel(hierarchy, other)
        plan = plan_cross_encoding(graph, hierarchy, panel_merged, panel_other,
                                   use_memo=use_memo, dense=dense)
        if plan.cost < current:
            state.remove_all_between(merged, other)
            apply_cross_plan(
                plan, graph, hierarchy, panel_merged, panel_other,
                lambda x, y, sign: state.add_superedge(merged, other, x, y, sign),
                dense=dense,
            )
    return merged


def process_candidate_set(
    state: SluggerState,
    candidate_set: Iterable[int],
    threshold: float,
    config: SluggerConfig,
    seed: SeedLike = None,
) -> int:
    """Run Algorithm 2 on one candidate root set; returns the number of merges.

    A position map (root id → queue slot) mirrors the queue so replacing a
    merged partner is O(1) instead of an O(n) ``list.index`` scan, and a
    partner that is unexpectedly absent raises a clear invariant error
    instead of ``ValueError``.
    """
    rng = ensure_rng(seed)
    # dict.fromkeys dedups while keeping order: a duplicated root must get
    # one queue slot, or the position map would go out of sync with it.
    queue: List[int] = list(dict.fromkeys(
        root for root in candidate_set if root in state.roots
    ))
    position: Dict[int, int] = {root: index for index, root in enumerate(queue)}
    merges = 0
    while len(queue) > 1:
        index = rng.randrange(len(queue))
        root_a = queue[index]
        del position[root_a]
        last = queue.pop()
        if index < len(queue):
            queue[index] = last
            position[last] = index
        value, root_b = best_partner(
            state, root_a, queue, height_bound=config.height_bound
        )
        if root_b < 0 or value < threshold:
            continue
        merged = merge_and_update(state, root_a, root_b, config)
        slot = position.pop(root_b, None)
        if slot is None:
            raise SummaryInvariantError(
                f"best_partner returned root {root_b}, which is not in the candidate queue"
            )
        queue[slot] = merged
        position[merged] = slot
        merges += 1
    return merges
