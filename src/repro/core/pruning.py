"""The pruning step of SLUGGER (Sect. III-B4, Algorithm 3).

After the merge phase, some supernodes no longer earn their keep: they
carry hierarchy edges without enabling any cheaper encoding.  Pruning
removes them without changing what the summary represents.  Three
substeps are applied (and can be repeated, since substep 3 may expose new
opportunities for substeps 1 and 2):

1. remove non-leaf supernodes with no incident p/n-edge, splicing their
   children up to their parent;
2. remove non-leaf root supernodes with exactly one incident non-loop
   p/n-edge, pushing that edge down to their children with the
   appropriate signs;
3. for every pair of root trees, fall back to the flat (Navlakha-model)
   encoding of the subedges between them whenever it is cheaper than the
   current hierarchical encoding.

All operations strictly decrease the encoding cost and preserve
losslessness; the latter is exercised by the property-based tests.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Set, Tuple

from repro.graphs.graph import Graph
from repro.model.summary import NEGATIVE, POSITIVE, HierarchicalSummary

__all__ = [
    "prune",
    "prune_edgeless_supernodes",
    "prune_single_edge_roots",
    "reencode_root_pairs_flat",
]

Subnode = Hashable
RootPair = Tuple[int, int]


def prune(graph: Graph, summary: HierarchicalSummary, rounds: int = 2) -> Dict[str, int]:
    """Run the pruning substeps in place; returns per-substep change counters.

    ``rounds`` bounds how many times the three substeps are repeated; the
    loop stops early once a full round changes nothing.
    """
    totals = {"substep1": 0, "substep2": 0, "substep3": 0}
    for _ in range(max(rounds, 0)):
        removed_silent = prune_edgeless_supernodes(summary)
        removed_single = prune_single_edge_roots(summary)
        reencoded = reencode_root_pairs_flat(graph, summary)
        totals["substep1"] += removed_silent
        totals["substep2"] += removed_single
        totals["substep3"] += reencoded
        if removed_silent == 0 and removed_single == 0 and reencoded == 0:
            break
    return totals


# ----------------------------------------------------------------------
# Substep 1
# ----------------------------------------------------------------------
def prune_edgeless_supernodes(summary: HierarchicalSummary) -> int:
    """Remove internal supernodes with no incident p/n-edge (Algorithm 3, step 1)."""
    hierarchy = summary.hierarchy
    removable = [
        node
        for node in hierarchy.supernodes()
        if not hierarchy.is_leaf(node) and summary.degree(node) == 0
    ]
    for node in removable:
        hierarchy.splice_out(node)
    return len(removable)


# ----------------------------------------------------------------------
# Substep 2
# ----------------------------------------------------------------------
def prune_single_edge_roots(summary: HierarchicalSummary) -> int:
    """Remove non-leaf roots with exactly one incident non-loop edge (step 2).

    The single edge ``(A, B)`` is replaced by edges between ``B`` and the
    children of ``A``: an existing opposite-sign edge cancels out and is
    removed, otherwise a same-sign edge is added.  The hierarchy edges of
    ``A`` disappear, so the total cost drops by at least one.
    """
    hierarchy = summary.hierarchy
    queue: List[int] = [root for root in hierarchy.roots() if not hierarchy.is_leaf(root)]
    removed = 0
    while queue:
        root = queue.pop()
        if not hierarchy.contains(root) or hierarchy.is_leaf(root) or not hierarchy.is_root(root):
            continue
        incident = summary.incident_edges(root)
        if len(incident) != 1:
            continue
        other, sign = incident[0]
        if other == root:
            continue  # A self-loop cannot be pushed down this way.
        if hierarchy.is_ancestor(root, other):
            continue  # Nested superedges are never produced, but stay safe.
        children = hierarchy.children(root)
        summary.remove_edge(root, other, sign)
        for child in children:
            if summary.has_p_edge(child, other) or summary.has_n_edge(child, other):
                opposite = NEGATIVE if sign == POSITIVE else POSITIVE
                if (sign == POSITIVE and summary.has_n_edge(child, other)) or (
                    sign == NEGATIVE and summary.has_p_edge(child, other)
                ):
                    summary.remove_edge(child, other, opposite)
                # A same-sign edge already provides the required coverage.
            else:
                summary.add_edge(child, other, sign)
        hierarchy.splice_out(root)
        removed += 1
        queue.extend(child for child in children if not hierarchy.is_leaf(child))
    return removed


# ----------------------------------------------------------------------
# Substep 3
# ----------------------------------------------------------------------
def reencode_root_pairs_flat(graph: Graph, summary: HierarchicalSummary) -> int:
    """Fall back to the flat-model encoding per root pair when cheaper (step 3).

    For each pair of root trees (and each single root tree) the flat model
    either lists the subedges individually or uses one superedge between
    the roots plus per-pair negative corrections; whichever of the two is
    cheaper is compared against the current hierarchical encoding of the
    pair and substituted when it wins.  Returns the number of re-encoded
    root pairs.
    """
    hierarchy = summary.hierarchy
    pair_edges = _superedges_by_root_pair(summary)
    pair_subedges = _subedges_by_root_pair(graph, summary)

    changed = 0
    for pair in set(pair_edges) | set(pair_subedges):
        root_a, root_b = pair
        present = pair_subedges.get(pair, [])
        num_present = len(present)
        current_cost = len(pair_edges.get(pair, ()))
        if root_a == root_b:
            size = hierarchy.size(root_a)
            possible = size * (size - 1) // 2
        else:
            possible = hierarchy.size(root_a) * hierarchy.size(root_b)
        if num_present == 0:
            flat_cost = 0
        else:
            flat_cost = min(num_present, 1 + possible - num_present)
        if flat_cost >= current_cost:
            continue
        # Remove the current encoding of this pair.
        for x, y, sign in pair_edges.get(pair, ()):
            summary.remove_edge(x, y, sign)
        # Apply the flat encoding.
        if num_present and 1 + possible - num_present < num_present:
            summary.add_p_edge(root_a, root_b)
            for u, v in _missing_pairs(graph, hierarchy, root_a, root_b):
                summary.add_n_edge(hierarchy.leaf_of(u), hierarchy.leaf_of(v))
        else:
            for u, v in present:
                summary.add_p_edge(hierarchy.leaf_of(u), hierarchy.leaf_of(v))
        changed += 1
    return changed


def _superedges_by_root_pair(
    summary: HierarchicalSummary,
) -> Dict[RootPair, List[Tuple[int, int, int]]]:
    """Index all p/n-edges by the (canonical) pair of root trees they connect."""
    hierarchy = summary.hierarchy
    root_cache: Dict[int, int] = {}

    def root_of(node: int) -> int:
        cached = root_cache.get(node)
        if cached is None:
            cached = hierarchy.root_of(node)
            root_cache[node] = cached
        return cached

    index: Dict[RootPair, List[Tuple[int, int, int]]] = {}
    for edges, sign in ((summary.p_edges(), POSITIVE), (summary.n_edges(), NEGATIVE)):
        for x, y in edges:
            pair = _ordered(root_of(x), root_of(y))
            index.setdefault(pair, []).append((x, y, sign))
    return index


def _subedges_by_root_pair(
    graph: Graph, summary: HierarchicalSummary
) -> Dict[RootPair, List[Tuple[Subnode, Subnode]]]:
    """Index all input subedges by the (canonical) pair of root trees they connect."""
    hierarchy = summary.hierarchy
    root_of_subnode: Dict[Subnode, int] = {}
    for subnode in hierarchy.subnodes():
        root_of_subnode[subnode] = hierarchy.root_of(hierarchy.leaf_of(subnode))
    index: Dict[RootPair, List[Tuple[Subnode, Subnode]]] = {}
    for u, v in graph.edges():
        pair = _ordered(root_of_subnode[u], root_of_subnode[v])
        index.setdefault(pair, []).append((u, v))
    return index


def _missing_pairs(
    graph: Graph, hierarchy, root_a: int, root_b: int
) -> List[Tuple[Subnode, Subnode]]:
    """Non-adjacent subnode pairs between (or within) the given root trees."""
    pairs: List[Tuple[Subnode, Subnode]] = []
    if root_a == root_b:
        members = hierarchy.leaf_subnodes(root_a)
        for i in range(len(members)):
            neighbor_set = graph.neighbor_set(members[i])
            for j in range(i + 1, len(members)):
                if members[j] not in neighbor_set:
                    pairs.append((members[i], members[j]))
        return pairs
    members_b = hierarchy.leaf_subnodes(root_b)
    for u in hierarchy.leaf_subnodes(root_a):
        neighbor_set = graph.neighbor_set(u)
        for v in members_b:
            if v not in neighbor_set:
                pairs.append((u, v))
    return pairs


def _ordered(a: int, b: int) -> RootPair:
    return (a, b) if a <= b else (b, a)
