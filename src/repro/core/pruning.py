"""The pruning step of SLUGGER (Sect. III-B4, Algorithm 3).

After the merge phase, some supernodes no longer earn their keep: they
carry hierarchy edges without enabling any cheaper encoding.  Pruning
removes them without changing what the summary represents.  Three
substeps are applied (and can be repeated, since substep 3 may expose new
opportunities for substeps 1 and 2):

1. remove non-leaf supernodes with no incident p/n-edge, splicing their
   children up to their parent;
2. remove non-leaf root supernodes with exactly one incident non-loop
   p/n-edge, pushing that edge down to their children with the
   appropriate signs;
3. for every pair of root trees, fall back to the flat (Navlakha-model)
   encoding of the subedges between them whenever it is cheaper than the
   current hierarchical encoding.

All operations strictly decrease the encoding cost and preserve
losslessness; the latter is exercised by the property-based tests.

Parallel pruning
----------------
Substep 3's per-pair decision (flat vs. hierarchical encoding) reads
only the immutable input graph, the hierarchy — which substep 3 never
mutates — and per-pair indexes built up front, so the decisions for
different pairs are fully independent.  :func:`reencode_root_pairs_flat`
exploits that with the same decide/apply split the merge phase uses:
workers (:func:`reencode_shard_worker`) return per-pair re-encode plans
for contiguous shards of the *sorted* pair list, and the parent applies
them serially in canonical pair order.  Because the plans are exact (no
state a worker reads is ever written during the substep), the result is
bit-identical to the serial path at any worker count.  Substeps 1 and 2
stay serial, but substep 1's candidate feed comes from the same sharded
scan machinery (:func:`prune_scan_worker`).
"""

from __future__ import annotations

import time
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.engine.execution import (
    ExecutionConfig,
    ProcessShardExecutor,
    executor_for,
    shard_bounds,
    worker_context,
)
from repro.graphs.graph import Graph
from repro.model.summary import NEGATIVE, POSITIVE, HierarchicalSummary

__all__ = [
    "prune",
    "prune_edgeless_supernodes",
    "prune_single_edge_roots",
    "prune_scan_worker",
    "reencode_root_pairs_flat",
    "reencode_shard_worker",
]

Subnode = Hashable
RootPair = Tuple[int, int]

#: A worker's verdict for one root pair: ``None`` (keep the hierarchical
#: encoding) or a plan — ``("blanket", n_edge_leaf_pairs)`` for the
#: superedge-plus-corrections form, ``("leaves", p_edge_leaf_pairs)``
#: for the individual-subedge form.
FlatPlan = Tuple[str, List[Tuple[int, int]]]


class _PruneContext:
    """Mutable worker context shared by the sharded pruning scans.

    One instance is registered with the prune loop's executor and
    refreshed in place each round (the forked snapshot is restarted
    between rounds, so workers always observe the current contents).
    """

    __slots__ = ("graph", "hierarchy", "summary", "scan_nodes", "pairs",
                 "pair_edges", "pair_subedges")

    def __init__(self, graph: Graph, summary: HierarchicalSummary) -> None:
        self.graph = graph
        self.summary = summary
        self.hierarchy = summary.hierarchy
        self.scan_nodes: List[int] = []
        self.pairs: List[RootPair] = []
        self.pair_edges: Dict[RootPair, List[Tuple[int, int, int]]] = {}
        self.pair_subedges: Dict[RootPair, List[Tuple[Subnode, Subnode]]] = {}


def _fresh_profile() -> Dict[str, Any]:
    return {
        "rounds": 0,
        "workers": 1,
        "parallel": False,
        "parallel_rounds": 0,
        "pairs_scanned": 0,
        "pairs_reencoded": 0,
        "edgeless_seconds": 0.0,
        "single_edge_seconds": 0.0,
        "reencode_seconds": 0.0,
        "reencode_index_seconds": 0.0,
        "reencode_decide_seconds": 0.0,
        "reencode_apply_seconds": 0.0,
    }


def prune(
    graph: Graph,
    summary: HierarchicalSummary,
    rounds: int = 2,
    execution: Optional[ExecutionConfig] = None,
    profile: Optional[Dict[str, Any]] = None,
) -> Dict[str, int]:
    """Run the pruning substeps in place; returns per-substep change counters.

    ``rounds`` bounds how many times the three substeps are repeated; the
    loop stops early once a full round changes nothing.

    ``execution`` distributes substep 3's per-pair decisions (and
    substep 1's candidate scan) over the sharded executor layer; the
    output is bit-identical to the serial path for any worker count.
    One executor is kept across the rounds loop (``executor_for``'s
    ``reuse`` hand-back), restarted between rounds so workers re-fork
    against the mutated summary instead of paying a full pool teardown
    and rebuild per round.

    ``profile``, when given, is filled in place with per-substep wall
    times and the serial-vs-parallel split (see
    :func:`repro.analysis.cost_breakdown.pruning_profile`).
    """
    totals = {"substep1": 0, "substep2": 0, "substep3": 0}
    timings = _fresh_profile()
    context = _PruneContext(graph, summary)
    executor = None
    try:
        for _ in range(max(rounds, 0)):
            previous = executor
            executor = executor_for(
                execution,
                max(summary.hierarchy.num_supernodes, 1),
                context=context,
                reuse=executor,
            )
            if previous is not None and previous is not executor:
                previous.close()
            timings["rounds"] += 1
            timings["workers"] = max(timings["workers"], executor.workers)
            started = time.perf_counter()
            removed_silent = prune_edgeless_supernodes(
                summary, execution=execution, executor=executor, context=context
            )
            mid = time.perf_counter()
            timings["edgeless_seconds"] += mid - started
            removed_single = prune_single_edge_roots(summary)
            ended = time.perf_counter()
            timings["single_edge_seconds"] += ended - mid
            reencoded = reencode_root_pairs_flat(
                graph,
                summary,
                execution=execution,
                executor=executor,
                context=context,
                profile=timings,
            )
            totals["substep1"] += removed_silent
            totals["substep2"] += removed_single
            totals["substep3"] += reencoded
            if removed_silent == 0 and removed_single == 0 and reencoded == 0:
                break
    finally:
        if executor is not None:
            executor.close()
    timings["parallel"] = timings["parallel_rounds"] > 0
    if profile is not None:
        profile.update(timings)
    return totals


def _use_sharded_scan(
    execution: Optional[ExecutionConfig], executor, items: int
) -> bool:
    """Whether a pruning scan over ``items`` should go through the pool.

    Process pools pay a re-fork per scan (the summary mutates between
    scans), so only scans big enough to clear the pruning floor are
    sharded; everything smaller runs inline on the identical code path.
    """
    return (
        execution is not None
        and isinstance(executor, ProcessShardExecutor)
        and executor.workers > 1
        and items >= max(execution.prune_parallel_min_pairs, 2)
    )


# ----------------------------------------------------------------------
# Substep 1
# ----------------------------------------------------------------------
def prune_scan_worker(bounds: Tuple[int, int]) -> List[int]:
    """Sharded candidate scan: edgeless internal supernodes in one id range.

    Reads the :class:`_PruneContext` (snapshot state only, no mutation,
    no locks) and returns, in scan order, the supernodes of
    ``scan_nodes[start:stop]`` that substep 1 should splice out.
    Chaining the shard results reproduces the serial scan exactly.
    """
    start, stop = bounds
    context = worker_context()
    hierarchy = context.hierarchy
    summary = context.summary
    scan_nodes = context.scan_nodes
    return [
        node
        for node in scan_nodes[start:stop]
        if not hierarchy.is_leaf(node) and summary.degree(node) == 0
    ]


def prune_edgeless_supernodes(
    summary: HierarchicalSummary,
    execution: Optional[ExecutionConfig] = None,
    executor=None,
    context: Optional[_PruneContext] = None,
) -> int:
    """Remove internal supernodes with no incident p/n-edge (Algorithm 3, step 1).

    The candidate scan is a pure read over the supernode list; with a
    parallel ``executor`` (plus its registered ``context``) it is fed
    from sharded :func:`prune_scan_worker` calls, and the splices are
    applied serially in scan order — splicing an edgeless supernode
    never changes another supernode's degree or leaf-ness, so the
    sharded feed is exact.
    """
    hierarchy = summary.hierarchy
    scan_nodes = hierarchy.supernodes()
    if context is not None and _use_sharded_scan(execution, executor, len(scan_nodes)):
        context.scan_nodes = scan_nodes
        bounds = shard_bounds(len(scan_nodes), executor.workers)
        removable: List[int] = []
        for shard in executor.map_shards(prune_scan_worker, bounds):
            removable.extend(shard)
        _drop_stale_fork(executor)
    else:
        removable = [
            node
            for node in scan_nodes
            if not hierarchy.is_leaf(node) and summary.degree(node) == 0
        ]
    for node in removable:
        hierarchy.splice_out(node)
    return len(removable)


# ----------------------------------------------------------------------
# Substep 2
# ----------------------------------------------------------------------
def prune_single_edge_roots(summary: HierarchicalSummary) -> int:
    """Remove non-leaf roots with exactly one incident non-loop edge (step 2).

    The single edge ``(A, B)`` is replaced by edges between ``B`` and the
    children of ``A``: an existing opposite-sign edge cancels out and is
    removed, otherwise a same-sign edge is added.  The hierarchy edges of
    ``A`` disappear, so the total cost drops by at least one.
    """
    hierarchy = summary.hierarchy
    queue: List[int] = [root for root in hierarchy.roots() if not hierarchy.is_leaf(root)]
    removed = 0
    while queue:
        root = queue.pop()
        if not hierarchy.contains(root) or hierarchy.is_leaf(root) or not hierarchy.is_root(root):
            continue
        incident = summary.incident_edges(root)
        if len(incident) != 1:
            continue
        other, sign = incident[0]
        if other == root:
            continue  # A self-loop cannot be pushed down this way.
        if hierarchy.is_ancestor(root, other):
            continue  # Nested superedges are never produced, but stay safe.
        children = hierarchy.children(root)
        summary.remove_edge(root, other, sign)
        for child in children:
            if summary.has_p_edge(child, other) or summary.has_n_edge(child, other):
                opposite = NEGATIVE if sign == POSITIVE else POSITIVE
                if (sign == POSITIVE and summary.has_n_edge(child, other)) or (
                    sign == NEGATIVE and summary.has_p_edge(child, other)
                ):
                    summary.remove_edge(child, other, opposite)
                # A same-sign edge already provides the required coverage.
            else:
                summary.add_edge(child, other, sign)
        hierarchy.splice_out(root)
        removed += 1
        queue.extend(child for child in children if not hierarchy.is_leaf(child))
    return removed


# ----------------------------------------------------------------------
# Substep 3
# ----------------------------------------------------------------------
def _drop_stale_fork(executor) -> None:
    """After a sharded scan, drop the pool's snapshot before state mutates.

    The next ``map_shards`` then re-forks against the current summary;
    serial executors have no snapshot and need nothing.
    """
    if isinstance(executor, ProcessShardExecutor):
        executor.restart()


def _flat_plan(
    graph: Graph,
    hierarchy,
    pair: RootPair,
    current: Sequence[Tuple[int, int, int]],
    present: Sequence[Tuple[Subnode, Subnode]],
) -> Optional[FlatPlan]:
    """The flat re-encode plan for one root pair, or ``None`` to keep it.

    Pure function of the (immutable during substep 3) graph and
    hierarchy plus the pair's index entries — the decision a worker
    computes on its forked snapshot is therefore identical to the one
    the serial path computes in place.
    """
    root_a, root_b = pair
    num_present = len(present)
    current_cost = len(current)
    if root_a == root_b:
        size = hierarchy.size(root_a)
        possible = size * (size - 1) // 2
    else:
        possible = hierarchy.size(root_a) * hierarchy.size(root_b)
    if num_present == 0:
        flat_cost = 0
    else:
        flat_cost = min(num_present, 1 + possible - num_present)
    if flat_cost >= current_cost:
        return None
    leaf_of = hierarchy.leaf_of
    if num_present and 1 + possible - num_present < num_present:
        corrections = [
            (leaf_of(u), leaf_of(v))
            for u, v in _missing_pairs(graph, hierarchy, root_a, root_b)
        ]
        return ("blanket", corrections)
    return ("leaves", [(leaf_of(u), leaf_of(v)) for u, v in present])


def _apply_plan(
    summary: HierarchicalSummary,
    pair: RootPair,
    current: Sequence[Tuple[int, int, int]],
    plan: FlatPlan,
) -> None:
    """Replace one pair's hierarchical encoding with its flat plan."""
    for x, y, sign in current:
        summary.remove_edge(x, y, sign)
    kind, edges = plan
    if kind == "blanket":
        root_a, root_b = pair
        summary.add_p_edge(root_a, root_b)
        for x, y in edges:
            summary.add_n_edge(x, y)
    else:
        for x, y in edges:
            summary.add_p_edge(x, y)


def reencode_shard_worker(
    bounds: Tuple[int, int],
) -> List[Tuple[int, FlatPlan]]:
    """Decide flat re-encode plans for one contiguous run of root pairs.

    Reads the :class:`_PruneContext` from :func:`worker_context` (the
    forked snapshot; no locks, no mutation) and returns ``(pair_index,
    plan)`` for every pair in ``pairs[start:stop]`` whose flat encoding
    wins.  Indexes are positions in the canonical sorted pair list, so
    the parent can apply shard results in pair order as they stream in.
    """
    start, stop = bounds
    context = worker_context()
    graph = context.graph
    hierarchy = context.hierarchy
    pairs = context.pairs
    pair_edges = context.pair_edges
    pair_subedges = context.pair_subedges
    decided: List[Tuple[int, FlatPlan]] = []
    for position in range(start, stop):
        pair = pairs[position]
        plan = _flat_plan(
            graph,
            hierarchy,
            pair,
            pair_edges.get(pair, ()),
            pair_subedges.get(pair, ()),
        )
        if plan is not None:
            decided.append((position, plan))
    return decided


def reencode_root_pairs_flat(
    graph: Graph,
    summary: HierarchicalSummary,
    execution: Optional[ExecutionConfig] = None,
    executor=None,
    context: Optional[_PruneContext] = None,
    profile: Optional[Dict[str, Any]] = None,
) -> int:
    """Fall back to the flat-model encoding per root pair when cheaper (step 3).

    For each pair of root trees (and each single root tree) the flat model
    either lists the subedges individually or uses one superedge between
    the roots plus per-pair negative corrections; whichever of the two is
    cheaper is compared against the current hierarchical encoding of the
    pair and substituted when it wins.  Returns the number of re-encoded
    root pairs.

    With a parallel ``execution`` the decisions are sharded over the
    executor layer (see :func:`reencode_shard_worker`) and the resulting
    plans applied serially in canonical (sorted) pair order.  Decisions
    read only state substep 3 never writes, so the plans are exact —
    never replayed, never discarded — and the summary is bit-identical
    to the serial path at any worker count.  Callers without a prepared
    executor (tests, one-shot use) may pass just ``execution``; the
    function then builds and closes its own.
    """
    owns_executor = False
    if profile is not None:
        for key, value in _fresh_profile().items():
            profile.setdefault(key, value)
    if context is None:
        context = _PruneContext(graph, summary)
    hierarchy = context.hierarchy
    index_started = time.perf_counter()
    pair_edges = _superedges_by_root_pair(summary)
    pair_subedges = _subedges_by_root_pair(graph, summary)
    pairs = sorted(set(pair_edges) | set(pair_subedges))
    index_seconds = time.perf_counter() - index_started
    if executor is None and execution is not None:
        executor = executor_for(execution, len(pairs), context=context)
        owns_executor = True

    changed = 0
    decide_seconds = 0.0
    apply_seconds = 0.0
    try:
        if _use_sharded_scan(execution, executor, len(pairs)):
            context.pairs = pairs
            context.pair_edges = pair_edges
            context.pair_subedges = pair_subedges
            bounds = shard_bounds(
                len(pairs), executor.workers * execution.chunks_per_worker
            )
            # All payloads are submitted here; workers fork against the
            # post-substep-2 summary and decide while the parent applies
            # earlier shards (plans never go stale — see worker docs).
            tick = time.perf_counter()
            results = executor.map_shards(reencode_shard_worker, bounds)
            for shard in results:
                decide_seconds += time.perf_counter() - tick
                tick = time.perf_counter()
                for position, plan in shard:
                    pair = pairs[position]
                    _apply_plan(summary, pair, pair_edges.get(pair, ()), plan)
                    changed += 1
                apply_seconds += time.perf_counter() - tick
                tick = time.perf_counter()
            _drop_stale_fork(executor)
            if profile is not None:
                profile["parallel_rounds"] += 1
        else:
            tick = time.perf_counter()
            for pair in pairs:
                plan = _flat_plan(
                    graph,
                    hierarchy,
                    pair,
                    pair_edges.get(pair, ()),
                    pair_subedges.get(pair, ()),
                )
                if plan is not None:
                    _apply_plan(summary, pair, pair_edges.get(pair, ()), plan)
                    changed += 1
            apply_seconds = time.perf_counter() - tick
    finally:
        if owns_executor:
            executor.close()
    if profile is not None:
        profile["pairs_scanned"] += len(pairs)
        profile["pairs_reencoded"] += changed
        profile["reencode_index_seconds"] += index_seconds
        profile["reencode_decide_seconds"] += decide_seconds
        profile["reencode_apply_seconds"] += apply_seconds
        profile["reencode_seconds"] += index_seconds + decide_seconds + apply_seconds
    return changed


def _superedges_by_root_pair(
    summary: HierarchicalSummary,
) -> Dict[RootPair, List[Tuple[int, int, int]]]:
    """Index all p/n-edges by the (canonical) pair of root trees they connect."""
    hierarchy = summary.hierarchy
    root_cache: Dict[int, int] = {}

    def root_of(node: int) -> int:
        cached = root_cache.get(node)
        if cached is None:
            cached = hierarchy.root_of(node)
            root_cache[node] = cached
        return cached

    index: Dict[RootPair, List[Tuple[int, int, int]]] = {}
    for edges, sign in ((summary.p_edges(), POSITIVE), (summary.n_edges(), NEGATIVE)):
        for x, y in edges:
            pair = _ordered(root_of(x), root_of(y))
            index.setdefault(pair, []).append((x, y, sign))
    return index


def _subedges_by_root_pair(
    graph: Graph, summary: HierarchicalSummary
) -> Dict[RootPair, List[Tuple[Subnode, Subnode]]]:
    """Index all input subedges by the (canonical) pair of root trees they connect."""
    hierarchy = summary.hierarchy
    root_of_subnode: Dict[Subnode, int] = {}
    for subnode in hierarchy.subnodes():
        root_of_subnode[subnode] = hierarchy.root_of(hierarchy.leaf_of(subnode))
    index: Dict[RootPair, List[Tuple[Subnode, Subnode]]] = {}
    for u, v in graph.edges():
        pair = _ordered(root_of_subnode[u], root_of_subnode[v])
        index.setdefault(pair, []).append((u, v))
    return index


def _missing_pairs(
    graph: Graph, hierarchy, root_a: int, root_b: int
) -> List[Tuple[Subnode, Subnode]]:
    """Non-adjacent subnode pairs between (or within) the given root trees."""
    pairs: List[Tuple[Subnode, Subnode]] = []
    if root_a == root_b:
        members = hierarchy.leaf_subnodes(root_a)
        for i in range(len(members)):
            neighbor_set = graph.neighbor_set(members[i])
            for j in range(i + 1, len(members)):
                if members[j] not in neighbor_set:
                    pairs.append((members[i], members[j]))
        return pairs
    members_b = hierarchy.leaf_subnodes(root_b)
    for u in hierarchy.leaf_subnodes(root_a):
        neighbor_set = graph.neighbor_set(u)
        for v in members_b:
            if v not in neighbor_set:
                pairs.append((u, v))
    return pairs


def _ordered(a: int, b: int) -> RootPair:
    return (a, b) if a <= b else (b, a)
