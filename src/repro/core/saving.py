"""The saving objective used to rank candidate merges (Eq. 8).

``Saving(A, B)`` compares the encoding cost attributable to the root
supernodes ``A`` and ``B`` before their merger with the cost of the
merged supernode afterwards.  Computing the post-merge cost exactly would
require running the local re-encoding for every candidate pair, so —
in the same spirit as the paper's approximations — the estimate below
prices every affected root pair with the best *single-superedge* encoding
(keep the current encoding, list subedges individually, or use one
blanket p-edge plus corrections), which can be read off the per-root
counters in O(degree) time.  The exact local search is then run only for
pairs that are actually merged.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.state import SluggerState

__all__ = [
    "best_partner",
    "estimate_merged_cost",
    "pair_cost_estimate",
    "pair_denominator",
    "saving",
    "two_hop_roots",
]


def pair_cost_estimate(subedges: int, possible: int, current: int) -> int:
    """Cheapest single-superedge encoding of one root-tree pair.

    ``subedges`` is the number of input-graph edges between the trees,
    ``possible`` the number of potential edges, and ``current`` the number
    of p/n-edges spent on the pair right now (0 means "no encoding needed
    yet", which only happens when there are no subedges either).
    """
    if subedges <= 0:
        return 0
    best = min(subedges, 1 + (possible - subedges))
    if current > 0:
        best = min(best, current)
    return best


def estimate_merged_cost(state: SluggerState, root_a: int, root_b: int) -> int:
    """Estimated Cost_{A∪B} after merging two root supernodes (numerator of Eq. 8).

    This is the innermost loop of partner search (it runs once per
    surviving candidate pair), so the per-neighbor arithmetic is inlined
    and every mapping is bound to a local: the logic is exactly
    :func:`pair_cost_estimate` over the merged counter maps, just without
    a function call and four attribute lookups per adjacent root tree.
    """
    size_of = state.summary.hierarchy.size_map().__getitem__
    size_a = size_of(root_a)
    size_b = size_of(root_b)
    adj_a = state.root_adj[root_a]
    adj_b = state.root_adj[root_b]
    pn_a = state.pn_count[root_a]
    pn_b = state.pn_count[root_b]

    # Hierarchy edges: both old trees plus two new h-edges to the new root.
    cost = state.tree_h[root_a] + state.tree_h[root_b] + 2

    # Everything inside the merged tree: either keep the existing intra
    # encodings and (re-)encode only the cross part, or re-encode the whole
    # inside with a self-loop p-edge plus corrections (the clique case).
    cross_subedges = adj_a.get(root_b, 0)
    cross_current = pn_a.get(root_b, 0)
    keep_intra = (
        pn_a.get(root_a, 0)
        + pn_b.get(root_b, 0)
        + pair_cost_estimate(cross_subedges, size_a * size_b, cross_current)
    )
    intra_subedges = adj_a.get(root_a, 0) + adj_b.get(root_b, 0) + cross_subedges
    merged_pairs = (size_a + size_b) * (size_a + size_b - 1) // 2
    if intra_subedges > 0:
        self_loop = 1 + (merged_pairs - intra_subedges)
        cost += min(keep_intra, self_loop)
    else:
        cost += keep_intra

    # Edges towards every other adjacent root tree C.  Roots adjacent only
    # through p/n-edges but with no subedges contribute 0 (the estimate
    # ignores ``current`` when there is nothing to encode), so iterating
    # the two adjacency maps covers every non-zero term without building
    # a union set.
    merged_size = size_a + size_b
    adj_b_get = adj_b.get
    pn_a_get = pn_a.get
    pn_b_get = pn_b.get
    for other, sub_a in adj_a.items():
        if other == root_a or other == root_b:
            continue
        subedges = sub_a + adj_b_get(other, 0)
        best = subedges
        alternative = 1 + merged_size * size_of(other) - subedges
        if alternative < best:
            best = alternative
        current = pn_a_get(other, 0) + pn_b_get(other, 0)
        if 0 < current < best:
            best = current
        cost += best
    for other, subedges in adj_b.items():
        if other == root_a or other == root_b or other in adj_a:
            continue
        best = subedges
        alternative = 1 + merged_size * size_of(other) - subedges
        if alternative < best:
            best = alternative
        current = pn_a_get(other, 0) + pn_b_get(other, 0)
        if 0 < current < best:
            best = current
        cost += best
    return cost


def pair_denominator(state: SluggerState, root_a: int, root_b: int, cost_a: Optional[int] = None) -> int:
    """Denominator of Eq. 8: Cost_A + Cost_B - Cost^P_{A,B}.

    ``cost_a`` optionally supplies a precomputed ``state.cost_of(root_a)``
    so partner search does not recompute it for every candidate.
    """
    if cost_a is None:
        cost_a = state.cost_of(root_a)
    return cost_a + state.cost_of(root_b) - state.pn_cost_between(root_a, root_b)


def saving(
    state: SluggerState,
    root_a: int,
    root_b: int,
    *,
    cost_a: Optional[int] = None,
    denominator: Optional[int] = None,
) -> float:
    """Saving(A, B, G) of Eq. 8; larger is better, values ≤ 0 mean "do not merge".

    ``cost_a`` and ``denominator`` let partner search reuse its
    precomputed values; both default to computing from scratch.
    """
    if denominator is None:
        denominator = pair_denominator(state, root_a, root_b, cost_a)
    if denominator <= 0:
        return float("-inf")
    return 1.0 - estimate_merged_cost(state, root_a, root_b) / denominator


def two_hop_roots(state: SluggerState, root: int) -> set:
    """Root trees within distance 2 of ``root``'s tree in the input graph.

    Lemma 1 shows that merging root trees at distance 3 or more always
    increases the encoding cost, so partner search can be restricted to
    this set without affecting the result.
    """
    direct = set(state.root_adj[root])
    reachable = set(direct)
    for neighbor in direct:
        reachable.update(state.root_adj[neighbor])
    reachable.discard(root)
    return reachable


def best_partner(
    state: SluggerState, root: int, candidates, height_bound=None
) -> Tuple[float, int]:
    """The candidate with the largest saving when merged with ``root``.

    Returns ``(saving, partner)``; ``partner`` is ``-1`` when no candidate
    is admissible (e.g. all would exceed the height bound).  Candidates at
    distance 3 or more are skipped (Lemma 1).

    Three exact short-circuits keep the inner loop cheap without changing
    the selected partner:

    * directly-adjacent candidates skip the two-hop admissibility set,
      which is only materialized when a non-adjacent candidate shows up;
    * ``Cost_A`` is computed once instead of per candidate;
    * a candidate is skipped without running the O(degree) merged-cost
      estimate when even the lower bound ``Cost_{A∪B} ≥ Cost^H_A +
      Cost^H_B + 2`` (the merged tree keeps both trees' h-edges, from the
      incrementally maintained leaf counts, plus two new ones) cannot
      beat the best saving found so far.
    """
    direct = state.root_adj[root]
    two_hop = None
    tree_h = state.tree_h
    cost_root = state.cost_of(root)
    h_root = tree_h[root]
    best_value = float("-inf")
    best_root = -1
    for other in candidates:
        if other == root:
            continue
        if other not in direct:
            if two_hop is None:
                two_hop = two_hop_roots(state, root)
            if other not in two_hop:
                continue
        if height_bound is not None:
            new_height = 1 + max(state.tree_height[root], state.tree_height[other])
            if new_height > height_bound:
                continue
        denominator = pair_denominator(state, root, other, cost_root)
        if denominator <= 0:
            continue
        if 1.0 - (h_root + tree_h[other] + 2) / denominator <= best_value:
            # Even the cheapest conceivable merged cost cannot strictly
            # improve on the current best; skip the expensive estimate.
            continue
        value = saving(state, root, other, denominator=denominator)
        if value > best_value:
            best_value = value
            best_root = other
    return best_value, best_root
