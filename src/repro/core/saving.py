"""The saving objective used to rank candidate merges (Eq. 8).

``Saving(A, B)`` compares the encoding cost attributable to the root
supernodes ``A`` and ``B`` before their merger with the cost of the
merged supernode afterwards.  Computing the post-merge cost exactly would
require running the local re-encoding for every candidate pair, so —
in the same spirit as the paper's approximations — the estimate below
prices every affected root pair with the best *single-superedge* encoding
(keep the current encoding, list subedges individually, or use one
blanket p-edge plus corrections), which can be read off the per-root
counters in O(degree) time.  The exact local search is then run only for
pairs that are actually merged.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.state import SluggerState


def pair_cost_estimate(subedges: int, possible: int, current: int) -> int:
    """Cheapest single-superedge encoding of one root-tree pair.

    ``subedges`` is the number of input-graph edges between the trees,
    ``possible`` the number of potential edges, and ``current`` the number
    of p/n-edges spent on the pair right now (0 means "no encoding needed
    yet", which only happens when there are no subedges either).
    """
    if subedges <= 0:
        return 0
    best = min(subedges, 1 + (possible - subedges))
    if current > 0:
        best = min(best, current)
    return best


def estimate_merged_cost(state: SluggerState, root_a: int, root_b: int) -> int:
    """Estimated Cost_{A∪B} after merging two root supernodes (numerator of Eq. 8)."""
    hierarchy = state.summary.hierarchy
    size_a = hierarchy.size(root_a)
    size_b = hierarchy.size(root_b)

    # Hierarchy edges: both old trees plus two new h-edges to the new root.
    cost = state.tree_h[root_a] + state.tree_h[root_b] + 2

    # Everything inside the merged tree: either keep the existing intra
    # encodings and (re-)encode only the cross part, or re-encode the whole
    # inside with a self-loop p-edge plus corrections (the clique case).
    cross_subedges = state.subedges_between(root_a, root_b)
    cross_current = state.pn_cost_between(root_a, root_b)
    keep_intra = (
        state.pn_cost_between(root_a, root_a)
        + state.pn_cost_between(root_b, root_b)
        + pair_cost_estimate(cross_subedges, size_a * size_b, cross_current)
    )
    intra_subedges = (
        state.subedges_between(root_a, root_a)
        + state.subedges_between(root_b, root_b)
        + cross_subedges
    )
    merged_pairs = (size_a + size_b) * (size_a + size_b - 1) // 2
    if intra_subedges > 0:
        self_loop = 1 + (merged_pairs - intra_subedges)
        cost += min(keep_intra, self_loop)
    else:
        cost += keep_intra

    # Edges towards every other adjacent root tree C.
    neighbors = state.neighbor_roots(root_a) | state.neighbor_roots(root_b)
    neighbors.discard(root_a)
    neighbors.discard(root_b)
    merged_size = size_a + size_b
    for other in neighbors:
        subedges = (
            state.root_adj[root_a].get(other, 0) + state.root_adj[root_b].get(other, 0)
        )
        current = (
            state.pn_count[root_a].get(other, 0) + state.pn_count[root_b].get(other, 0)
        )
        possible = merged_size * hierarchy.size(other)
        cost += pair_cost_estimate(subedges, possible, current)
    return cost


def saving(state: SluggerState, root_a: int, root_b: int) -> float:
    """Saving(A, B, G) of Eq. 8; larger is better, values ≤ 0 mean "do not merge"."""
    denominator = (
        state.cost_of(root_a) + state.cost_of(root_b) - state.pn_cost_between(root_a, root_b)
    )
    if denominator <= 0:
        return float("-inf")
    return 1.0 - estimate_merged_cost(state, root_a, root_b) / denominator


def two_hop_roots(state: SluggerState, root: int) -> set:
    """Root trees within distance 2 of ``root``'s tree in the input graph.

    Lemma 1 shows that merging root trees at distance 3 or more always
    increases the encoding cost, so partner search can be restricted to
    this set without affecting the result.
    """
    direct = set(state.root_adj[root])
    reachable = set(direct)
    for neighbor in direct:
        reachable.update(state.root_adj[neighbor])
    reachable.discard(root)
    return reachable


def best_partner(
    state: SluggerState, root: int, candidates, height_bound=None
) -> Tuple[float, int]:
    """The candidate with the largest saving when merged with ``root``.

    Returns ``(saving, partner)``; ``partner`` is ``-1`` when no candidate
    is admissible (e.g. all would exceed the height bound).  Candidates at
    distance 3 or more are skipped (Lemma 1).
    """
    admissible = two_hop_roots(state, root)
    best_value = float("-inf")
    best_root = -1
    for other in candidates:
        if other == root or other not in admissible:
            continue
        if height_bound is not None:
            new_height = 1 + max(state.tree_height[root], state.tree_height[other])
            if new_height > height_bound:
                continue
        value = saving(state, root, other)
        if value > best_value:
            best_value = value
            best_root = other
    return best_value, best_root
