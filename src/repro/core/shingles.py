"""Min-hash shingle values over subnodes and root supernodes.

Candidate generation (Sect. III-B2) groups root supernodes whose subnodes
have overlapping neighborhoods, which is exactly what a min-hash shingle
detects: two nodes with similar neighbor sets have a high probability of
sharing the minimum hash value over their (closed) neighborhoods.  The
scheme follows SWeG: the shingle of a subnode is the minimum hash over
the node and its neighbors, and the shingle of a root supernode is the
minimum shingle over its subnodes.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable

from repro.graphs.graph import Graph
from repro.model.hierarchy import Hierarchy
from repro.utils.rng import SeedLike, ensure_rng

Subnode = Hashable

# A large Mersenne prime keeps the 2-universal hash family well spread
# while staying inside native integer arithmetic.
_PRIME = (1 << 61) - 1


def make_hash_function(seed: SeedLike = None) -> Callable[[Subnode], int]:
    """A 2-universal hash function ``h(x) = (a * x + b) mod p`` over subnodes.

    Non-integer subnodes are first mapped through Python's ``hash``;
    the affine map is what provides the per-round independence needed by
    min-hashing.
    """
    rng = ensure_rng(seed)
    a = rng.randrange(1, _PRIME)
    b = rng.randrange(_PRIME)

    def hash_function(value: Subnode) -> int:
        base = value if isinstance(value, int) else hash(value)
        return (a * (base & ((1 << 61) - 1)) + b) % _PRIME

    return hash_function


def subnode_shingles(graph: Graph, hash_function: Callable[[Subnode], int]) -> Dict[Subnode, int]:
    """Shingle value of every subnode: min hash over its closed neighborhood."""
    shingles: Dict[Subnode, int] = {}
    for node in graph.nodes():
        best = hash_function(node)
        for neighbor in graph.neighbor_set(node):
            value = hash_function(neighbor)
            if value < best:
                best = value
        shingles[node] = best
    return shingles


def root_shingles(
    roots: Iterable[int],
    hierarchy: Hierarchy,
    node_shingles: Dict[Subnode, int],
) -> Dict[int, int]:
    """Shingle value of each root supernode: min over its subnodes' shingles."""
    result: Dict[int, int] = {}
    for root in roots:
        best = None
        for subnode in hierarchy.leaf_subnodes(root):
            value = node_shingles[subnode]
            if best is None or value < best:
                best = value
        # A root always contains at least one subnode, so ``best`` is set.
        result[root] = best if best is not None else 0
    return result
