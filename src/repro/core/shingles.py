"""Min-hash shingle values over subnodes and root supernodes.

Candidate generation (Sect. III-B2) groups root supernodes whose subnodes
have overlapping neighborhoods, which is exactly what a min-hash shingle
detects: two nodes with similar neighbor sets have a high probability of
sharing the minimum hash value over their (closed) neighborhoods.  The
scheme follows SWeG: the shingle of a subnode is the minimum hash over
the node and its neighbors, and the shingle of a root supernode is the
minimum shingle over its subnodes.

Lazy, cached evaluation
-----------------------
Shingles sit on SLUGGER's per-iteration hot path, so two properties of
the computation are exploited here instead of recomputing from scratch:

* **Hash values are shared between neighborhoods.**  A node's hash value
  participates in the shingle of every one of its neighbors, so hashing
  per closed neighborhood costs ``n + 2m`` hash-function invocations per
  round.  Both :func:`subnode_shingles` and :class:`ShingleCache` compute
  each node's hash value exactly once (``n`` invocations) and share it
  through a dictionary, turning the per-edge work into plain lookups.
* **Only oversized groups need shingles.**  During candidate generation,
  a shingle round only has to split the groups that are still above the
  candidate-size cap; hashing the rest of the graph is wasted work.
  :class:`ShingleCache` therefore evaluates subnode shingles *lazily* —
  the first request for a node computes and memoizes it, later requests
  (from other groups in the same round, or other roots sharing leaves)
  are dictionary hits.  One cache instance corresponds to one hash
  function, so callers key caches by the hash-function seed.

Both paths produce bit-identical shingle values: laziness and caching
change where the work happens, never what is computed.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, List, Optional

from repro.graphs.dense import CSRAdjacency, DenseAdjacency
from repro.graphs.graph import Graph
from repro.model.hierarchy import Hierarchy
from repro.utils.rng import SeedLike, ensure_rng

__all__ = [
    "DenseShingleCache",
    "ShingleCache",
    "csr_shingles_range",
    "dense_hash_values",
    "dense_shingles_from_values",
    "dense_subnode_shingles",
    "make_hash_function",
    "root_shingles",
    "sharded_shingles",
    "shingle_shard_worker",
    "subnode_shingles",
    "subnode_shingles_from_values",
]

Subnode = Hashable

# A large Mersenne prime keeps the 2-universal hash family well spread
# while staying inside native integer arithmetic.
_PRIME = (1 << 61) - 1


def make_hash_function(seed: SeedLike = None) -> Callable[[Subnode], int]:
    """A 2-universal hash function ``h(x) = (a * x + b) mod p`` over subnodes.

    Non-integer subnodes are first mapped through Python's ``hash``;
    the affine map is what provides the per-round independence needed by
    min-hashing.  The base value is reduced modulo the prime (not masked
    to 61 bits): masking would collide ids ``x`` and ``x + 2**61`` and
    conflate distinct negative ``hash()`` values with large positive ones,
    whereas the modular reduction keeps the affine map injective on every
    residue class.
    """
    rng = ensure_rng(seed)
    a = rng.randrange(1, _PRIME)
    b = rng.randrange(_PRIME)

    def hash_function(value: Subnode) -> int:
        # One of the two sanctioned label-hashing boundaries: CI pins the
        # resulting fingerprints under PYTHONHASHSEED=0.
        # repro-lint: disable=builtin-hash (documented boundary, pinned under PYTHONHASHSEED=0)
        base = value if isinstance(value, int) else hash(value)
        return (a * base + b) % _PRIME

    return hash_function


def subnode_shingles(graph: Graph, hash_function: Callable[[Subnode], int]) -> Dict[Subnode, int]:
    """Shingle value of every subnode: min hash over its closed neighborhood.

    Each node is hashed exactly once; neighborhoods then take minima over
    the precomputed values (the neighbor loop is the per-edge hot path, so
    it runs through C-level ``min``/``map`` instead of re-invoking the
    hash function per edge endpoint).
    """
    values: Dict[Subnode, int] = {node: hash_function(node) for node in graph.adjacency()}
    return subnode_shingles_from_values(graph, values)


def subnode_shingles_from_values(graph: Graph, values: Dict[Subnode, int]) -> Dict[Subnode, int]:
    """Shingle of every node given precomputed per-node hash ``values``."""
    lookup = values.__getitem__
    shingles: Dict[Subnode, int] = {}
    for node, neighbors in graph.adjacency().items():
        own = lookup(node)
        if neighbors:
            best = min(map(lookup, neighbors))
            shingles[node] = best if best < own else own
        else:
            shingles[node] = own
    return shingles


class ShingleCache:
    """Lazily computed, memoized shingles for one hash function.

    One instance corresponds to one hash-function ``seed`` (exposed as
    :attr:`seed` so callers can key a per-iteration cache dictionary by
    it).  Subnode hash values and shingles are computed on first request
    and reused afterwards; :meth:`ensure_values` optionally bulk-hashes
    every node up front, which is faster when a round is known to touch
    most of the graph (the per-edge work then runs through C-level
    ``min``/``map``).
    """

    def __init__(self, graph: Graph, seed: SeedLike = None) -> None:
        self.seed = seed
        self._graph = graph
        self._hash = make_hash_function(seed)
        self._values: Dict[Subnode, int] = {}
        self._shingles: Dict[Subnode, int] = {}
        self._values_complete = False
        self._shingles_complete = False

    def ensure_values(self) -> None:
        """Precompute the hash value of every node in the graph.

        Worth calling when the caller is about to request shingles whose
        closed neighborhoods cover most of the graph; a no-op afterwards.
        """
        if not self._values_complete:
            hash_function = self._hash
            self._values = {node: hash_function(node) for node in self._graph.adjacency()}
            self._values_complete = True

    def ensure_shingles(self) -> Dict[Subnode, int]:
        """Precompute the shingle of every node; returns the shingle dictionary.

        Callers that are about to aggregate shingles over most of the
        graph (e.g. the first shingle round of candidate generation) can
        read the returned dictionary directly, skipping the per-node
        method-call overhead of :meth:`shingle`.
        """
        if not self._shingles_complete:
            self.ensure_values()
            self._shingles = subnode_shingles_from_values(self._graph, self._values)
            self._shingles_complete = True
        return self._shingles

    def hash_value(self, node: Subnode) -> int:
        """The (memoized) hash value of one node."""
        value = self._values.get(node)
        if value is None:
            value = self._hash(node)
            self._values[node] = value
        return value

    def shingle(self, node: Subnode) -> int:
        """The (memoized) shingle of ``node``: min hash over its closed neighborhood."""
        shingles = self._shingles
        result = shingles.get(node)
        if result is not None:
            return result
        values = self._values
        neighbors = self._graph.neighbor_set(node)
        if self._values_complete:
            best = values[node]
            if neighbors:
                smallest = min(map(values.__getitem__, neighbors))
                if smallest < best:
                    best = smallest
        else:
            hash_function = self._hash
            best = values.get(node)
            if best is None:
                best = values[node] = hash_function(node)
            for neighbor in neighbors:
                value = values.get(neighbor)
                if value is None:
                    value = values[neighbor] = hash_function(neighbor)
                if value < best:
                    best = value
        shingles[node] = best
        return best


def dense_hash_values(dense: DenseAdjacency, hash_function: Callable[[Subnode], int]) -> List[int]:
    """Per-id hash values over the dense substrate, hashing the *original* labels.

    Hashing ``labels[id]`` rather than the id itself keeps every shingle
    value bit-identical to the label-keyed path for any label type; for
    the common contiguous-integer graphs the two coincide anyway.
    """
    return [hash_function(label) for label in dense.index.labels()]


def dense_subnode_shingles(
    dense: DenseAdjacency, hash_function: Callable[[Subnode], int]
) -> List[int]:
    """Shingle of every dense id: min hash over its closed neighborhood.

    The list-backed counterpart of :func:`subnode_shingles` — values are
    identical, storage and lookups are array reads instead of dictionary
    probes.
    """
    values = dense_hash_values(dense, hash_function)
    return dense_shingles_from_values(dense, values)


def dense_shingles_from_values(dense: DenseAdjacency, values: List[int]) -> List[int]:
    """Shingle of every dense id given precomputed per-id hash ``values``."""
    lookup = values.__getitem__
    shingles: List[int] = []
    append = shingles.append
    for node, neighbors in enumerate(dense.neighbors):
        own = values[node]
        if neighbors:
            best = min(map(lookup, neighbors))
            append(best if best < own else own)
        else:
            append(own)
    return shingles


def csr_shingles_range(
    csr: CSRAdjacency, values: List[int], start: int, stop: int
) -> List[int]:
    """Shingles of the contiguous id range ``[start, stop)`` on a CSR view.

    The per-shard building block of the batch shingle phase: ``values``
    holds the hash value of *every* node (a neighbor can lie outside the
    shard), the minima are taken over the shard's closed neighborhoods
    only.  Concatenating the shards in range order is bit-identical to
    :func:`dense_shingles_from_values` over the thawed adjacency — the
    CSR's sorted neighbor runs change the order minima are taken in, not
    their value.
    """
    lookup = values.__getitem__
    indptr, indices = csr.indptr, csr.indices
    shingles: List[int] = []
    append = shingles.append
    for node in range(start, stop):
        lo, hi = indptr[node], indptr[node + 1]
        own = values[node]
        if lo < hi:
            best = min(map(lookup, indices[lo:hi]))
            append(best if best < own else own)
        else:
            append(own)
    return shingles


def shingle_shard_worker(payload: "tuple[int, int, int]") -> List[int]:
    """Executor worker: shingles of one id range for one hash-function seed.

    ``payload`` is ``(seed, start, stop)``; the heavyweight inputs — the
    frozen CSR view and the label list to hash — come from the installed
    worker context (see :mod:`repro.engine.execution`), so a forked pool
    inherits them without any pickling.  Every worker hashes the full
    label list (the cheap ``n``-sized part, duplicating it beats a
    synchronization round for the shared values) and then computes the
    per-edge minima for its own range only.
    """
    from repro.engine.execution import worker_context

    seed, start, stop = payload
    csr, labels = worker_context()
    hash_function = make_hash_function(seed)
    values = [hash_function(label) for label in labels]
    return csr_shingles_range(csr, values, start, stop)


def sharded_shingles(executor, bounds, seed: int) -> List[int]:
    """Full shingle list for one hash-function ``seed``, computed in shards.

    ``executor`` must have ``(csr, labels)`` installed as its worker
    context and ``bounds`` must partition ``range(num_nodes)`` (see
    :func:`~repro.engine.execution.shard_bounds`); the concatenated
    result is bit-identical to the unsharded sweep.  The one sharding
    recipe shared by SLUGGER's shingle phase and SWeG's divide step.
    """
    payloads = [(seed, start, stop) for start, stop in bounds]
    shingles: List[int] = []
    for shard in executor.map_shards(shingle_shard_worker, payloads):
        shingles.extend(shard)
    return shingles


class DenseShingleCache:
    """Lazily computed, memoized shingles over a dense substrate.

    The int-id counterpart of :class:`ShingleCache`: one instance per
    hash-function ``seed``, per-id hash values and shingles live in plain
    lists (``None`` marks "not yet computed"), and the bulk paths run the
    per-edge minima through C-level ``min``/``map``.  Shingle *values*
    are bit-identical to the label path because hashing goes through the
    original labels (see :func:`dense_hash_values`).
    """

    __slots__ = ("seed", "_dense", "_hash", "_values", "_shingles",
                 "_values_complete", "_shingles_complete")

    def __init__(self, dense: DenseAdjacency, seed: SeedLike = None) -> None:
        self.seed = seed
        self._dense = dense
        self._hash = make_hash_function(seed)
        size = dense.num_nodes
        self._values: List[Optional[int]] = [None] * size
        self._shingles: List[Optional[int]] = [None] * size
        self._values_complete = False
        self._shingles_complete = False

    @classmethod
    def from_shingles(
        cls, dense: DenseAdjacency, seed: SeedLike, shingles: List[int]
    ) -> "DenseShingleCache":
        """A cache pre-seeded with a complete shingle list for ``seed``.

        Used by the batch shingle phase: the per-shard CSR computation
        (:func:`csr_shingles_range`) produces the full list up front, and
        candidate generation then reads it through the ordinary cache
        interface with no recomputation.
        """
        cache = cls(dense, seed)
        if len(shingles) != dense.num_nodes:
            raise ValueError(
                f"expected {dense.num_nodes} shingles, got {len(shingles)}"
            )
        cache._shingles = list(shingles)
        cache._shingles_complete = True
        return cache

    def ensure_values(self) -> None:
        """Precompute the hash value of every node (a no-op afterwards)."""
        if not self._values_complete:
            hash_function = self._hash
            self._values = [hash_function(label) for label in self._dense.index.labels()]
            self._values_complete = True

    def ensure_shingles(self) -> List[Optional[int]]:
        """Precompute every shingle; returns the full shingle list."""
        if not self._shingles_complete:
            self.ensure_values()
            self._shingles = dense_shingles_from_values(self._dense, self._values)
            self._shingles_complete = True
        return self._shingles

    def shingle(self, node: int) -> int:
        """The (memoized) shingle of dense id ``node``."""
        shingles = self._shingles
        result = shingles[node]
        if result is not None:
            return result
        values = self._values
        neighbors = self._dense.neighbors[node]
        if self._values_complete:
            best = values[node]
            if neighbors:
                smallest = min(map(values.__getitem__, neighbors))
                if smallest < best:
                    best = smallest
        else:
            hash_function = self._hash
            labels = self._dense.index.labels()
            best = values[node]
            if best is None:
                best = values[node] = hash_function(labels[node])
            for neighbor in neighbors:
                value = values[neighbor]
                if value is None:
                    value = values[neighbor] = hash_function(labels[neighbor])
                if value < best:
                    best = value
        shingles[node] = best
        return best


def root_shingles(
    roots: Iterable[int],
    hierarchy: Hierarchy,
    node_shingles: Dict[Subnode, int],
) -> Dict[int, int]:
    """Shingle value of each root supernode: min over its subnodes' shingles.

    For callers that already hold a full shingle dictionary (e.g. SWeG);
    candidate generation aggregates lazily from a :class:`ShingleCache`
    instead.
    """
    result: Dict[int, int] = {}
    lookup = node_shingles.__getitem__
    for root in roots:
        leaves = hierarchy.leaf_subnodes(root)
        # A root always contains at least one subnode, so ``min`` is safe.
        result[root] = min(map(lookup, leaves)) if leaves else 0
    return result
