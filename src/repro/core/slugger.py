"""The SLUGGER driver (Algorithm 1).

``Slugger.summarize`` alternates candidate generation and merging for
``T`` iterations and finally prunes the summary.  The returned
:class:`SluggerResult` carries the summary plus per-iteration history so
experiments (Tables III-V, Fig. 6) can be produced without re-running the
algorithm from scratch for every measurement.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.candidates import generate_candidate_sets
from repro.core.config import SluggerConfig
from repro.core.merging import process_candidate_set
from repro.core.pruning import prune
from repro.core.state import SluggerState
from repro.graphs.graph import Graph
from repro.model.summary import HierarchicalSummary
from repro.utils.rng import ensure_rng
from repro.utils.validation import require_type


@dataclass
class SluggerResult:
    """Outcome of one SLUGGER run.

    Attributes
    ----------
    summary:
        The final hierarchical summary (after pruning, unless disabled).
    config:
        The configuration the run used.
    history:
        One record per iteration with the iteration number, the merging
        threshold, the number of merges, the number of remaining root
        supernodes, and the encoding cost at the end of the iteration.
    prune_stats:
        Per-substep change counters returned by the pruning step.
    runtime_seconds:
        Wall-clock duration of the whole run.
    """

    summary: HierarchicalSummary
    config: SluggerConfig
    history: List[Dict[str, float]] = field(default_factory=list)
    prune_stats: Dict[str, int] = field(default_factory=dict)
    runtime_seconds: float = 0.0

    def cost(self) -> int:
        """Encoding cost of the final summary (Eq. 1)."""
        return self.summary.cost()

    def relative_size(self, graph: Graph) -> float:
        """Relative output size (Eq. 10) with respect to ``graph``."""
        return self.summary.relative_size(graph)


class Slugger:
    """Scalable lossless summarization of graphs with hierarchy.

    Examples
    --------
    >>> from repro.graphs import caveman_graph
    >>> graph = caveman_graph(4, 5, seed=0)
    >>> result = Slugger(SluggerConfig(iterations=5, seed=0)).summarize(graph)
    >>> result.summary.validate(graph)
    >>> result.cost() < graph.num_edges
    True
    """

    def __init__(self, config: Optional[SluggerConfig] = None, **overrides) -> None:
        if config is None:
            config = SluggerConfig(**overrides)
        elif overrides:
            raise TypeError("pass either a config object or keyword overrides, not both")
        self.config = config

    def summarize(self, graph: Graph) -> SluggerResult:
        """Summarize ``graph`` under the hierarchical model (Problem 1)."""
        require_type(graph, Graph, "graph")
        config = self.config
        started = time.perf_counter()
        rng = ensure_rng(config.seed)

        state = SluggerState(graph, build_dense=config.use_dense_substrate)
        history: List[Dict[str, float]] = []

        if graph.num_edges > 0:
            for iteration in range(1, config.iterations + 1):
                threshold = config.threshold(iteration)
                candidate_sets = generate_candidate_sets(
                    graph,
                    state.summary.hierarchy,
                    sorted(state.roots),
                    config,
                    seed=rng.randrange(2**61),
                    dense=state.dense,
                )
                merges = 0
                for candidate_set in candidate_sets:
                    merges += process_candidate_set(
                        state, candidate_set, threshold, config, seed=rng.randrange(2**61)
                    )
                history.append({
                    "iteration": float(iteration),
                    "threshold": threshold,
                    "merges": float(merges),
                    "roots": float(len(state.roots)),
                    "cost": float(state.summary.cost()),
                })
                if config.check_invariants:
                    state.check_consistency()

        prune_stats: Dict[str, int] = {}
        if config.prune:
            prune_stats = prune(graph, state.summary, rounds=config.prune_rounds)

        if config.validate_output:
            state.summary.validate(graph)

        return SluggerResult(
            summary=state.summary,
            config=config,
            history=history,
            prune_stats=prune_stats,
            runtime_seconds=time.perf_counter() - started,
        )


def summarize(graph: Graph, config: Optional[SluggerConfig] = None, **overrides) -> SluggerResult:
    """Convenience wrapper: ``Slugger(config, **overrides).summarize(graph)``."""
    return Slugger(config, **overrides).summarize(graph)
