"""The SLUGGER driver (Algorithm 1) as a staged phase pipeline.

``Slugger.summarize`` runs ``T`` iterations, each an explicit pipeline of
five phases over the shared :class:`IterationContext`:

``shingle → group → decide-merges → apply-merges → recost``

* **shingle** draws the iteration's candidate seed and (when a parallel
  execution is configured) pre-computes the first shingle round's values
  in contiguous id-range shards over the frozen CSR view;
* **group** forms the candidate root sets (Sect. III-B2) and draws one
  merge seed per set — the same RNG stream the serial reference consumes;
* **decide-merges** optimistically computes each candidate set's merge
  decisions in worker processes that were forked against the
  iteration-start state (a copy-on-write snapshot: workers simulate
  merges on their private image, the parent's state stays untouched),
  returning compact merge *traces*;
* **apply-merges** walks the candidate sets in canonical order and, per
  set, either replays its trace (when a conflict check proves the
  decisions match what the serial reference would have decided) or falls
  back to processing the set serially; merges therefore mutate the real
  state in exactly the serial order;
* **recost** records the iteration history entry and optionally verifies
  the incremental indices.

Determinism guarantee
---------------------
The output is **bit-identical for a fixed seed regardless of worker
count**.  The apply phase enforces this: a trace is replayed only when
the set of roots the group read provably saw the same state the serial
reference would have shown it (no earlier-applied merge and no
worker-local simulation touched its footprint — see
:meth:`~repro.core.state.SluggerState.group_footprint`); every other
group is re-processed serially with its own seed, which *is* the serial
reference computation.  Worker-count changes can therefore only move
work between the replay and fallback paths, never change a decision.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.core.candidates import generate_candidate_sets
from repro.core.coloring import colored_apply_sweep, first_color_class
from repro.core.config import SluggerConfig
from repro.core.merging import apply_merge_trace, process_candidate_set
from repro.core.pruning import prune
from repro.core.shingles import DenseShingleCache, sharded_shingles
from repro.core.state import SluggerState
from repro.engine.execution import (
    ExecutionConfig,
    executor_for,
    shard_bounds,
    worker_context,
)
from repro.engine.hooks import GraphResources, RunControl
from repro.graphs.graph import Graph
from repro.obs import NULL_METRICS, NULL_TRACER, MetricsRegistry
from repro.model.summary import HierarchicalSummary
from repro.utils.rng import ensure_rng
from repro.utils.validation import require_type

__all__ = [
    "ApplyPhase",
    "DecidePhase",
    "GroupPhase",
    "IterationContext",
    "IterationPipeline",
    "MergeTrace",
    "PHASE_NAMES",
    "RecostPhase",
    "ShinglePhase",
    "Slugger",
    "SluggerResult",
    "summarize",
]

#: A recorded merge decision sequence for one candidate set (see
#: :func:`~repro.core.merging.process_candidate_set` for the encoding).
MergeTrace = List[Tuple[int, int]]

PHASE_NAMES = ("shingle", "group", "decide", "apply", "recost")


@dataclass
class SluggerResult:
    """Outcome of one SLUGGER run.

    Attributes
    ----------
    summary:
        The final hierarchical summary (after pruning, unless disabled).
    config:
        The configuration the run used.
    history:
        One record per iteration with the iteration number, the merging
        threshold, the number of merges, the number of remaining root
        supernodes, and the encoding cost at the end of the iteration.
    prune_stats:
        Per-substep change counters returned by the pruning step.
    prune_profile:
        Per-substep wall times and the serial-vs-parallel split of the
        pruning step (see
        :func:`repro.analysis.cost_breakdown.pruning_profile`); empty
        when pruning is disabled.
    runtime_seconds:
        Wall-clock duration of the whole run (monotonic clock).
    phase_seconds:
        Wall-clock seconds spent in each pipeline phase, accumulated
        over all iterations (plus the final ``prune`` step).
    execution_stats:
        Counters of the parallel decide/apply machinery: how many
        candidate groups were processed, how many decide traces were
        replayed, how many groups fell back to the serial path, and —
        for colored zero-threshold sweeps — how many decide rounds ran
        and how many groups were replayed from or serially processed in
        them.  All zeros under pure serial execution.
    """

    summary: HierarchicalSummary
    config: SluggerConfig
    history: List[Dict[str, float]] = field(default_factory=list)
    prune_stats: Dict[str, int] = field(default_factory=dict)
    prune_profile: Dict[str, object] = field(default_factory=dict)
    runtime_seconds: float = 0.0
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    execution_stats: Dict[str, int] = field(default_factory=dict)

    def cost(self) -> int:
        """Encoding cost of the final summary (Eq. 1)."""
        return self.summary.cost()

    def relative_size(self, graph: Graph) -> float:
        """Relative output size (Eq. 10) with respect to ``graph``."""
        return self.summary.relative_size(graph)


@dataclass
class IterationContext:
    """Everything one pipeline iteration reads and produces.

    The driver creates one context per run and resets the per-iteration
    slots before each pass; phases communicate exclusively through it,
    which keeps every phase independently testable and replaceable.
    """

    graph: Graph
    state: SluggerState
    config: SluggerConfig
    execution: Optional[ExecutionConfig]
    rng: object  # random.Random: the run's single RNG stream
    phase_seconds: Dict[str, float]
    stats: Dict[str, int]
    history: List[Dict[str, float]] = field(default_factory=list)
    # Per-iteration slots, reset by the driver:
    iteration: int = 0
    threshold: float = 0.0
    candidate_seed: Optional[int] = None
    shingle_caches: Dict[int, DenseShingleCache] = field(default_factory=dict)
    candidate_sets: List[List[int]] = field(default_factory=list)
    merge_seeds: List[int] = field(default_factory=list)
    decisions: Optional[Iterator[List[Optional[MergeTrace]]]] = None
    colored_ready: Optional[List[int]] = None
    executor: Optional[object] = None
    merges: int = 0
    # Run-lifetime (not reset per iteration): the shingle pool's context
    # — the frozen CSR view and the label list — is immutable for the
    # whole run, so one forked pool serves every iteration.  A warm pool
    # borrowed from a service graph store outlives the run; the owner
    # closes it, not this context (``owns_shingle_executor``).
    shingle_executor: Optional[object] = None
    owns_shingle_executor: bool = True
    # Telemetry sinks (null objects by default — observation only, the
    # pipeline's decisions never read them).
    metrics: object = NULL_METRICS
    tracer: object = NULL_TRACER

    def begin_iteration(self, iteration: int) -> None:
        self.iteration = iteration
        self.threshold = self.config.threshold(iteration)
        self.candidate_seed = None
        self.shingle_caches = {}
        self.candidate_sets = []
        self.merge_seeds = []
        self.decisions = None
        self.colored_ready = None
        self.merges = 0

    def close_executor(self) -> None:
        if self.executor is not None:
            self.executor.close()
            self.executor = None

    def close_run(self) -> None:
        self.close_executor()
        if self.shingle_executor is not None:
            if self.owns_shingle_executor:
                self.shingle_executor.close()
            self.shingle_executor = None


class _DecideContext:
    """Worker-side context of the decide phase (inherited via fork).

    ``local_dirty`` accumulates, per worker process, the footprints of
    every group whose simulation performed at least one merge: the
    worker's private state image has diverged from the iteration-start
    snapshot on (at most) those roots, so later groups whose footprint
    touches them must not trust this worker's simulation.
    """

    __slots__ = ("state", "candidate_sets", "threshold", "config", "seeds",
                 "local_dirty", "telemetry")

    def __init__(self, state: SluggerState, candidate_sets: List[List[int]],
                 threshold: float, config: SluggerConfig, seeds: List[int],
                 telemetry: bool = False) -> None:
        self.state = state
        self.candidate_sets = candidate_sets
        self.threshold = threshold
        self.config = config
        self.seeds = seeds
        self.local_dirty: Set[int] = set()
        self.telemetry = telemetry


def _decide_shard(
    bounds: Tuple[int, int],
) -> Tuple[List[Optional[MergeTrace]], Optional[dict]]:
    """Decide the merges of candidate sets ``bounds`` on this worker's image.

    Returns ``(results, telemetry)``.  ``results`` holds one entry per
    group: the recorded merge trace, or ``None`` when the group is
    *tainted* — its footprint intersects state this worker already
    mutated while simulating an earlier group, so its decisions cannot
    be certified and the apply phase must fall back to the serial path
    for it.

    ``telemetry`` is ``None`` unless the run has metrics/tracing
    enabled, in which case it carries a shard-local
    :class:`~repro.obs.MetricsRegistry` snapshot plus the shard's raw
    ``perf_counter`` interval — plain picklable data the parent merges
    into its own registry (order-independent) and converts onto its
    span timeline.  Purely observational: the decide results are
    byte-identical with telemetry on or off.
    """
    context: _DecideContext = worker_context()
    state = context.state
    candidate_sets = context.candidate_sets
    local_dirty = context.local_dirty
    results: List[Optional[MergeTrace]] = []
    start, stop = bounds
    perf_start = time.perf_counter() if context.telemetry else 0.0
    tainted = 0
    for index in range(start, stop):
        members = candidate_sets[index]
        # The footprint must be taken *before* simulating: the group's
        # writes re-key (and can delete) entries of exactly these roots.
        footprint = state.group_footprint(members)
        if local_dirty and not local_dirty.isdisjoint(footprint):
            results.append(None)
            tainted += 1
            continue
        trace: MergeTrace = []
        process_candidate_set(
            state, members, context.threshold, context.config,
            seed=context.seeds[index], trace=trace,
        )
        if trace:
            local_dirty.update(footprint)
        results.append(trace)
    if not context.telemetry:
        return results, None
    seconds = time.perf_counter() - perf_start
    shard_metrics = MetricsRegistry()
    shard_metrics.histogram("slugger_decide_shard_seconds").observe(seconds)
    shard_metrics.counter("slugger_decide_groups_total").inc(stop - start)
    if tainted:
        shard_metrics.counter("slugger_decide_tainted_total").inc(tainted)
    return results, {
        "metrics": shard_metrics.snapshot(),
        "perf_start": perf_start,
        "seconds": seconds,
        "bounds": bounds,
        "tainted": tainted,
    }


# ----------------------------------------------------------------------
# Pipeline phases
# ----------------------------------------------------------------------
class ShinglePhase:
    """Draw the candidate seed; batch-compute first-round shingles in shards.

    The pre-computation runs only when it can pay for its dispatch: a
    parallel execution is configured, the graph clears the size floor,
    and the first shingle round is guaranteed to take the bulk path
    (more roots than the candidate-size cap).  Injected or not, the
    cache contents are bit-identical to what candidate generation would
    compute on its own.
    """

    name = "shingle"

    def run(self, ctx: IterationContext) -> None:
        ctx.candidate_seed = ctx.rng.randrange(2**61)
        execution = ctx.execution
        state = ctx.state
        if (
            execution is None
            or not execution.parallel
            or state.dense is None
            or state.dense.num_nodes < execution.shingle_parallel_min_nodes
            or len(state.roots) <= ctx.config.max_candidate_size
            or ctx.config.shingle_rounds < 1
        ):
            return
        # The first in-function draw of generate_candidate_sets for this
        # seed is the first round's hash-function seed; preview it so the
        # pre-built cache lands under the right key.
        first_round_seed = ensure_rng(ctx.candidate_seed).randrange(2**61)
        bounds = shard_bounds(state.dense.num_nodes, execution.workers)
        executor = ctx.shingle_executor
        if executor is None:
            # The context (frozen CSR + labels) is immutable for the whole
            # run, so the pool is forked once and reused every iteration;
            # the driver closes it when the run ends.
            csr = state.csr_view()
            labels = state.dense.index.labels()
            executor = ctx.shingle_executor = executor_for(
                execution, len(bounds), context=(csr, labels)
            )
        shingles = sharded_shingles(executor, bounds, first_round_seed)
        ctx.shingle_caches[first_round_seed] = DenseShingleCache.from_shingles(
            state.dense, first_round_seed, shingles
        )


class GroupPhase:
    """Form candidate root sets and draw one merge seed per set.

    Seeds are drawn up front in canonical set order — the exact sequence
    the serial reference consumes interleaved with processing — so the
    run's RNG stream is independent of how the later phases execute.
    """

    name = "group"

    def run(self, ctx: IterationContext) -> None:
        state = ctx.state
        ctx.candidate_sets = generate_candidate_sets(
            ctx.graph,
            state.summary.hierarchy,
            sorted(state.roots),
            ctx.config,
            seed=ctx.candidate_seed,
            dense=state.dense,
            shingle_caches=ctx.shingle_caches,
        )
        rng = ctx.rng
        ctx.merge_seeds = [rng.randrange(2**61) for _ in ctx.candidate_sets]


class DecidePhase:
    """Fork workers against the iteration-start state and start deciding.

    The phase only *launches* the shard computation (the result iterator
    is lazy), so the apply phase can consume early chunks while later
    ones are still running.  All worker processes are forked before this
    phase returns, pinning their snapshot to the pre-apply state.  On
    serial configurations the phase is a no-op and the apply phase runs
    the serial reference loop directly.

    Zero-threshold iterations under the ``serial_zero_threshold``
    heuristic — where near-every group merges and optimistic decisions
    would be discarded — instead try a *colored* sweep
    (``colored_zero_threshold``): when the first independent class of
    the group interaction graph is big enough, the phase hands it to the
    apply phase, which runs :func:`~repro.core.coloring
    .colored_apply_sweep` in rounds.  When coloring degenerates (class
    below ``colored_min_class``) the phase falls back to the optimistic
    replay launch below; with the colored path disabled it stays a
    no-op, exactly as before.
    """

    name = "decide"

    def run(self, ctx: IterationContext) -> None:
        execution = ctx.execution
        if execution is None or not execution.parallel:
            return
        groups = len(ctx.candidate_sets)
        if execution.effective_workers(groups) <= 1:
            return
        if execution.serial_zero_threshold and ctx.threshold <= 0.0:
            if not execution.colored_zero_threshold:
                return
            ready = first_color_class(ctx.state, ctx.candidate_sets)
            if len(ready) >= execution.colored_min_class:
                ctx.colored_ready = ready
                return
            # Degenerate coloring: the optimistic replay path below is
            # still exact (every trace is conflict-checked at apply
            # time), just less likely to pay off.
        chunks = shard_bounds(groups, execution.workers * execution.chunks_per_worker)
        context = _DecideContext(
            ctx.state, ctx.candidate_sets, ctx.threshold, ctx.config, ctx.merge_seeds,
            telemetry=ctx.metrics.enabled or ctx.tracer.enabled,
        )
        ctx.executor = executor_for(execution, groups, context=context)
        ctx.decisions = ctx.executor.map_shards(_decide_shard, chunks)


class ApplyPhase:
    """Apply merges serially in canonical group order.

    Without decisions (serial mode) this is the reference loop: process
    every candidate set with its pre-drawn seed.  With decisions, each
    group's trace is replayed iff the conflict check certifies that the
    worker decided it against state indistinguishable from what the
    serial reference would have seen; otherwise the group is processed
    serially, which is exactly the reference computation.  ``dirty``
    tracks the footprints of all groups that merged anything — the roots
    on which the real state has moved past the iteration-start snapshot.

    When the decide phase handed over a colored first class instead
    (zero-threshold iterations), the whole iteration is delegated to
    :func:`~repro.core.coloring.colored_apply_sweep`, whose class
    construction makes every replay structurally exact.
    """

    name = "apply"

    def run(self, ctx: IterationContext) -> None:
        state = ctx.state
        config = ctx.config
        threshold = ctx.threshold
        seeds = ctx.merge_seeds
        candidate_sets = ctx.candidate_sets
        if ctx.colored_ready is not None:
            ctx.merges = colored_apply_sweep(
                state, candidate_sets, seeds, threshold, config,
                ctx.execution, ctx.stats, first_ready=ctx.colored_ready,
                tracer=ctx.tracer,
            )
            ctx.stats["groups"] += len(candidate_sets)
            ctx.stats["parallel_iterations"] += 1
            return
        if ctx.decisions is None:
            merges = 0
            for index, members in enumerate(candidate_sets):
                merges += process_candidate_set(
                    state, members, threshold, config, seed=seeds[index]
                )
            ctx.merges = merges
            ctx.stats["groups"] += len(candidate_sets)
            return

        merges = 0
        dirty: Set[int] = set()
        index = 0
        shard_number = 0
        for chunk, shard_info in ctx.decisions:
            if shard_info is not None:
                # Per-shard registries merge order-independently, and the
                # shard's raw perf_counter interval lands on the parent
                # timeline (CLOCK_MONOTONIC is system-wide across a fork).
                ctx.metrics.merge(shard_info["metrics"])
                ctx.tracer.add(
                    "decide-shard",
                    perf_start=shard_info["perf_start"],
                    duration=shard_info["seconds"],
                    lane=f"shard-{shard_number}",
                    groups=shard_info["bounds"][1] - shard_info["bounds"][0],
                    tainted=shard_info["tainted"],
                )
            shard_number += 1
            for trace in chunk:
                members = candidate_sets[index]
                footprint: Optional[Set[int]] = None
                valid = trace is not None
                if valid and dirty:
                    # Live maps are safe to read here: if any member was
                    # touched by an earlier merge it is itself in ``dirty``
                    # (members are always part of a writer's footprint),
                    # and members ⊆ footprint makes the single disjointness
                    # test catch it before any re-keyed entry could be
                    # misread.
                    footprint = state.group_footprint(members)
                    valid = dirty.isdisjoint(footprint)
                if valid:
                    ctx.stats["replayed"] += 1
                    if trace:
                        if footprint is None:
                            footprint = state.group_footprint(members)
                        merges += apply_merge_trace(state, trace, config)
                        dirty.update(footprint)
                else:
                    ctx.stats["fallbacks"] += 1
                    if footprint is None:
                        footprint = state.group_footprint(members)
                    fallback_trace: MergeTrace = []
                    merges += process_candidate_set(
                        state, members, threshold, config,
                        seed=seeds[index], trace=fallback_trace,
                    )
                    if fallback_trace:
                        dirty.update(footprint)
                index += 1
        ctx.merges = merges
        ctx.stats["groups"] += len(candidate_sets)
        ctx.stats["parallel_iterations"] += 1


class RecostPhase:
    """Record the iteration history entry; optionally verify invariants."""

    name = "recost"

    def run(self, ctx: IterationContext) -> None:
        history_entry = {
            "iteration": float(ctx.iteration),
            "threshold": ctx.threshold,
            "merges": float(ctx.merges),
            "roots": float(len(ctx.state.roots)),
            "cost": float(ctx.state.summary.cost()),
        }
        ctx.history.append(history_entry)
        if ctx.config.check_invariants:
            ctx.state.check_consistency()


class IterationPipeline:
    """The staged per-iteration pipeline SLUGGER's driver runs.

    Phases execute in order against a shared :class:`IterationContext`;
    each phase runs inside one tracer span and its duration accumulates
    into ``ctx.phase_seconds`` — the span *is* the measurement, so the
    per-phase numbers in :class:`SluggerResult`, the progress events,
    and the trace file can never drift apart.  (The null tracer's spans
    still self-time, so the disabled path measures identically.)  The
    executor opened by the decide phase is closed when the iteration
    ends, successfully or not.
    """

    def __init__(self) -> None:
        self.phases = (
            ShinglePhase(), GroupPhase(), DecidePhase(), ApplyPhase(), RecostPhase()
        )

    def run_iteration(self, ctx: IterationContext, iteration: int) -> None:
        ctx.begin_iteration(iteration)
        try:
            for phase in self.phases:
                with ctx.tracer.span(phase.name, iteration=iteration) as span:
                    phase.run(ctx)
                ctx.phase_seconds[phase.name] = (
                    ctx.phase_seconds.get(phase.name, 0.0) + span.duration
                )
        finally:
            ctx.close_executor()


class Slugger:
    """Scalable lossless summarization of graphs with hierarchy.

    ``execution`` selects how the pipeline's parallelizable phases run
    (see :class:`~repro.engine.execution.ExecutionConfig`); the default
    keeps everything on the serial reference path.  For a fixed seed the
    summary is bit-identical under every execution configuration.

    Examples
    --------
    >>> from repro.graphs import caveman_graph
    >>> graph = caveman_graph(4, 5, seed=0)
    >>> result = Slugger(SluggerConfig(iterations=5, seed=0)).summarize(graph)
    >>> result.summary.validate(graph)
    >>> result.cost() < graph.num_edges
    True
    """

    def __init__(
        self,
        config: Optional[SluggerConfig] = None,
        execution: Optional[ExecutionConfig] = None,
        **overrides,
    ) -> None:
        if config is None:
            config = SluggerConfig(**overrides)
        elif overrides:
            raise TypeError("pass either a config object or keyword overrides, not both")
        self.config = config
        self.execution = execution
        self.pipeline = IterationPipeline()

    def summarize(
        self,
        graph: Graph,
        control: Optional[RunControl] = None,
        resources: Optional[GraphResources] = None,
    ) -> SluggerResult:
        """Summarize ``graph`` under the hierarchical model (Problem 1).

        ``control`` receives one progress event per iteration and its
        cancel token is checked *between* iterations (a cancelled run
        raises :class:`~repro.exceptions.JobCancelled`; no partial
        summary escapes).  ``resources`` supplies prebuilt substrate
        views and a warm shingle pool (service graph-store interning);
        both default to ``None`` and cannot change the summary.

        Checkpoint/resume rides on ``control`` too: when it carries a
        ``checkpoint_sink``, the run hands over an iteration-boundary
        snapshot (summary, RNG stream position, history so far) after
        every iteration; when it carries a ``resume_payload``, the run
        restores that snapshot and continues at iteration ``k + 1``.
        Because every random draw of a run comes from the single
        ``ensure_rng(seed)`` stream and each iteration consumes a
        deterministic prefix of it, restoring the summary plus the RNG
        state at a boundary makes the resumed run bit-identical to the
        uninterrupted one.
        """
        require_type(graph, Graph, "graph")
        config = self.config
        started = time.perf_counter()
        rng = ensure_rng(config.seed)
        metrics = control.metrics if control is not None else NULL_METRICS
        tracer = control.tracer if control is not None else NULL_TRACER
        telemetry = metrics.enabled or tracer.enabled

        use_resources = resources is not None and config.use_dense_substrate
        state = SluggerState(
            graph,
            build_dense=config.use_dense_substrate,
            dense=resources.dense() if use_resources else None,
            csr=resources.csr() if use_resources else None,
        )
        history: List[Dict[str, float]] = []
        phase_seconds: Dict[str, float] = {}
        stats: Dict[str, int] = {
            "groups": 0, "replayed": 0, "fallbacks": 0, "parallel_iterations": 0,
            "colored_rounds": 0, "colored_replayed": 0, "colored_serial": 0,
        }

        start_iteration = 0
        resume = control.resume_payload if control is not None else None
        if resume is not None and graph.num_edges > 0:
            state.restore_summary(resume["summary"])
            rng.setstate(resume["rng_state"])
            history.extend(resume["history"])
            start_iteration = min(int(resume["iteration"]), config.iterations)

        if graph.num_edges > 0:
            ctx = IterationContext(
                graph=graph,
                state=state,
                config=config,
                execution=self.execution,
                rng=rng,
                phase_seconds=phase_seconds,
                stats=stats,
                history=history,
                metrics=metrics,
                tracer=tracer,
            )
            if resources is not None:
                warm_pool = resources.shingle_executor(self.execution)
                if warm_pool is not None:
                    ctx.shingle_executor = warm_pool
                    ctx.owns_shingle_executor = False
            try:
                for iteration in range(start_iteration + 1, config.iterations + 1):
                    if control is not None:
                        control.checkpoint()
                    phase_before = dict(phase_seconds) if telemetry else None
                    with tracer.span("iteration", number=iteration):
                        self.pipeline.run_iteration(ctx, iteration)
                    if telemetry:
                        # One measurement source: the per-phase numbers
                        # below are the span durations run_iteration just
                        # accumulated, so events/metrics cannot drift
                        # from ``SluggerResult.phase_seconds``.
                        deltas = {
                            name: phase_seconds.get(name, 0.0)
                                  - phase_before.get(name, 0.0)
                            for name in PHASE_NAMES
                        }
                        for name in PHASE_NAMES:
                            metrics.histogram(
                                "slugger_phase_seconds", phase=name
                            ).observe(deltas[name])
                        metrics.counter("slugger_iterations_total").inc()
                        metrics.counter("slugger_merges_total").inc(ctx.merges)
                        if control is not None:
                            control.emit("phases", iteration=iteration,
                                         seconds=deltas)
                    if control is not None:
                        entry = history[-1]
                        control.emit(
                            "iteration",
                            iteration=iteration,
                            iterations=config.iterations,
                            threshold=entry["threshold"],
                            merges=int(entry["merges"]),
                            roots=int(entry["roots"]),
                            cost=int(entry["cost"]),
                        )
                        control.save_checkpoint({
                            "iteration": iteration,
                            "summary": state.summary,
                            "rng_state": rng.getstate(),
                            "history": history,
                        })
            finally:
                ctx.close_run()

        prune_stats: Dict[str, int] = {}
        prune_profile: Dict[str, object] = {}
        if config.prune:
            if control is not None:
                control.checkpoint()
            with tracer.span("prune") as prune_span:
                prune_stats = prune(
                    graph, state.summary, rounds=config.prune_rounds,
                    execution=self.execution, profile=prune_profile,
                )
            phase_seconds["prune"] = prune_span.duration
            if telemetry:
                metrics.histogram("slugger_phase_seconds", phase="prune").observe(
                    prune_span.duration
                )
            if control is not None:
                control.emit("prune", cost=int(state.summary.cost()))

        if config.validate_output:
            state.summary.validate(graph)

        if telemetry:
            # Replay/fallback/colored counters: one counter per
            # execution-stats key, so parallel efficiency is visible in
            # any exporter without reading SluggerResult.
            for key in sorted(stats):
                if stats[key]:
                    metrics.counter(f"slugger_{key}_total").inc(stats[key])
            metrics.gauge("slugger_final_cost").set(float(state.summary.cost()))

        return SluggerResult(
            summary=state.summary,
            config=config,
            history=history,
            prune_stats=prune_stats,
            prune_profile=prune_profile,
            runtime_seconds=time.perf_counter() - started,
            phase_seconds=phase_seconds,
            execution_stats=stats,
        )


def summarize(
    graph: Graph,
    config: Optional[SluggerConfig] = None,
    execution: Optional[ExecutionConfig] = None,
    control: Optional[RunControl] = None,
    resources: Optional[GraphResources] = None,
    **overrides,
) -> SluggerResult:
    """Convenience wrapper: ``Slugger(config, execution, **overrides).summarize(graph)``."""
    return Slugger(config, execution=execution, **overrides).summarize(
        graph, control=control, resources=resources
    )
