"""Mutable summarization state maintained while SLUGGER runs.

Besides the summary under construction, the state keeps per-root
bookkeeping that the merging step relies on:

* ``root_adj``  — for every pair of root trees, the number of subedges of
  the input graph between their leaf sets (the superneighbor counts that
  make saving evaluation O(degree) instead of O(|E|));
* ``pn_count`` — for every pair of root trees, the number of p/n-edges of
  the current encoding between them (``Cost^P_{A,B}`` of Eq. 4);
* ``pn_edges`` — the actual superedges between every pair of root trees,
  so a local re-encoding can remove them without scanning the summary;
* ``tree_h`` / ``tree_height`` — per-root hierarchy-edge counts
  (``Cost^H_A`` of Eq. 3) and tree heights (for the ``H_b`` variant).

Per-root leaf sets and leaf counts are maintained incrementally by the
hierarchy itself (see :class:`~repro.model.hierarchy.Hierarchy`):
``create_parent`` extends the memoized leaf index on every merge, so
:meth:`leaf_count` and :meth:`leaf_subnodes` are O(1)/O(size) lookups
rather than tree walks.  :meth:`check_consistency` cross-checks that
index against a fresh traversal along with the superedge counters.
"""

from __future__ import annotations

from types import MappingProxyType
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Set, Tuple

from repro.exceptions import SummaryInvariantError
from repro.graphs.dense import CSRAdjacency, DenseAdjacency
from repro.graphs.graph import Graph
from repro.graphs.staleness import ensure_fresh_views
from repro.model.summary import HierarchicalSummary

__all__ = ["SluggerState", "StateSnapshot"]

Subnode = Hashable
RootPair = Tuple[int, int]


def _pair(a: int, b: int) -> RootPair:
    return (a, b) if a <= b else (b, a)


def _group_footprint(
    root_adj: Mapping[int, Dict[int, int]],
    pn_count: Mapping[int, Dict[int, int]],
    members: Iterable[int],
) -> Set[int]:
    """Roots whose state processing ``members`` as one candidate group may
    read or write: the members plus every root adjacent to one of them
    through a subedge or a p/n-edge.  Merging within the group can only
    touch state of roots in this set — merges combine member trees
    (their adjacency never grows during the group's own processing), and
    re-encodings only rewrite superedges between the merged tree and its
    direct neighbors.  Shared by :class:`SluggerState` (the live reads of
    the decide workers and the apply phase) and :class:`StateSnapshot`.
    """
    footprint: Set[int] = set(members)
    for member in members:
        footprint.update(root_adj[member])
        footprint.update(pn_count[member])
    return footprint


class StateSnapshot:
    """Cheap read-only view over a :class:`SluggerState`.

    The snapshot exposes the per-root counters through immutable mapping
    proxies (zero copies except the root set, which is frozen at
    construction), so read-only consumers — diagnostics, tests, future
    read-only phases — can be handed a view that cannot rebind or
    replace any index.  It is a *view*, not a deep freeze: the proxied
    mappings track the underlying state, and the inner per-root counter
    dictionaries stay shared.  For a true point-in-time image across
    process boundaries, the execution layer forks the process instead
    (copy-on-write), which is cheaper than any explicit copy; the decide
    and apply phases read footprints straight off the live state via the
    same :func:`_group_footprint` helper this view uses.
    """

    __slots__ = ("roots", "root_adj", "pn_count", "pn_total",
                 "tree_h", "tree_height", "num_edges")

    def __init__(self, state: "SluggerState") -> None:
        assign = object.__setattr__
        assign(self, "roots", frozenset(state.roots))
        assign(self, "root_adj", MappingProxyType(state.root_adj))
        assign(self, "pn_count", MappingProxyType(state.pn_count))
        assign(self, "pn_total", MappingProxyType(state.pn_total))
        assign(self, "tree_h", MappingProxyType(state.tree_h))
        assign(self, "tree_height", MappingProxyType(state.tree_height))
        assign(self, "num_edges", state.graph.num_edges)

    def __setattr__(self, name: str, value) -> None:
        raise AttributeError(f"StateSnapshot is read-only (cannot set {name!r})")

    def __delattr__(self, name: str) -> None:
        raise AttributeError(f"StateSnapshot is read-only (cannot delete {name!r})")

    def group_footprint(self, members: Iterable[int]) -> Set[int]:
        """Roots whose state the processing of ``members`` may read or write
        (see :func:`_group_footprint`)."""
        return _group_footprint(self.root_adj, self.pn_count, members)


class SluggerState:
    """All mutable data SLUGGER needs while merging root supernodes.

    With ``build_dense=True`` (default) the state also mirrors the input
    graph onto the dense integer-id substrate.  Because
    :meth:`HierarchicalSummary.from_graph` numbers leaf supernodes
    ``0..n-1`` in graph order — the same order
    :meth:`DenseAdjacency.from_graph` assigns node ids — *dense node id
    == leaf supernode id*, so shingle rounds, candidate generation, and
    the local encoder work directly on leaf ids with no label lookups.
    """

    def __init__(
        self,
        graph: Graph,
        build_dense: bool = True,
        dense: Optional[DenseAdjacency] = None,
        csr: Optional[CSRAdjacency] = None,
        summary: Optional[HierarchicalSummary] = None,
    ) -> None:
        self.graph = graph
        self.summary = summary if summary is not None else HierarchicalSummary.from_graph(graph)
        hierarchy = self.summary.hierarchy
        ensure_fresh_views(graph.num_edges, dense=dense, csr=csr)
        # A prebuilt substrate (service graph-store interning) is used as
        # is; its construction is deterministic in the graph, so injected
        # and self-built runs are bit-identical.
        self.dense: Optional[DenseAdjacency] = (
            dense if dense is not None
            else DenseAdjacency.from_graph(graph) if build_dense
            else None
        )
        self._csr: Optional[CSRAdjacency] = csr if self.dense is not None else None

        self.roots: Set[int] = set(hierarchy.roots())
        self.root_adj: Dict[int, Dict[int, int]] = {root: {} for root in self.roots}
        self.pn_count: Dict[int, Dict[int, int]] = {root: {} for root in self.roots}
        # Incrementally maintained Cost^P_A per root (the sum of the
        # root's pn_count map), so saving evaluation reads it in O(1)
        # instead of re-summing a dict per candidate pair.
        self.pn_total: Dict[int, int] = {root: 0 for root in self.roots}
        self.pn_edges: Dict[RootPair, Set[Tuple[int, int, int]]] = {}
        self.tree_h: Dict[int, int] = {root: 0 for root in self.roots}
        self.tree_height: Dict[int, int] = {root: 0 for root in self.roots}

        if self.dense is not None:
            # Node id == leaf id, so the initial superedges and adjacency
            # counters can be registered without any label resolution.
            for leaf_u, leaf_v in self.dense.edge_ids():
                self._bump_adj(leaf_u, leaf_v, 1)
                self._register_superedge(leaf_u, leaf_v, leaf_u, leaf_v, 1, delta=1)
        else:
            for u, v in graph.edges():
                leaf_u = hierarchy.leaf_of(u)
                leaf_v = hierarchy.leaf_of(v)
                self._bump_adj(leaf_u, leaf_v, 1)
                self._register_superedge(leaf_u, leaf_v, leaf_u, leaf_v, 1, delta=1)

    @classmethod
    def from_substrate(cls, index, csr) -> "SluggerState":
        """Initialize straight from an ``(index, csr)`` substrate pair.

        This is the ``--cache-dir`` hit path: the graph facade is a
        read-only :class:`~repro.graphs.view.CSRGraphView` (per-row thaw
        on demand), the dense mirror is a
        :class:`~repro.graphs.dense.LazyDenseAdjacency` over the same
        CSR, and the initial summary comes from
        :meth:`HierarchicalSummary.from_substrate` — so no label-keyed
        graph is materialized and no dense row is thawed to build the
        state.  Results are bit-identical to a run over the equivalent
        materialized graph because ids, edge order, and leaf numbering
        all follow the index order either way.
        """
        from repro.graphs.dense import LazyDenseAdjacency
        from repro.graphs.view import CSRGraphView

        graph = CSRGraphView(csr, index)
        return cls(
            graph,
            dense=LazyDenseAdjacency(csr),
            csr=csr,
            summary=HierarchicalSummary.from_substrate(index, csr),
        )

    def restore_summary(self, summary: HierarchicalSummary) -> None:
        """Adopt a checkpointed summary, rebuilding every per-root index.

        This is the resume path: the summary comes from a checkpoint
        container whose hierarchy was rebuilt in ascending-id order
        (:meth:`~repro.model.hierarchy.Hierarchy.from_parts`), so its
        iteration orders match the interrupted run's exactly.  The
        indices are reconstructed from the ground truth the same way
        :meth:`check_consistency` derives its expectations: ``root_adj``
        from the input edges, ``pn_count``/``pn_edges``/``pn_total``
        from the summary's superedges, ``tree_h`` from the subtree
        supernode counts and ``tree_height`` from the tree heights.
        Rebuild order is deterministic (sorted roots, sorted superedge
        pairs), so a resumed state is bit-compatible with the one the
        uninterrupted run would have carried.
        """
        hierarchy = summary.hierarchy
        self.summary = summary
        self.roots = set(hierarchy.roots())
        self.root_adj = {root: {} for root in sorted(self.roots)}
        self.pn_count = {root: {} for root in sorted(self.roots)}
        self.pn_total = {root: 0 for root in sorted(self.roots)}
        self.pn_edges = {}
        leaf_root = [0] * hierarchy.num_subnodes
        for root in sorted(self.roots):
            for leaf in hierarchy.leaf_id_view(root):
                leaf_root[leaf] = root
        if self.dense is not None:
            # Node id == leaf id on the dense substrate (both follow
            # graph insertion order), so edges map straight to roots.
            for leaf_u, leaf_v in self.dense.edge_ids():
                self._bump_adj(leaf_root[leaf_u], leaf_root[leaf_v], 1)
        else:
            leaf_of = hierarchy.leaf_of
            for u, v in self.graph.edges():
                self._bump_adj(leaf_root[leaf_of(u)], leaf_root[leaf_of(v)], 1)
        for edges, sign in ((sorted(summary.p_edges()), 1), (sorted(summary.n_edges()), -1)):
            for x, y in edges:
                self._register_superedge(
                    hierarchy.root_of(x), hierarchy.root_of(y), x, y, sign, delta=1,
                )
        self.tree_h = {}
        self.tree_height = {}
        for root in sorted(self.roots):
            # Cost^H_A = (#supernodes in the tree) - 1 hierarchy edges.
            subtree = sum(1 for _ in hierarchy.descendants(root))
            self.tree_h[root] = subtree - 1
            self.tree_height[root] = hierarchy.height(root)

    # ------------------------------------------------------------------
    # Internal index maintenance
    # ------------------------------------------------------------------
    def _bump_adj(self, root_a: int, root_b: int, delta: int) -> None:
        self.root_adj[root_a][root_b] = self.root_adj[root_a].get(root_b, 0) + delta
        if root_a != root_b:
            self.root_adj[root_b][root_a] = self.root_adj[root_b].get(root_a, 0) + delta

    def _bump_pn(self, root_a: int, root_b: int, delta: int) -> None:
        counts_a = self.pn_count[root_a]
        counts_a[root_b] = counts_a.get(root_b, 0) + delta
        if counts_a[root_b] == 0:
            del counts_a[root_b]
        self.pn_total[root_a] += delta
        if root_a != root_b:
            counts_b = self.pn_count[root_b]
            counts_b[root_a] = counts_b.get(root_a, 0) + delta
            if counts_b[root_a] == 0:
                del counts_b[root_a]
            self.pn_total[root_b] += delta

    def _register_superedge(
        self, root_a: int, root_b: int, x: int, y: int, sign: int, delta: int
    ) -> None:
        pair = _pair(root_a, root_b)
        record = (x, y, sign) if x <= y else (y, x, sign)
        bucket = self.pn_edges.setdefault(pair, set())
        if delta > 0:
            bucket.add(record)
        else:
            bucket.discard(record)
            if not bucket:
                del self.pn_edges[pair]
        self._bump_pn(root_a, root_b, delta)

    # ------------------------------------------------------------------
    # Superedge mutation (roots supplied by the caller to avoid tree walks)
    # ------------------------------------------------------------------
    def add_superedge(self, root_a: int, root_b: int, x: int, y: int, sign: int) -> None:
        """Add the superedge ``{x, y}`` (with ``sign``) between the given root trees."""
        self.summary.add_edge(x, y, sign)
        self._register_superedge(root_a, root_b, x, y, sign, delta=1)

    def remove_superedge(self, root_a: int, root_b: int, x: int, y: int, sign: int) -> None:
        """Remove the superedge ``{x, y}`` (with ``sign``) between the given root trees."""
        if not self.summary.remove_edge(x, y, sign):
            raise SummaryInvariantError(f"superedge ({x}, {y}, {sign}) is not in the summary")
        self._register_superedge(root_a, root_b, x, y, sign, delta=-1)

    def remove_all_between(self, root_a: int, root_b: int) -> int:
        """Remove every superedge between two root trees; returns how many were removed."""
        pair = _pair(root_a, root_b)
        records = list(self.pn_edges.get(pair, ()))
        for x, y, sign in records:
            self.remove_superedge(root_a, root_b, x, y, sign)
        return len(records)

    # ------------------------------------------------------------------
    # Cost accessors (Eqs. 3-6)
    # ------------------------------------------------------------------
    def subedges_between(self, root_a: int, root_b: int) -> int:
        """Number of input-graph subedges between two root trees (or within one)."""
        return self.root_adj[root_a].get(root_b, 0)

    def pn_cost_between(self, root_a: int, root_b: int) -> int:
        """Cost^P_{A,B}: p/n-edges currently encoding the pair of root trees."""
        return self.pn_count[root_a].get(root_b, 0)

    def pn_cost_of(self, root: int) -> int:
        """Cost^P_A: p/n-edges incident to any supernode of the root's tree (O(1))."""
        return self.pn_total[root]

    def cost_of(self, root: int) -> int:
        """Cost_A = Cost^H_A + Cost^P_A (Eq. 6)."""
        return self.tree_h[root] + self.pn_total[root]

    def neighbor_roots(self, root: int) -> Set[int]:
        """Roots whose trees share a subedge or a superedge with ``root``'s tree."""
        neighbors = set(self.root_adj[root]) | set(self.pn_count[root])
        neighbors.discard(root)
        return neighbors

    def leaf_count(self, root: int) -> int:
        """Number of subnodes in ``root``'s tree (O(1), maintained on merges)."""
        return self.summary.hierarchy.size(root)

    def leaf_subnodes(self, root: int) -> List[Subnode]:
        """Subnodes of ``root``'s tree, served from the hierarchy's leaf index."""
        return self.summary.hierarchy.leaf_subnodes(root)

    def snapshot(self) -> StateSnapshot:
        """A read-only view of the per-root indices (see :class:`StateSnapshot`)."""
        return StateSnapshot(self)

    def csr_view(self) -> CSRAdjacency:
        """The frozen CSR view of the input graph (built once, then cached).

        The input adjacency never changes during a SLUGGER run, so the
        view is safe to share with read-only phases (batch shingle
        sweeps) across all iterations.
        """
        if self.dense is None:
            raise SummaryInvariantError(
                "the CSR view requires the dense substrate (build_dense=True)"
            )
        if self._csr is None:
            self._csr = self.dense.freeze()
        return self._csr

    def group_footprint(self, members: Iterable[int]) -> Set[int]:
        """Roots whose state processing ``members`` as one candidate group
        may read or write (see :func:`_group_footprint`)."""
        return _group_footprint(self.root_adj, self.pn_count, members)

    # ------------------------------------------------------------------
    # Merging
    # ------------------------------------------------------------------
    def merge_roots(self, root_a: int, root_b: int) -> int:
        """Create a new root supernode containing ``root_a`` and ``root_b``.

        All per-root indices are re-keyed onto the new root.  The
        superedges themselves are not touched — re-encoding them is the
        merging step's job.
        """
        if root_a == root_b:
            raise SummaryInvariantError("cannot merge a root with itself")
        if root_a not in self.roots or root_b not in self.roots:
            raise SummaryInvariantError("both supernodes must be current roots to merge")
        hierarchy = self.summary.hierarchy
        merged = hierarchy.create_parent([root_a, root_b])

        self.roots.discard(root_a)
        self.roots.discard(root_b)
        self.roots.add(merged)

        self.tree_h[merged] = self.tree_h.pop(root_a) + self.tree_h.pop(root_b) + 2
        self.tree_height[merged] = 1 + max(
            self.tree_height.pop(root_a), self.tree_height.pop(root_b)
        )

        self.root_adj[merged] = self._merge_counter_maps(self.root_adj, root_a, root_b, merged)
        self.pn_count[merged] = self._merge_counter_maps(self.pn_count, root_a, root_b, merged)
        self.pn_total.pop(root_a)
        self.pn_total.pop(root_b)
        self.pn_total[merged] = sum(self.pn_count[merged].values())
        self._rekey_pn_edges(root_a, root_b, merged)
        return merged

    def _merge_counter_maps(
        self, table: Dict[int, Dict[int, int]], root_a: int, root_b: int, merged: int
    ) -> Dict[int, int]:
        """Combine the per-root counter maps of two roots into the merged root."""
        map_a = table.pop(root_a)
        map_b = table.pop(root_b)
        combined: Dict[int, int] = {}
        intra = map_a.pop(root_a, 0) + map_b.pop(root_b, 0)
        intra += map_a.pop(root_b, 0)
        map_b.pop(root_a, 0)
        if intra:
            combined[merged] = intra
        for source in (map_a, map_b):
            for other, value in source.items():
                combined[other] = combined.get(other, 0) + value
        for other in combined:
            if other == merged:
                continue
            other_map = table[other]
            other_map.pop(root_a, None)
            other_map.pop(root_b, None)
            other_map[merged] = combined[other]
        return combined

    def _rekey_pn_edges(self, root_a: int, root_b: int, merged: int) -> None:
        """Move superedge buckets keyed by the old roots onto the merged root.

        The affected pairs are enumerated from the merged root's counter
        map (already re-keyed by :meth:`_merge_counter_maps`), so this is
        O(degree of the merged root) instead of a scan over every bucket.
        """
        candidates: List[RootPair] = []
        for other in self.pn_count.get(merged, ()):
            if other == merged:
                candidates.append((root_a, root_a))
                candidates.append((root_b, root_b))
                candidates.append(_pair(root_a, root_b))
            else:
                candidates.append(_pair(root_a, other))
                candidates.append(_pair(root_b, other))
        for pair in candidates:
            records = self.pn_edges.pop(pair, None)
            if records is None:
                continue
            first, second = pair
            new_first = merged if first in (root_a, root_b) else first
            new_second = merged if second in (root_a, root_b) else second
            new_pair = _pair(new_first, new_second)
            self.pn_edges.setdefault(new_pair, set()).update(records)

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def total_cost(self) -> int:
        """Encoding cost of the current summary (Eq. 1)."""
        return self.summary.cost()

    def check_consistency(self) -> None:
        """Verify the internal indices against the summary (used by tests).

        Raises :class:`SummaryInvariantError` when a counter drifts from
        the ground truth; this is O(|summary|) and meant for small graphs.
        """
        hierarchy = self.summary.hierarchy
        expected_pn: Dict[RootPair, int] = {}
        for edges, sign in ((self.summary.p_edges(), 1), (self.summary.n_edges(), -1)):
            for x, y in edges:
                pair = _pair(hierarchy.root_of(x), hierarchy.root_of(y))
                expected_pn[pair] = expected_pn.get(pair, 0) + 1
        for pair, count in expected_pn.items():
            stored = self.pn_count[pair[0]].get(pair[1], 0)
            if stored != count:
                raise SummaryInvariantError(
                    f"pn_count for root pair {pair} is {stored}, expected {count}"
                )
        for root_a, counters in self.pn_count.items():
            for root_b, stored in counters.items():
                if expected_pn.get(_pair(root_a, root_b), 0) != stored:
                    raise SummaryInvariantError(
                        f"stale pn_count entry for root pair ({root_a}, {root_b})"
                    )
        for root, counters in self.pn_count.items():
            if self.pn_total.get(root) != sum(counters.values()):
                raise SummaryInvariantError(
                    f"pn_total for root {root} is {self.pn_total.get(root)}, "
                    f"expected {sum(counters.values())}"
                )
        if set(self.pn_total) != set(self.pn_count):
            raise SummaryInvariantError("pn_total keys drifted from pn_count keys")
        expected_adj: Dict[RootPair, int] = {}
        for u, v in self.graph.edges():
            pair = _pair(
                hierarchy.root_of(hierarchy.leaf_of(u)), hierarchy.root_of(hierarchy.leaf_of(v))
            )
            expected_adj[pair] = expected_adj.get(pair, 0) + 1
        for pair, count in expected_adj.items():
            stored = self.root_adj[pair[0]].get(pair[1], 0)
            if stored != count:
                raise SummaryInvariantError(
                    f"root_adj for root pair {pair} is {stored}, expected {count}"
                )
        for pair, records in self.pn_edges.items():
            if not records:
                raise SummaryInvariantError(f"empty superedge bucket kept for root pair {pair}")
            for x, y, _sign in records:
                actual = _pair(hierarchy.root_of(x), hierarchy.root_of(y))
                if actual != pair:
                    raise SummaryInvariantError(
                        f"superedge ({x}, {y}) filed under root pair {pair}, belongs to {actual}"
                    )
            stored = self.pn_count[pair[0]].get(pair[1], 0)
            if stored != len(records):
                raise SummaryInvariantError(
                    f"pn_count for root pair {pair} is {stored}, "
                    f"but its bucket holds {len(records)} superedges"
                )
        hierarchy.verify_leaf_cache()
        if self.roots != set(hierarchy.roots()):
            raise SummaryInvariantError("the root index disagrees with the hierarchy")
        if self.dense is not None:
            if self.dense.num_edges != self.graph.num_edges:
                raise SummaryInvariantError("dense substrate edge count drifted from the graph")
            for node_id, label in enumerate(self.dense.index.labels()):
                if hierarchy.leaf_of(label) != node_id:
                    raise SummaryInvariantError(
                        f"dense id {node_id} (label {label!r}) does not match its leaf id"
                    )
