"""Developer tooling: the ``repro-lint`` static analyzer.

This package encodes the repository's invariants — determinism under
any ``PYTHONHASHSEED`` and worker count, fork-safety of shard-worker
code, and API hygiene — as AST rules that run in CI
(see :mod:`repro.devtools.lint` for the CLI and
:mod:`repro.devtools.rules` for the rule pack).

It is *developer* tooling: importing :mod:`repro` must never import
this package (``bench_hotpaths.py`` guards that), and nothing under
:mod:`repro.devtools` may be imported from serving paths.
"""

from __future__ import annotations

from repro.devtools.framework import (
    Finding,
    LintReport,
    Project,
    Rule,
    SourceModule,
    all_rules,
    lint_paths,
    register_rule,
    rule_ids,
)

__all__ = [
    "Finding",
    "LintReport",
    "Project",
    "Rule",
    "SourceModule",
    "all_rules",
    "lint_paths",
    "register_rule",
    "rule_ids",
]
