"""Checked-in baseline of grandfathered lint findings.

A baseline lets the analyzer land with a hard-failing CI gate even
before every legacy finding is fixed: findings whose key matches a
baseline entry are reported separately and do not fail the run.  The
committed baseline for this repository is **empty for src/repro** —
every finding the rule pack surfaced was fixed or given a justified
inline suppression — and the file exists so the mechanism stays
exercised and future grandfathering (e.g. vendored code) has a place
to live.

Keys are ``(rule, path, snippet)`` — the flagged line's text rather
than its number — so edits elsewhere in a file do not un-baseline an
entry (see :meth:`repro.devtools.framework.Finding.key`).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Set, Tuple

from repro.devtools.framework import Finding
from repro.exceptions import LintError

__all__ = ["load_baseline", "write_baseline"]

_VERSION = 1


def load_baseline(path) -> Set[Tuple[str, str, str]]:
    """Grandfathered finding keys from ``path`` (missing file → empty)."""
    path = Path(path)
    if not path.exists():
        return set()
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise LintError(f"cannot read baseline {path}: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("version") != _VERSION:
        raise LintError(
            f"baseline {path} has unsupported format (want version {_VERSION})"
        )
    entries = payload.get("findings", [])
    if not isinstance(entries, list):
        raise LintError(f"baseline {path}: 'findings' must be a list")
    keys: Set[Tuple[str, str, str]] = set()
    for entry in entries:
        try:
            keys.add((entry["rule"], entry["path"], entry["snippet"]))
        except (TypeError, KeyError) as exc:
            raise LintError(f"baseline {path}: malformed entry {entry!r}") from exc
    return keys


def write_baseline(path, findings: Iterable[Finding]) -> None:
    """Write ``findings`` as the new baseline at ``path`` (sorted, stable)."""
    entries: List[dict] = [
        {"rule": rule, "path": relpath, "snippet": snippet}
        for rule, relpath, snippet in sorted({f.key() for f in findings})
    ]
    payload = {"version": _VERSION, "findings": entries}
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
