"""A conservative static call graph rooted at shard-worker entry points.

The fork-safety rules need to know which functions can run inside a
forked :class:`~repro.engine.execution.ProcessShardExecutor` worker.
Worker functions are registered in exactly one way in this codebase —
passed as the function argument of an executor's ``map_shards(fn,
shards)`` call (the shards themselves come from ``shard_bounds``), so
the roots of the walk are precisely the resolved ``fn`` arguments of
every ``map_shards`` call site in the analyzed tree.

Resolution policy
-----------------
Python call graphs are undecidable statically; this one resolves only
edges it can justify, and drops the rest (under-approximation — a rule
built on it can miss exotic dispatch, but what it flags is real):

* bare names: module-level functions of the same module, or names
  brought in via ``from pkg.mod import name``;
* ``self.method(...)``: methods of the lexically enclosing class;
* ``obj.method(...)`` where ``obj`` is a parameter or local variable
  with a resolvable class annotation, or a local assigned directly from
  ``ClassName(...)``: methods of that class;
* ``alias.func(...)`` where ``alias`` comes from ``import pkg.mod as
  alias``: module-level functions of that module.

Attribute chains whose receiver type is unknown produce no edge.  The
walk is cached per :class:`~repro.devtools.framework.Project`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.devtools.framework import Project, SourceModule

__all__ = [
    "CallGraph",
    "FunctionInfo",
    "build_call_graph",
    "worker_reachable",
]


@dataclass
class FunctionInfo:
    """One function or method definition in the analyzed tree."""

    qualname: str  # "repro.core.slugger:_decide_shard" or "mod:Class.method"
    module: SourceModule
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    cls: Optional[str] = None  # enclosing class name, if a method
    calls: Set[str] = field(default_factory=set)  # resolved callee qualnames


class CallGraph:
    """Functions, resolved call edges, and worker-entry reachability."""

    def __init__(self) -> None:
        self.functions: Dict[str, FunctionInfo] = {}
        #: Worker entry points: resolved ``fn`` arguments of map_shards calls.
        self.entry_points: Set[str] = set()
        #: qualname → (parent qualname on a shortest path from an entry).
        self._reach_parent: Dict[str, Optional[str]] = {}

    def reachable(self) -> Dict[str, Optional[str]]:
        """Qualnames reachable from any worker entry point (BFS parents)."""
        if not self._reach_parent and self.entry_points:
            frontier = sorted(self.entry_points)
            self._reach_parent = {name: None for name in frontier}
            while frontier:
                nxt: List[str] = []
                for name in frontier:
                    info = self.functions.get(name)
                    if info is None:
                        continue
                    for callee in sorted(info.calls):
                        if callee not in self._reach_parent:
                            self._reach_parent[callee] = name
                            nxt.append(callee)
                frontier = nxt
        return self._reach_parent

    def chain(self, qualname: str) -> List[str]:
        """Entry-point → ... → ``qualname`` path (for finding messages)."""
        parents = self.reachable()
        path = [qualname]
        seen = {qualname}
        current = parents.get(qualname)
        while current is not None and current not in seen:
            path.append(current)
            seen.add(current)
            current = parents.get(current)
        return list(reversed(path))


def build_call_graph(project: Project) -> CallGraph:
    """Build (or fetch the cached) call graph for ``project``."""
    return project.cache("callgraph", lambda: _build(project))  # type: ignore[return-value]


def worker_reachable(project: Project) -> Dict[str, Optional[str]]:
    """Qualnames of functions reachable from shard-worker entry points."""
    return build_call_graph(project).reachable()


# ----------------------------------------------------------------------
# Construction
# ----------------------------------------------------------------------
def _build(project: Project) -> CallGraph:
    graph = CallGraph()
    scopes: Dict[str, _ModuleScope] = {
        module.name: _ModuleScope(module) for module in project.modules
    }
    for scope in scopes.values():
        scope.all_scopes = scopes
        for info in scope.functions:
            graph.functions[info.qualname] = info
    for scope in scopes.values():
        for info in scope.functions:
            info.calls = _resolve_calls(info, scope)
        graph.entry_points.update(_entry_points(scope))
    return graph


class _ModuleScope:
    """Per-module name tables used during resolution."""

    def __init__(self, module: SourceModule) -> None:
        self.module = module
        #: Every scope in the project, installed by ``_build`` once all
        #: modules are indexed; cross-module lookups resolve through it.
        self.all_scopes: Dict[str, "_ModuleScope"] = {}
        #: local name → dotted module name (``import x.y as z``)
        self.module_aliases: Dict[str, str] = {}
        #: local name → (module name, remote symbol) for ``from m import s``
        self.imported_symbols: Dict[str, Tuple[str, str]] = {}
        #: class name → {method name → qualname}
        self.classes: Dict[str, Dict[str, str]] = {}
        #: module-level function name → qualname
        self.toplevel: Dict[str, str] = {}
        self.functions: List[FunctionInfo] = []
        self._index()

    def _index(self) -> None:
        module = self.module
        for node in module.tree.body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.module_aliases[alias.asname or alias.name.split(".")[0]] = (
                        alias.name
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    self.imported_symbols[alias.asname or alias.name] = (
                        node.module,
                        alias.name,
                    )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{module.name}:{node.name}"
                self.toplevel[node.name] = qualname
                self.functions.append(FunctionInfo(qualname, module, node))
            elif isinstance(node, ast.ClassDef):
                methods: Dict[str, str] = {}
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        qualname = f"{module.name}:{node.name}.{item.name}"
                        methods[item.name] = qualname
                        self.functions.append(
                            FunctionInfo(qualname, module, item, cls=node.name)
                        )
                self.classes[node.name] = methods

    # -- lookups --------------------------------------------------------
    def resolve_function_name(self, name: str) -> Optional[str]:
        """A bare called name → qualname, if statically resolvable."""
        if name in self.toplevel:
            return self.toplevel[name]
        if name in self.imported_symbols:
            target_module, symbol = self.imported_symbols[name]
            remote = self._scope_of(target_module)
            if remote is not None:
                return remote.toplevel.get(symbol)
        return None

    def resolve_class(self, name: str) -> Optional[Tuple["_ModuleScope", str]]:
        """A class name in this module's namespace → (defining scope, name)."""
        if name in self.classes:
            return self, name
        if name in self.imported_symbols:
            target_module, symbol = self.imported_symbols[name]
            remote = self._scope_of(target_module)
            if remote is not None and symbol in remote.classes:
                return remote, symbol
        return None

    def resolve_method(self, class_name: str, method: str) -> Optional[str]:
        resolved = self.resolve_class(class_name)
        if resolved is None:
            return None
        scope, name = resolved
        return scope.classes[name].get(method)

    def _scope_of(self, module_name: str) -> Optional["_ModuleScope"]:
        return self.all_scopes.get(module_name)


def _annotation_name(annotation: Optional[ast.expr]) -> Optional[str]:
    """``x: Foo`` / ``x: "Foo"`` / ``x: mod.Foo`` → the terminal class name."""
    if annotation is None:
        return None
    if isinstance(annotation, ast.Name):
        return annotation.id
    if isinstance(annotation, ast.Attribute):
        return annotation.attr
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        # String annotations: take the last dotted component, ignoring
        # subscripts (Optional[...]) which we cannot use anyway.
        text = annotation.value.strip()
        if text.isidentifier():
            return text
        last = text.split(".")[-1]
        return last if last.isidentifier() else None
    return None


def _local_types(info: FunctionInfo) -> Dict[str, str]:
    """Variable → class-name bindings visible inside ``info``'s body."""
    types: Dict[str, str] = {}
    args = info.node.args
    for arg in [
        *args.posonlyargs,
        *args.args,
        *args.kwonlyargs,
        *( [args.vararg] if args.vararg else [] ),
        *( [args.kwarg] if args.kwarg else [] ),
    ]:
        name = _annotation_name(arg.annotation)
        if name is not None:
            types[arg.arg] = name
    for node in ast.walk(info.node):
        if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            name = _annotation_name(node.annotation)
            if name is not None:
                types[node.target.id] = name
        elif isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            callee = node.value.func
            class_name = None
            if isinstance(callee, ast.Name) and callee.id[:1].isupper():
                class_name = callee.id
            elif isinstance(callee, ast.Attribute) and callee.attr[:1].isupper():
                class_name = callee.attr
            if class_name is not None:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        types[target.id] = class_name
    return types


def _resolve_calls(info: FunctionInfo, scope: _ModuleScope) -> Set[str]:
    calls: Set[str] = set()
    local_types = _local_types(info)
    for node in ast.walk(info.node):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name):
            target = scope.resolve_function_name(func.id)
            if target is None:
                # Calling a class is calling its __init__.
                target = scope.resolve_method(func.id, "__init__")
            if target is not None:
                calls.add(target)
        elif isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            receiver = func.value.id
            if receiver == "self" and info.cls is not None:
                target = scope.resolve_method(info.cls, func.attr)
                if target is not None:
                    calls.add(target)
                continue
            if receiver in local_types:
                target = scope.resolve_method(local_types[receiver], func.attr)
                if target is not None:
                    calls.add(target)
                continue
            if receiver in scope.module_aliases:
                remote = scope._scope_of(scope.module_aliases[receiver])
                if remote is not None and func.attr in remote.toplevel:
                    calls.add(remote.toplevel[func.attr])
    return calls


def _entry_points(scope: _ModuleScope) -> Iterator[str]:
    """Resolved ``fn`` arguments of every ``*.map_shards(fn, ...)`` call."""
    for node in ast.walk(scope.module.tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "map_shards"
            and node.args
        ):
            continue
        worker = node.args[0]
        if isinstance(worker, ast.Name):
            target = scope.resolve_function_name(worker.id)
            if target is not None:
                yield target
        elif isinstance(worker, ast.Attribute):
            # ``executor.map_shards(mod.worker, ...)``
            if isinstance(worker.value, ast.Name):
                alias = worker.value.id
                if alias in scope.module_aliases:
                    remote = scope._scope_of(scope.module_aliases[alias])
                    if remote is not None and worker.attr in remote.toplevel:
                        yield remote.toplevel[worker.attr]
