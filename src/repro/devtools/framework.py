"""Core of the ``repro-lint`` static analyzer: files, findings, rules.

The analyzer enforces *this repository's* invariants — determinism under
any ``PYTHONHASHSEED`` and worker count, fork-safety of everything a
shard worker can reach, and API hygiene — as cheap AST checks that run
in CI on every push.  The design mirrors the classic lint pipeline:

* every source file is parsed **once** into a :class:`SourceModule`
  (AST + raw lines + suppression comments), shared by all rules;
* a :class:`Project` bundles the parsed modules with lazily-built
  cross-module indexes (the worker call graph, the exception taxonomy);
* each :class:`Rule` walks the shared trees and yields
  :class:`Finding` records;
* findings are filtered against inline suppressions and an optional
  checked-in baseline before they reach the report.

Suppressions
------------
A finding is suppressed by a comment of the form::

    risky_call()  # repro-lint: disable=rule-id (why this is safe)

either on the flagged line itself or on a standalone comment line
directly above it.  The parenthesized justification is **mandatory** —
a suppression without a reason does not suppress anything.  Several
rules may be listed separated by commas; ``disable=*`` disables every
rule for the line.

This module has no dependencies on the runtime stack beyond
:mod:`repro.exceptions`; importing :mod:`repro` must never import
:mod:`repro.devtools` (the analyzer adds zero weight to serving paths —
guarded by ``bench_hotpaths.py``).
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.exceptions import LintError

__all__ = [
    "Finding",
    "LintReport",
    "Project",
    "Rule",
    "SourceModule",
    "all_rules",
    "collect_files",
    "lint_paths",
    "parent_map",
    "register_rule",
    "rule_ids",
]

#: ``# repro-lint: disable=rule-a,rule-b (reason)`` — the reason is not
#: optional; see the module docstring.
_SUPPRESSION_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([\w\-*,\s]+?)\s*\(([^)]+)\)"
)
_BARE_SUPPRESSION_RE = re.compile(r"#\s*repro-lint:\s*disable=")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  # project-root-relative, posix separators
    line: int  # 1-based
    column: int  # 0-based, as in the ast module
    message: str
    snippet: str  # the stripped source line, for context and baseline keys

    def key(self) -> Tuple[str, str, str]:
        """Baseline identity: stable across pure line-number drift.

        Keyed on the rule, the file, and the *text* of the flagged line
        rather than its number, so unrelated edits above a grandfathered
        finding do not un-baseline it.
        """
        return (self.rule, self.path, self.snippet)

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
            "snippet": self.snippet,
        }


class SourceModule:
    """One parsed source file: AST, raw lines, and suppression table."""

    def __init__(self, path: Path, root: Path) -> None:
        self.path = path
        try:
            self.relpath = path.relative_to(root).as_posix()
        except ValueError:
            self.relpath = path.as_posix()
        try:
            self.text = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            raise LintError(f"cannot read {path}: {exc}") from exc
        self.lines: List[str] = self.text.splitlines()
        try:
            self.tree: ast.Module = ast.parse(self.text, filename=str(path))
        except SyntaxError as exc:
            raise LintError(f"cannot parse {path}: {exc}") from exc
        #: Dotted module name relative to its package root (``repro.core.state``)
        #: when the file lives in an importable package, else the stem.
        self.name = _module_name(path)
        self.suppressions: Dict[int, Set[str]] = {}
        self.suppression_reasons: Dict[int, str] = {}
        self.malformed_suppressions: List[int] = []
        self._collect_suppressions()
        self._parents: Optional[Dict[ast.AST, ast.AST]] = None

    # -- suppressions ---------------------------------------------------
    def _collect_suppressions(self) -> None:
        """Build the line → disabled-rules table from comment tokens.

        Tokenizing (rather than regexing raw lines) keeps ``#`` inside
        string literals from being misread as comments.  A comment on a
        code line applies to that line; a comment alone on its line
        applies to the next code line.
        """
        pending: List[Tuple[int, Set[str], str]] = []
        code_lines: Set[int] = set()
        try:
            tokens = list(tokenize.generate_tokens(io.StringIO(self.text).readline))
        except (tokenize.TokenError, IndentationError):  # pragma: no cover - parse caught it
            return
        comments: List[Tuple[int, str]] = []
        for tok in tokens:
            if tok.type == tokenize.COMMENT:
                comments.append((tok.start[0], tok.string))
            elif tok.type not in (
                tokenize.NL,
                tokenize.NEWLINE,
                tokenize.INDENT,
                tokenize.DEDENT,
                tokenize.ENDMARKER,
                tokenize.ENCODING,
            ):
                code_lines.add(tok.start[0])
        for line, comment in comments:
            match = _SUPPRESSION_RE.search(comment)
            if match is None:
                if _BARE_SUPPRESSION_RE.search(comment):
                    # ``disable=`` without a (reason): deliberately inert.
                    self.malformed_suppressions.append(line)
                continue
            rules = {part.strip() for part in match.group(1).split(",") if part.strip()}
            reason = match.group(2).strip()
            if line in code_lines:
                self._add_suppression(line, rules, reason)
            else:
                pending.append((line, rules, reason))
        # Standalone suppression comments attach to the next code line.
        ordered_code = sorted(code_lines)
        for line, rules, reason in pending:
            target = next((code for code in ordered_code if code > line), None)
            if target is not None:
                self._add_suppression(target, rules, reason)

    def _add_suppression(self, line: int, rules: Set[str], reason: str) -> None:
        self.suppressions.setdefault(line, set()).update(rules)
        self.suppression_reasons[line] = reason

    def is_suppressed(self, finding: Finding) -> bool:
        disabled = self.suppressions.get(finding.line)
        if not disabled:
            return False
        return "*" in disabled or finding.rule in disabled

    # -- tree helpers ---------------------------------------------------
    def parents(self) -> Dict[ast.AST, ast.AST]:
        """Child → parent map over this module's AST (built once)."""
        if self._parents is None:
            self._parents = parent_map(self.tree)
        return self._parents

    def snippet_at(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        line = getattr(node, "lineno", 1)
        column = getattr(node, "col_offset", 0)
        return Finding(
            rule=rule,
            path=self.relpath,
            line=line,
            column=column,
            message=message,
            snippet=self.snippet_at(line),
        )


def parent_map(tree: ast.AST) -> Dict[ast.AST, ast.AST]:
    """Child → parent links for every node under ``tree``."""
    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def _module_name(path: Path) -> str:
    """Dotted import name inferred from ``__init__.py`` package markers."""
    parts = [path.stem] if path.stem != "__init__" else []
    current = path.parent
    while (current / "__init__.py").exists():
        parts.insert(0, current.name)
        current = current.parent
    return ".".join(parts) if parts else path.stem


class Project:
    """All modules under analysis plus shared cross-module indexes."""

    def __init__(self, modules: Sequence[SourceModule], root: Path) -> None:
        self.root = root
        self.modules: List[SourceModule] = list(modules)
        self.by_name: Dict[str, SourceModule] = {}
        for module in self.modules:
            # First definition wins; duplicate names (fixture trees) are
            # only ambiguous for cross-module resolution, never fatal.
            self.by_name.setdefault(module.name, module)
        self._caches: Dict[str, object] = {}

    def cache(self, key: str, build) -> object:
        """Memoize an expensive cross-module index (e.g. the call graph)."""
        if key not in self._caches:
            self._caches[key] = build()
        return self._caches[key]


class Rule:
    """Base class for lint rules.

    Subclasses define ``id``/``category``/``rationale`` and implement
    :meth:`check`.  Rules must be stateless across modules — the runner
    may invoke them in any file order (files are sorted for determinism,
    but nothing may depend on it).
    """

    id: str = ""
    category: str = ""
    rationale: str = ""

    def check(self, module: SourceModule, project: Project) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, module: SourceModule, node: ast.AST, message: str) -> Finding:
        return module.finding(self.id, node, message)


#: Rule id → singleton instance.  Populated by :func:`register_rule` as
#: the rule modules import; :func:`all_rules` triggers those imports.
_RULES: Dict[str, Rule] = {}


def register_rule(cls):
    """Class decorator adding a :class:`Rule` subclass to the registry."""
    if not cls.id:
        raise LintError(f"{cls.__name__} must define a non-empty id")
    if cls.id in _RULES:
        raise LintError(f"lint rule {cls.id!r} is already registered")
    _RULES[cls.id] = cls()
    return cls


def all_rules() -> List[Rule]:
    """Every registered rule, importing the built-in rule pack on first use."""
    from repro.devtools import rules  # noqa: F401 - registration side effect

    return [_RULES[rule_id] for rule_id in sorted(_RULES)]


def rule_ids() -> List[str]:
    return [rule.id for rule in all_rules()]


@dataclass
class LintReport:
    """Outcome of one analyzer run."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    checked_files: int = 0
    rules: List[Rule] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings

    def to_dict(self) -> Dict[str, object]:
        """The documented ``--json`` schema (version 1)."""
        return {
            "version": 1,
            "clean": self.clean,
            "checked_files": self.checked_files,
            "counts": {
                "findings": len(self.findings),
                "suppressed": len(self.suppressed),
                "baselined": len(self.baselined),
            },
            "rules": [
                {"id": rule.id, "category": rule.category, "rationale": rule.rationale}
                for rule in self.rules
            ],
            "findings": [finding.to_dict() for finding in self.findings],
            "suppressed": [finding.to_dict() for finding in self.suppressed],
            "baselined": [finding.to_dict() for finding in self.baselined],
        }


def collect_files(paths: Sequence[Path]) -> List[Path]:
    """Python files under ``paths`` (files kept as-is, dirs walked), sorted."""
    files: Set[Path] = set()
    for path in paths:
        if path.is_dir():
            files.update(
                candidate
                for candidate in path.rglob("*.py")
                if "__pycache__" not in candidate.parts
            )
        elif path.suffix == ".py":
            files.add(path)
        else:
            raise LintError(f"not a Python file or directory: {path}")
    return sorted(files)


def lint_paths(
    paths: Sequence,
    root: Optional[Path] = None,
    rules: Optional[Iterable[Rule]] = None,
    baseline_keys: Optional[Set[Tuple[str, str, str]]] = None,
) -> LintReport:
    """Run the rule pack over ``paths`` and return the filtered report.

    ``root`` anchors the relative paths used in output and baseline keys
    (default: the common parent of ``paths``).  ``baseline_keys`` are
    grandfathered finding keys (see :meth:`Finding.key`); matching
    findings are reported separately and do not fail the run.
    """
    resolved = [Path(p).resolve() for p in paths]
    if not resolved:
        raise LintError("no paths to lint")
    if root is None:
        root = _common_root(resolved)
    files = collect_files(resolved)
    modules = [SourceModule(path, root) for path in files]
    project = Project(modules, root)
    active_rules = list(rules) if rules is not None else all_rules()

    report = LintReport(checked_files=len(modules), rules=active_rules)
    raw: List[Finding] = []
    for rule in active_rules:
        for module in project.modules:
            raw.extend(rule.check(module, project))
    raw.sort(key=lambda f: (f.path, f.line, f.column, f.rule, f.message))

    module_by_relpath = {module.relpath: module for module in project.modules}
    baseline_keys = baseline_keys or set()
    for finding in raw:
        module = module_by_relpath.get(finding.path)
        if module is not None and module.is_suppressed(finding):
            report.suppressed.append(finding)
        elif finding.key() in baseline_keys:
            report.baselined.append(finding)
        else:
            report.findings.append(finding)
    return report


def _common_root(paths: Sequence[Path]) -> Path:
    """Deepest directory containing every path."""
    anchors = [path if path.is_dir() else path.parent for path in paths]
    common = anchors[0]
    for anchor in anchors[1:]:
        while common not in (anchor, *anchor.parents):
            common = common.parent
    return common
