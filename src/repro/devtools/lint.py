"""``repro-lint`` command line: run the rule pack, report, gate CI.

Usage (both spellings are equivalent)::

    repro-slugger lint src/repro tests [--json] [--baseline FILE]
    python -m repro.devtools.lint src/repro tests

Exit codes are stable and scriptable:

* ``0`` — no unsuppressed, unbaselined findings;
* ``1`` — at least one finding;
* ``2`` — usage or analyzer error (bad path, unparseable file,
  malformed baseline).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.devtools import baseline as baseline_module
from repro.devtools.framework import LintReport, all_rules, lint_paths
from repro.exceptions import LintError

__all__ = ["build_parser", "main", "run_lint"]

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based determinism, fork-safety, and API-hygiene analyzer "
            "for the repro codebase"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit a machine-readable JSON report on stdout",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="JSON baseline of grandfathered findings (missing file = empty)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="write current findings to --baseline and exit 0",
    )
    parser.add_argument(
        "--rules",
        metavar="ID[,ID...]",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--root",
        metavar="DIR",
        default=None,
        help="directory paths are reported relative to (default: inferred)",
    )
    return parser


def run_lint(
    paths: Sequence[str],
    root: Optional[str] = None,
    rule_filter: Optional[Sequence[str]] = None,
    baseline_path: Optional[str] = None,
) -> LintReport:
    """Programmatic entry point used by the CLI and the test suite."""
    rules = all_rules()
    if rule_filter is not None:
        wanted = set(rule_filter)
        known = {rule.id for rule in rules}
        unknown = wanted - known
        if unknown:
            raise LintError(
                f"unknown rule id(s): {', '.join(sorted(unknown))}; "
                f"known: {', '.join(sorted(known))}"
            )
        rules = [rule for rule in rules if rule.id in wanted]
    baseline_keys = (
        baseline_module.load_baseline(baseline_path) if baseline_path else set()
    )
    return lint_paths(
        paths,
        root=Path(root).resolve() if root else None,
        rules=rules,
        baseline_keys=baseline_keys,
    )


def _print_human(report: LintReport, stream) -> None:
    for finding in report.findings:
        print(
            f"{finding.path}:{finding.line}:{finding.column}: "
            f"[{finding.rule}] {finding.message}",
            file=stream,
        )
        if finding.snippet:
            print(f"    {finding.snippet}", file=stream)
    summary = (
        f"{len(report.findings)} finding(s), "
        f"{len(report.suppressed)} suppressed, "
        f"{len(report.baselined)} baselined, "
        f"{report.checked_files} file(s) checked"
    )
    print(summary, file=stream)


def _print_rules(stream) -> None:
    for rule in all_rules():
        print(f"{rule.id} [{rule.category}]", file=stream)
        print(f"    {rule.rationale}", file=stream)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        _print_rules(sys.stdout)
        return EXIT_CLEAN
    if args.update_baseline and not args.baseline:
        print("--update-baseline requires --baseline FILE", file=sys.stderr)
        return EXIT_ERROR
    try:
        rule_filter = (
            [part.strip() for part in args.rules.split(",") if part.strip()]
            if args.rules
            else None
        )
        report = run_lint(
            args.paths,
            root=args.root,
            rule_filter=rule_filter,
            baseline_path=None if args.update_baseline else args.baseline,
        )
        if args.update_baseline:
            baseline_module.write_baseline(args.baseline, report.findings)
            print(
                f"baseline {args.baseline} updated with "
                f"{len(report.findings)} finding(s)",
                file=sys.stderr,
            )
            return EXIT_CLEAN
    except LintError as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return EXIT_ERROR
    if args.json:
        json.dump(report.to_dict(), sys.stdout, indent=2, sort_keys=True)
        print()
        if report.findings:
            _print_human(report, sys.stderr)
    else:
        _print_human(report, sys.stdout)
    return EXIT_CLEAN if report.clean else EXIT_FINDINGS


if __name__ == "__main__":  # pragma: no cover - exercised via CI smoke run
    sys.exit(main())
