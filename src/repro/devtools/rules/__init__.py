"""The built-in ``repro-lint`` rule pack.

Importing this package registers every rule with the framework registry
(:func:`repro.devtools.framework.all_rules` does it on first use).  The
pack is split by invariant family:

* :mod:`~repro.devtools.rules.determinism` — bit-identical output for a
  fixed seed, under any ``PYTHONHASHSEED`` and worker count;
* :mod:`~repro.devtools.rules.concurrency` — fork-safety of everything
  reachable from shard-worker entry points;
* :mod:`~repro.devtools.rules.hygiene` — public-API and exception-
  taxonomy consistency.
"""

from __future__ import annotations

from repro.devtools.rules import concurrency, determinism, hygiene  # noqa: F401

__all__ = ["concurrency", "determinism", "hygiene"]
