"""Fork-safety rules for everything a shard worker can reach.

The executor layer forks workers that inherit the parent's memory image
copy-on-write (:mod:`repro.engine.execution`).  Three bug classes have
bitten (and been fixed) in past PRs; these rules keep them from coming
back:

* a forked child inherits any lock *in the held state* it was in at
  fork time — a worker-reachable ``acquire`` can deadlock forever
  (PR 4's warm-pool hardening);
* a worker that mutates module globals writes to its private
  copy-on-write page, silently diverging from the parent — state that
  looks shared but is not;
* forking (``prestart()`` / ``map_shards()`` / raw pools) *while
  holding a lock* snapshots that lock held into every child.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.devtools.callgraph import build_call_graph
from repro.devtools.framework import (
    Finding,
    Project,
    Rule,
    SourceModule,
    register_rule,
)

__all__ = [
    "ForkUnderLockRule",
    "SnapshotMutationRule",
    "WorkerLockRule",
]

#: Terminal names that identify a lock object in this codebase's idiom
#: (``self._lock``, ``_CONTEXTS_LOCK``, ``self._sync``, …).
_LOCKISH_FRAGMENTS = ("lock", "mutex")
_LOCKISH_EXACT = {"_sync"}


def _is_lockish(expr: ast.expr) -> bool:
    """Whether an expression names a lock by this repo's conventions."""
    name: Optional[str] = None
    if isinstance(expr, ast.Name):
        name = expr.id
    elif isinstance(expr, ast.Attribute):
        name = expr.attr
    elif isinstance(expr, ast.Call):
        # ``with threading.Lock():`` — an anonymous lock is still a lock.
        func = expr.func
        if isinstance(func, ast.Attribute) and func.attr in ("Lock", "RLock"):
            return True
        if isinstance(func, ast.Name) and func.id in ("Lock", "RLock"):
            return True
        return False
    if name is None:
        return False
    lowered = name.lower()
    return lowered in _LOCKISH_EXACT or any(
        fragment in lowered for fragment in _LOCKISH_FRAGMENTS
    )


def _lock_acquisitions(func_node: ast.AST) -> Iterator[Tuple[ast.AST, str]]:
    """(node, description) for every lock acquisition inside ``func_node``."""
    for node in ast.walk(func_node):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if _is_lockish(item.context_expr):
                    yield node, f"'with {ast.unparse(item.context_expr)}:'"
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "acquire"
            and _is_lockish(node.func.value)
        ):
            yield node, f"'{ast.unparse(node.func)}()'"


def _global_mutations(func_node: ast.AST) -> Iterator[Tuple[ast.AST, str]]:
    """(node, name) for module globals this function declares and writes."""
    declared: Set[str] = set()
    for node in ast.walk(func_node):
        if isinstance(node, ast.Global):
            declared.update(node.names)
    if not declared:
        return
    for node in ast.walk(func_node):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id in declared:
                yield node, target.id


@register_rule
class WorkerLockRule(Rule):
    """Worker-reachable code must not acquire locks or mutate globals.

    Reachability is a call-graph walk from every function registered as
    a ``map_shards`` worker (the functions that run on forked
    ``shard_bounds`` shards).  A forked child inherits parent locks in
    whatever state they were in at fork time — acquiring one that a
    parent thread held is an unrecoverable deadlock; mutating a module
    global only writes the child's copy-on-write page.  Intentional
    lock-free fast paths (e.g. the registry's pre-fork preload) carry
    inline suppressions explaining why they are safe.
    """

    id = "worker-lock"
    category = "concurrency"
    rationale = (
        "code reachable from forked shard workers must not acquire "
        "threading locks or mutate module globals (fork-inherited locks "
        "deadlock; CoW global writes silently diverge)"
    )

    def check(self, module: SourceModule, project: Project) -> Iterator[Finding]:
        graph = build_call_graph(project)
        reachable = graph.reachable()
        for qualname, info in graph.functions.items():
            if info.module is not module or qualname not in reachable:
                continue
            chain = " -> ".join(
                name.split(":", 1)[1] for name in graph.chain(qualname)
            )
            for node, description in _lock_acquisitions(info.node):
                yield self.finding(
                    module,
                    node,
                    f"{description} acquired in worker-reachable code "
                    f"(via {chain}); a fork-inherited held lock deadlocks the child",
                )
            for node, name in _global_mutations(info.node):
                yield self.finding(
                    module,
                    node,
                    f"module global {name!r} mutated in worker-reachable code "
                    f"(via {chain}); forked workers only write their own "
                    "copy-on-write page",
                )


#: Methods of ``SluggerState`` that mutate summarization state.  A
#: ``StateSnapshot`` exposes the read-only face of the same object; a
#:  worker calling any of these on a snapshot-typed receiver is writing
#: to state the apply phase believes frozen.
_STATE_MUTATORS = {
    "_bump_adj",
    "_register_superedge",
    "_rekey_pn_edges",
    "merge",
    "apply_merge_trace",
    "absorb",
    "splice_out",
    "create_parent",
    "set_threshold",
    "prune",
}


@register_rule
class SnapshotMutationRule(Rule):
    """Phase workers must not call mutating methods on ``StateSnapshot``.

    The snapshot is the read-only copy-on-write view workers simulate
    against; the runtime guard (``__setattr__`` raising) only catches
    attribute writes, not mutating *method* calls reached through the
    proxied mappings.  Receivers are recognized by a ``StateSnapshot``
    annotation, construction from ``StateSnapshot(...)``, or a name
    containing ``snapshot``.
    """

    id = "snapshot-mutation"
    category = "concurrency"
    rationale = (
        "StateSnapshot is the workers' read-only view; calling SluggerState "
        "mutators on it writes to state the apply phase assumes frozen"
    )

    def check(self, module: SourceModule, project: Project) -> Iterator[Finding]:
        for func in _functions(module.tree):
            snapshot_vars = _snapshot_receivers(func)
            if not snapshot_vars:
                continue
            for node in ast.walk(func):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in snapshot_vars
                    and node.func.attr in _STATE_MUTATORS
                ):
                    yield self.finding(
                        module,
                        node,
                        f"mutating call .{node.func.attr}() on StateSnapshot "
                        f"receiver {node.func.value.id!r}; snapshots are read-only",
                    )
                if (
                    isinstance(node, (ast.Assign, ast.AugAssign))
                    and _assigns_snapshot_attr(node, snapshot_vars)
                ):
                    yield self.finding(
                        module,
                        node,
                        "attribute assignment on a StateSnapshot receiver; "
                        "snapshots are read-only",
                    )


def _assigns_snapshot_attr(node: ast.stmt, snapshot_vars: Set[str]) -> bool:
    targets = node.targets if isinstance(node, ast.Assign) else [node.target]
    for target in targets:
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id in snapshot_vars
        ):
            return True
    return False


def _snapshot_receivers(func: ast.AST) -> Set[str]:
    names: Set[str] = set()
    args = getattr(func, "args", None)
    if args is not None:
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            annotation = arg.annotation
            text = None
            if isinstance(annotation, ast.Name):
                text = annotation.id
            elif isinstance(annotation, ast.Attribute):
                text = annotation.attr
            elif isinstance(annotation, ast.Constant) and isinstance(
                annotation.value, str
            ):
                text = annotation.value.split(".")[-1]
            if text == "StateSnapshot":
                names.add(arg.arg)
            elif "snapshot" in arg.arg.lower():
                names.add(arg.arg)
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            callee = node.value.func
            callee_name = (
                callee.id
                if isinstance(callee, ast.Name)
                else callee.attr
                if isinstance(callee, ast.Attribute)
                else None
            )
            if callee_name == "StateSnapshot":
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            annotation = node.annotation
            text = (
                annotation.id
                if isinstance(annotation, ast.Name)
                else annotation.attr
                if isinstance(annotation, ast.Attribute)
                else None
            )
            if text == "StateSnapshot":
                names.add(node.target.id)
    return names


#: Call names that create forked children (or force a pool to fork).
_FORKING_CALLS = {"prestart", "map_shards", "fork", "ProcessPoolExecutor"}


@register_rule
class ForkUnderLockRule(Rule):
    """No ``with lock:`` body may fork (``prestart``/``map_shards``/pools).

    ``fork`` snapshots every lock in its *current* state: forking while
    holding one hands each child a permanently-held copy (the PR 4
    warm-pool deadlock).  Pools must be created and forked outside lock
    scopes; registering state under a lock is fine, forking under one is
    not.
    """

    id = "fork-under-lock"
    category = "concurrency"
    rationale = (
        "forking while holding a lock copies the held lock into every "
        "child; prestart()/map_shards()/pool creation must happen outside "
        "lock scopes"
    )

    def check(self, module: SourceModule, project: Project) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            if not any(_is_lockish(item.context_expr) for item in node.items):
                continue
            for inner in ast.walk(node):
                if not isinstance(inner, ast.Call):
                    continue
                func = inner.func
                name = (
                    func.id
                    if isinstance(func, ast.Name)
                    else func.attr
                    if isinstance(func, ast.Attribute)
                    else None
                )
                if name in _FORKING_CALLS:
                    yield self.finding(
                        module,
                        inner,
                        f"{name}() inside a 'with lock:' body; forking under a "
                        "held lock deadlocks the children",
                    )


def _functions(tree: ast.AST) -> Iterator[ast.AST]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node
