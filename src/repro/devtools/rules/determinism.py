"""Determinism rules: the output must not depend on the clock, the
process's hash seed, or an unseeded global RNG.

The stack's headline guarantee — summaries bit-identical for fixed
seeds at any worker count, under any ``PYTHONHASHSEED`` — is enforced
dynamically by fingerprint-pinned tests; these rules catch the bug
classes *before* a pin trips, at the AST level.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.devtools.framework import (
    Finding,
    Project,
    Rule,
    SourceModule,
    register_rule,
)

__all__ = [
    "BuiltinHashRule",
    "GlobalRngRule",
    "UnorderedIterationRule",
    "WallClockRule",
]


@register_rule
class WallClockRule(Rule):
    """``time.time()`` is banned: runtime measurement uses ``perf_counter``.

    ``time.time()`` is wall-clock — NTP slews and DST make deltas
    non-monotonic, and past audits (PR 3) removed every use.  This rule
    keeps them out.  ``perf_counter``/``monotonic`` are fine, as is
    ``time.time`` in a *name* position for documentation.
    """

    id = "wall-clock"
    category = "determinism"
    rationale = (
        "time.time() is non-monotonic wall-clock; runtime measurement must "
        "use time.perf_counter()"
    )

    def check(self, module: SourceModule, project: Project) -> Iterator[Finding]:
        time_aliases = _imported_module_aliases(module, "time")
        from_imports = _from_imported(module, "time")
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "time"
                and isinstance(func.value, ast.Name)
                and func.value.id in time_aliases
            ):
                yield self.finding(
                    module, node, "time.time() call; use time.perf_counter()"
                )
            elif (
                isinstance(func, ast.Name)
                and from_imports.get(func.id) == "time"
            ):
                yield self.finding(
                    module,
                    node,
                    f"{func.id}() resolves to time.time; use time.perf_counter()",
                )


@register_rule
class GlobalRngRule(Rule):
    """No module-level / unseeded ``random.*`` or ``numpy.random`` calls.

    Calls on the shared module-level generator (``random.random()``,
    ``random.shuffle(...)``, ``numpy.random.rand()``, …) draw from
    process-global state that any import or other component can
    perturb, so two runs with the same user seed diverge.  Every
    randomized component must accept a seed and normalize it through
    :func:`repro.utils.rng.ensure_rng`; constructing ``random.Random``
    / ``random.SystemRandom`` instances is allowed (that is what the
    helper does), and :mod:`repro.utils.rng` itself is exempt.
    """

    id = "global-rng"
    category = "determinism"
    rationale = (
        "module-level random.* / numpy.random calls use process-global RNG "
        "state; thread seeds through repro.utils.rng.ensure_rng"
    )

    #: Module whose job is to own the one sanctioned RNG boundary.
    #: Matched on the dotted module name so the exemption holds no
    #: matter which directory the analyzer was pointed at.
    exempt_modules = ("repro.utils.rng",)

    def check(self, module: SourceModule, project: Project) -> Iterator[Finding]:
        if module.name in self.exempt_modules:
            return
        random_aliases = _imported_module_aliases(module, "random")
        numpy_aliases = _imported_module_aliases(module, "numpy")
        from_random = _from_imported(module, "random")
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
                receiver, attr = func.value.id, func.attr
                if (
                    receiver in random_aliases
                    and attr not in ("Random", "SystemRandom")
                ):
                    yield self.finding(
                        module,
                        node,
                        f"random.{attr}() uses the process-global RNG; "
                        "thread a seeded random.Random through instead",
                    )
            # numpy.random.<fn>(...) — receiver is itself an attribute.
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Attribute)
                and func.value.attr == "random"
                and isinstance(func.value.value, ast.Name)
                and func.value.value.id in numpy_aliases
            ):
                yield self.finding(
                    module,
                    node,
                    f"numpy.random.{func.attr}() uses global RNG state; "
                    "use a seeded Generator",
                )
            if isinstance(func, ast.Name):
                origin = from_random.get(func.id)
                if origin is not None and origin not in ("Random", "SystemRandom"):
                    yield self.finding(
                        module,
                        node,
                        f"{func.id}() is random.{origin} on the process-global "
                        "RNG; thread a seeded random.Random through instead",
                    )


@register_rule
class BuiltinHashRule(Rule):
    """Builtin ``hash()`` is ``PYTHONHASHSEED``-sensitive on strings.

    Any ``hash()`` result that feeds control flow or output ordering
    makes summaries differ between interpreter launches.  The only
    sanctioned uses are the two documented label-hashing boundaries
    (pinned under ``PYTHONHASHSEED=0`` in CI), which carry inline
    suppressions; everything else must use the seeded 2-universal
    family in :mod:`repro.core.shingles` or a content hash.
    """

    id = "builtin-hash"
    category = "determinism"
    rationale = (
        "builtin hash() varies with PYTHONHASHSEED on str/bytes; results "
        "feeding control flow or ordering break cross-process determinism"
    )

    def check(self, module: SourceModule, project: Project) -> Iterator[Finding]:
        rebound = _module_level_names(module)
        if "hash" in rebound:
            return
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "hash"
            ):
                yield self.finding(
                    module,
                    node,
                    "builtin hash() is PYTHONHASHSEED-sensitive on strings; "
                    "use a seeded/content hash",
                )


#: Call names whose result cannot depend on input order (safe consumers).
_ORDER_INSENSITIVE_CONSUMERS = {
    "sorted", "set", "frozenset", "sum", "min", "max", "any", "all", "len",
    "Counter",
}

#: Method calls that produce unordered (or hash-order) iterables.  dict
#: views iterate in insertion order, which is deterministic — but whether
#: an *insertion order* is output-grade is a per-site decision, so the
#: rule still asks for sorted() or an explicit justification in the
#: pipeline packages.
_UNORDERED_METHODS = {"keys", "values", "intersection", "union", "difference",
                      "symmetric_difference"}
_UNORDERED_CALLS = {"set", "frozenset"}


@register_rule
class UnorderedIterationRule(Rule):
    """Unordered iteration must not reach list-building or emission.

    In the pipeline packages (``core/``, ``baselines/``, ``model/``),
    iterating a ``set`` (hash order — ``PYTHONHASHSEED``-dependent for
    strings) or a dict view into a list, an ``extend``, or a ``yield``
    bakes an iteration order into the output.  Wrap the iterable in
    ``sorted(...)``, or suppress with a justification when the order is
    provably deterministic (e.g. dict views reflect insertion order and
    the pinned RNG stream depends on it).
    """

    id = "unordered-iter"
    category = "determinism"
    rationale = (
        "set/dict-view iteration order reaching list building or emission "
        "bakes hash/insertion order into output; wrap in sorted() or justify"
    )

    #: Packages whose output ordering is the paper-pinned product.  The
    #: scope matches dotted module names (``repro.core.state``), so it is
    #: independent of which directory the analyzer was pointed at.
    scope_packages = ("core", "baselines", "model")

    def check(self, module: SourceModule, project: Project) -> Iterator[Finding]:
        segments = module.name.split(".")[:-1]
        if not any(package in segments for package in self.scope_packages):
            return
        parents = module.parents()
        for node in ast.walk(module.tree):
            # list(U) / tuple(U) / list(genexp-over-U)
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                if node.func.id in ("list", "tuple") and node.args:
                    arg = node.args[0]
                    source = arg
                    if isinstance(arg, ast.GeneratorExp) and arg.generators:
                        source = arg.generators[0].iter
                    if _is_unordered(source) and not _under_safe_consumer(node, parents):
                        yield self.finding(
                            module,
                            node,
                            f"{node.func.id}() over an unordered iterable; "
                            "wrap in sorted()",
                        )
                # something.extend(U)
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "extend"
                and node.args
            ):
                arg = node.args[0]
                source = arg
                if isinstance(arg, ast.GeneratorExp) and arg.generators:
                    source = arg.generators[0].iter
                if _is_unordered(source):
                    yield self.finding(
                        module, node,
                        ".extend() of an unordered iterable; wrap in sorted()",
                    )
            # [f(x) for x in U]
            if isinstance(node, (ast.ListComp,)):
                if any(_is_unordered(gen.iter) for gen in node.generators):
                    if not _under_safe_consumer(node, parents):
                        yield self.finding(
                            module,
                            node,
                            "list comprehension over an unordered iterable; "
                            "wrap in sorted()",
                        )
            # for x in U: ... append/yield ...
            if isinstance(node, (ast.For, ast.AsyncFor)) and _is_unordered(node.iter):
                if _body_builds_output(node):
                    yield self.finding(
                        module,
                        node,
                        "for-loop over an unordered iterable feeds appends/"
                        "yields; iterate sorted(...) instead",
                    )


def _is_unordered(expr: ast.expr) -> bool:
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call):
        func = expr.func
        if isinstance(func, ast.Name) and func.id in _UNORDERED_CALLS:
            return True
        if isinstance(func, ast.Attribute) and func.attr in _UNORDERED_METHODS:
            return True
    return False


def _under_safe_consumer(node: ast.AST, parents: Dict[ast.AST, ast.AST]) -> bool:
    """Whether an enclosing call neutralizes iteration order.

    Walks up through pure expression wrappers; stops at statements.  A
    ``sorted(...)`` / ``sum(...)`` / ``set(...)`` ancestor makes the
    inner iteration order unobservable.
    """
    current = parents.get(node)
    while current is not None and isinstance(current, ast.expr):
        if isinstance(current, ast.Call) and isinstance(current.func, ast.Name):
            if current.func.id in _ORDER_INSENSITIVE_CONSUMERS:
                return True
        current = parents.get(current)
    return False


def _body_builds_output(loop: ast.stmt) -> bool:
    for node in ast.walk(loop):
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("append", "extend", "insert")
        ):
            return True
    return False


# ----------------------------------------------------------------------
# Shared import-table helpers
# ----------------------------------------------------------------------
def _imported_module_aliases(module: SourceModule, target: str) -> Set[str]:
    """Local names bound to module ``target`` via ``import`` statements."""
    aliases: Set[str] = set()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == target or alias.name.startswith(target + "."):
                    aliases.add(alias.asname or alias.name.split(".")[0])
    return aliases


def _from_imported(module: SourceModule, target: str) -> Dict[str, str]:
    """``from target import x [as y]`` → {local name: remote name}."""
    table: Dict[str, str] = {}
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ImportFrom) and node.module == target:
            for alias in node.names:
                table[alias.asname or alias.name] = alias.name
    return table


def _module_level_names(module: SourceModule) -> Set[str]:
    names: Set[str] = set()
    for node in module.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names
