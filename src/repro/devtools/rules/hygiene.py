"""API-hygiene rules: ``__all__`` consistency, exception taxonomy,
and the single sanctioned staleness guard.

These rules keep the public surface honest: every public module says
what it exports, every error a caller can catch comes from the
:mod:`repro.exceptions` taxonomy (or the two stdlib validation types),
and substrate staleness is detected in exactly one place.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.devtools.framework import (
    Finding,
    Project,
    Rule,
    SourceModule,
    register_rule,
)

__all__ = [
    "AllConsistencyRule",
    "RaiseTaxonomyRule",
    "StalenessGuardRule",
]


@register_rule
class AllConsistencyRule(Rule):
    """Every public package module declares ``__all__``, and it is exact.

    ``__all__`` is the machine-checkable statement of a module's public
    surface: every listed name must be defined (or imported) at module
    top level, and every public top-level ``def``/``class`` must be
    listed.  Public constants *may* be listed but are not required.
    Modules outside packages (scripts, tests) and ``_private`` modules
    are exempt; a dynamically-computed ``__all__`` is skipped as
    statically unverifiable.
    """

    id = "all-consistency"
    category = "hygiene"
    rationale = (
        "__all__ is the contract for `import *` and the docs; a drifted "
        "list silently hides or leaks API"
    )

    def check(self, module: SourceModule, project: Project) -> Iterator[Finding]:
        if "." not in module.name:  # not inside a package: script or test
            return
        stem = module.name.rsplit(".", 1)[1]
        if stem.startswith("_"):  # __main__, _private helpers
            return
        exported = _literal_all(module.tree)
        if exported is None:
            if _has_all_assignment(module.tree):
                return  # dynamic __all__: not statically checkable
            yield self.finding(
                module,
                module.tree.body[0] if module.tree.body else module.tree,
                "public module defines no __all__",
            )
            return
        defined = _toplevel_names(module.tree)
        for name in exported:
            if name not in defined:
                yield self.finding(
                    module,
                    module.tree.body[0] if module.tree.body else module.tree,
                    f"__all__ lists {name!r}, which is not defined in the module",
                )
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                if not node.name.startswith("_") and node.name not in exported:
                    yield self.finding(
                        module,
                        node,
                        f"public {'class' if isinstance(node, ast.ClassDef) else 'function'} "
                        f"{node.name!r} is missing from __all__",
                    )


def _literal_all(tree: ast.Module) -> Optional[List[str]]:
    for node in tree.body:
        if isinstance(node, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in node.targets
        ):
            if isinstance(node.value, (ast.List, ast.Tuple)) and all(
                isinstance(el, ast.Constant) and isinstance(el.value, str)
                for el in node.value.elts
            ):
                return [el.value for el in node.value.elts]
            return None
    return None


def _has_all_assignment(tree: ast.Module) -> bool:
    for node in ast.walk(tree):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        if any(isinstance(t, ast.Name) and t.id == "__all__" for t in targets):
            return True
    return False


def _toplevel_names(tree: ast.Module) -> Set[str]:
    names: Set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
                elif isinstance(target, (ast.Tuple, ast.List)):
                    names.update(
                        el.id for el in target.elts if isinstance(el, ast.Name)
                    )
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            names.add(node.target.id)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                names.add(alias.asname or alias.name)
        elif isinstance(node, (ast.If, ast.Try)):
            # Conditional definitions (TYPE_CHECKING, fallbacks) count.
            for child in ast.walk(node):
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    names.add(child.name)
                elif isinstance(child, ast.Assign):
                    for target in child.targets:
                        if isinstance(target, ast.Name):
                            names.add(target.id)
                elif isinstance(child, ast.ImportFrom):
                    for alias in child.names:
                        names.add(alias.asname or alias.name)
    return names


#: Builtin exception names (so a bare ``raise RuntimeError`` — a Name,
#: not a Call — is still recognized as raising a class).
_BUILTIN_EXCEPTIONS = frozenset({
    "ArithmeticError", "AssertionError", "AttributeError", "BaseException",
    "BlockingIOError", "BrokenPipeError", "BufferError", "ConnectionError",
    "EOFError", "Exception", "FileExistsError", "FileNotFoundError",
    "ImportError", "IndentationError", "IndexError", "InterruptedError",
    "IOError", "KeyboardInterrupt", "KeyError", "LookupError", "MemoryError",
    "ModuleNotFoundError", "NameError", "NotImplementedError", "OSError",
    "OverflowError", "PermissionError", "RecursionError", "RuntimeError",
    "StopAsyncIteration", "StopIteration", "SyntaxError", "SystemError",
    "SystemExit", "TimeoutError", "TypeError", "UnicodeDecodeError",
    "UnicodeEncodeError", "ValueError", "ZeroDivisionError",
})

#: Always-acceptable stdlib types: argument/state validation at API
#: boundaries, and abstract-method stubs.
_ALLOWED_STDLIB = frozenset({"ValueError", "TypeError", "NotImplementedError"})

#: Protocol dunders where the matching stdlib exception *is* the contract.
_PROTOCOL_ALLOWANCES: Dict[str, frozenset] = {
    "__getitem__": frozenset({"KeyError", "IndexError"}),
    "__missing__": frozenset({"KeyError"}),
    "__delitem__": frozenset({"KeyError", "IndexError"}),
    "__getattr__": frozenset({"AttributeError"}),
    "__setattr__": frozenset({"AttributeError"}),
    "__delattr__": frozenset({"AttributeError"}),
    "__next__": frozenset({"StopIteration"}),
    "__anext__": frozenset({"StopAsyncIteration"}),
}


@register_rule
class RaiseTaxonomyRule(Rule):
    """Every ``raise`` uses the package exception taxonomy.

    Callers catch :class:`repro.exceptions.ReproError` subclasses to
    distinguish user errors from invariant violations; a stray
    ``RuntimeError`` escapes that contract.  Allowed: taxonomy classes
    (discovered from the project's ``*.exceptions`` modules, so new
    types are picked up automatically), stdlib ``ValueError`` /
    ``TypeError`` at validation boundaries, ``NotImplementedError``
    stubs, the protocol exception inside protocol dunders
    (``KeyError`` in ``__getitem__``, ``AttributeError`` in
    ``__setattr__``, …), and re-raises of caught/stored exception
    objects.  The rule is active only for modules *inside* a package
    that ships an ``exceptions`` module — test files and scripts
    outside the package raise whatever their harness needs.
    """

    id = "raise-taxonomy"
    category = "hygiene"
    rationale = (
        "a raise outside the repro.exceptions taxonomy (or stdlib "
        "ValueError/TypeError validation) breaks callers' except contracts"
    )

    def check(self, module: SourceModule, project: Project) -> Iterator[Finding]:
        taxonomy = _taxonomy_for(module, project)
        if taxonomy is None:
            return
        enclosing = _enclosing_function_map(module)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            name = _raised_class_name(node.exc)
            if name is None:
                continue  # re-raise of a variable / dynamic expression
            if name in taxonomy or name in _ALLOWED_STDLIB:
                continue
            if name not in _BUILTIN_EXCEPTIONS:
                # A class we cannot place: locally-defined or imported
                # from outside the taxonomy — flag it too, unless it is
                # not recognizably a class (lowercase variable).
                if not name[:1].isupper():
                    continue
            func_name = enclosing.get(node)
            if func_name is not None and name in _PROTOCOL_ALLOWANCES.get(
                func_name, ()
            ):
                continue
            yield self.finding(
                module,
                node,
                f"raise {name}(...) outside the exception taxonomy; use a "
                "repro.exceptions type (or ValueError/TypeError for "
                "argument validation)",
            )


def _raised_class_name(exc: ast.expr) -> Optional[str]:
    if isinstance(exc, ast.Call):
        func = exc.func
        if isinstance(func, ast.Name):
            return func.id
        if isinstance(func, ast.Attribute):
            return func.attr
        return None
    if isinstance(exc, ast.Name):
        # ``raise SummaryInvariantError`` (no call) — only meaningful if
        # the name looks like a class; ``raise self`` / ``raise exc``
        # re-raise stored exception objects.
        return exc.id if exc.id[:1].isupper() or exc.id in _BUILTIN_EXCEPTIONS else None
    if isinstance(exc, ast.Attribute):
        return exc.attr if exc.attr[:1].isupper() else None
    return None


def _taxonomy_for(module: SourceModule, project: Project) -> Optional[Set[str]]:
    """Class names of the taxonomy governing ``module``, or None.

    The taxonomy is the union of classes defined in every analyzed
    module named ``exceptions`` (``repro.exceptions``, a fixture's
    ``pkg.exceptions``), and it governs exactly the modules of the
    package that defines it: linting ``src/repro`` and ``tests``
    together must not hold test files to the package's contract.
    A top-level ``exceptions`` module (no package) governs everything.
    """

    def build() -> Tuple[Set[str], Tuple[str, ...]]:
        names: Set[str] = set()
        prefixes: List[str] = []
        for candidate in project.modules:
            if candidate.name == "exceptions" or candidate.name.endswith(".exceptions"):
                for node in candidate.tree.body:
                    if isinstance(node, ast.ClassDef):
                        names.add(node.name)
                if "." in candidate.name:
                    prefixes.append(candidate.name.rsplit(".", 1)[0])
                else:
                    prefixes.append("")  # top-level taxonomy: govern all
        return names, tuple(prefixes)

    names, prefixes = project.cache("exception-taxonomy", build)  # type: ignore[misc]
    if not names:
        return None
    for prefix in prefixes:
        if prefix == "" or module.name == prefix or module.name.startswith(prefix + "."):
            return names
    return None


def _enclosing_function_map(module: SourceModule) -> Dict[ast.AST, str]:
    """Raise node → name of its innermost enclosing function."""
    result: Dict[ast.AST, str] = {}

    def visit(node: ast.AST, current: Optional[str]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                visit(child, child.name)
            else:
                if isinstance(child, ast.Raise) and current is not None:
                    result[child] = current
                visit(child, current)

    visit(module.tree, None)
    return result


@register_rule
class StalenessGuardRule(Rule):
    """``mutation_count`` comparisons live in one helper, nowhere else.

    Substrate staleness ("does this prebuilt dense/CSR view still match
    the graph?") is detected by :mod:`repro.graphs.staleness`; six
    per-layer ad-hoc guards were consolidated there.  New code that
    compares ``graph.mutation_count`` by hand re-opens the drift —
    route it through ``mutation_stamp()`` / ``stamp_is_stale()`` /
    ``ensure_fresh_views()`` so future strengthening lands once.
    """

    id = "staleness-guard"
    category = "hygiene"
    rationale = (
        "ad-hoc mutation_count comparisons recreate the per-layer "
        "staleness-guard drift; use repro.graphs.staleness helpers"
    )

    #: The helper module (and fixtures mimicking it) where the
    #: comparison is the implementation.
    allowed_suffixes = ("graphs.staleness",)

    def check(self, module: SourceModule, project: Project) -> Iterator[Finding]:
        if module.name.endswith(self.allowed_suffixes):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            sides = [node.left, *node.comparators]
            if any(
                isinstance(side, ast.Attribute) and side.attr == "mutation_count"
                for side in sides
            ):
                yield self.finding(
                    module,
                    node,
                    "ad-hoc mutation_count comparison; use "
                    "repro.graphs.staleness (mutation_stamp/stamp_is_stale)",
                )
