"""Unified summarizer engine: protocol, registry, adapters, execution.

``repro.engine`` gives every summarization method one API::

    from repro import engine
    from repro.engine import ExecutionConfig

    engine.available_methods()                       # registry contents
    result = engine.run("sweg", graph, seed=0, iterations=10)
    result.summary.validate(graph)                   # lossless
    result.cost(), result.runtime_seconds            # shared bookkeeping

    # Shard the parallelizable phases over 4 worker processes; the
    # summary is bit-identical to the serial run for a fixed seed.
    engine.run("slugger", graph, seed=0, execution=ExecutionConfig(workers=4))

New methods plug in by subclassing :class:`Summarizer` and decorating
with :func:`register`; the CLI, the comparison harness, and the
experiment figures pick them up automatically.  The built-in adapters
are registered lazily on first registry use, which keeps the import
graph acyclic (core drivers import the execution layer from this
package; the adapters import the core drivers).

Serving
-------
``engine.run`` is a thin shim over the default
:class:`repro.service.SummaryService`: repeated calls on the same graph
share one interned substrate build.  Workloads that queue many requests
— with progress, cancellation, concurrency, and warm worker pools —
should use the service layer directly (see :mod:`repro.service`).
"""

from repro.engine.base import AnySummary, EngineResult, Summarizer
from repro.engine.execution import (
    SERIAL_EXECUTION,
    ExecutionConfig,
    ProcessShardExecutor,
    SerialExecutor,
    process_execution_available,
)
from repro.engine.hooks import GraphResources, RunControl
from repro.engine.registry import (
    DEFAULT_SUITE,
    available_methods,
    create,
    default_suite,
    register,
    run,
)

__all__ = [
    "AnySummary",
    "EngineResult",
    "GraphResources",
    "RunControl",
    "Summarizer",
    "DEFAULT_SUITE",
    "SERIAL_EXECUTION",
    "ExecutionConfig",
    "ProcessShardExecutor",
    "SerialExecutor",
    "available_methods",
    "create",
    "default_suite",
    "process_execution_available",
    "register",
    "run",
]
