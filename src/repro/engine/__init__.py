"""Unified summarizer engine: protocol, registry, and adapters.

``repro.engine`` gives every summarization method one API::

    from repro import engine

    engine.available_methods()                       # registry contents
    result = engine.run("sweg", graph, seed=0, iterations=10)
    result.summary.validate(graph)                   # lossless
    result.cost(), result.runtime_seconds            # shared bookkeeping

New methods plug in by subclassing :class:`Summarizer` and decorating
with :func:`register`; the CLI, the comparison harness, and the
experiment figures pick them up automatically.
"""

from repro.engine.base import AnySummary, EngineResult, Summarizer
from repro.engine.registry import (
    DEFAULT_SUITE,
    available_methods,
    create,
    default_suite,
    register,
    run,
)

# Importing the adapters module registers the built-in methods.
from repro.engine import adapters as _adapters  # noqa: F401

__all__ = [
    "AnySummary",
    "EngineResult",
    "Summarizer",
    "DEFAULT_SUITE",
    "available_methods",
    "create",
    "default_suite",
    "register",
    "run",
]
