"""Registry adapters wrapping SLUGGER and the five baselines.

Each adapter stores its method options at construction time and injects
the per-run ``seed`` at :meth:`~repro.engine.base.Summarizer.summarize`
time, so one configured instance can be reused across graphs and seeds
(which is exactly how the comparison harness sweeps them).  The wrapped
functions are called with the same arguments a direct invocation would
use — registry dispatch and direct calls are bit-identical for a fixed
seed, which the engine equivalence suite asserts.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.baselines.greedy import greedy_summarize
from repro.baselines.mosso import mosso_summarize
from repro.baselines.randomized import randomized_summarize
from repro.baselines.sags import sags_summarize
from repro.baselines.sweg import sweg_summarize
from repro.core.config import SluggerConfig
from repro.core.slugger import Slugger
from repro.engine.base import AnySummary, Summarizer
from repro.engine.execution import ExecutionConfig
from repro.engine.hooks import GraphResources, RunControl
from repro.engine.registry import register
from repro.graphs.graph import Graph
from repro.utils.rng import SeedLike

__all__ = [
    "GreedySummarizer",
    "MossoSummarizer",
    "RandomizedSummarizer",
    "SagsSummarizer",
    "SluggerSummarizer",
    "SwegSummarizer",
]

RunOutput = Tuple[AnySummary, List[Dict[str, float]], Dict[str, Any]]


@register
class SluggerSummarizer(Summarizer):
    """SLUGGER (this paper): hierarchical lossless summarization."""

    name = "slugger"
    iteration_controlled = True
    supports_parallel = True

    def __init__(self, **options: Any) -> None:
        self.options = options

    def _run(self, graph: Graph, seed: SeedLike) -> RunOutput:
        return self._run_with_execution(graph, seed, None)

    def _run_with_execution(
        self, graph: Graph, seed: SeedLike, execution: Optional[ExecutionConfig]
    ) -> RunOutput:
        return self._dispatch(graph, seed, execution, None, None)

    def _dispatch(
        self,
        graph: Graph,
        seed: SeedLike,
        execution: Optional[ExecutionConfig],
        control: Optional[RunControl],
        resources: Optional[GraphResources],
    ) -> RunOutput:
        config = SluggerConfig(**{**self.options, "seed": seed})
        result = Slugger(config, execution=execution).summarize(
            graph, control=control, resources=resources
        )
        return result.summary, result.history, {
            "prune_stats": result.prune_stats,
            "config": config,
            "phase_seconds": result.phase_seconds,
            "execution_stats": result.execution_stats,
        }


@register
class SwegSummarizer(Summarizer):
    """SWeG [Shin et al., WWW'19]: the strongest flat-model competitor."""

    name = "sweg"
    iteration_controlled = True
    supports_parallel = True

    def __init__(self, **options: Any) -> None:
        self.options = options

    def _run(self, graph: Graph, seed: SeedLike) -> RunOutput:
        return self._run_with_execution(graph, seed, None)

    def _run_with_execution(
        self, graph: Graph, seed: SeedLike, execution: Optional[ExecutionConfig]
    ) -> RunOutput:
        return self._dispatch(graph, seed, execution, None, None)

    def _dispatch(
        self,
        graph: Graph,
        seed: SeedLike,
        execution: Optional[ExecutionConfig],
        control: Optional[RunControl],
        resources: Optional[GraphResources],
    ) -> RunOutput:
        summary = sweg_summarize(
            graph, execution=execution, control=control, resources=resources,
            **{**self.options, "seed": seed},
        )
        return summary, [], {}


@register
class MossoSummarizer(Summarizer):
    """MoSSo [Ko et al., KDD'20] replayed over an insertion stream."""

    name = "mosso"

    def __init__(self, **options: Any) -> None:
        self.options = options

    def _run(self, graph: Graph, seed: SeedLike) -> RunOutput:
        summary = mosso_summarize(graph, **{**self.options, "seed": seed})
        return summary, [], {}


@register
class RandomizedSummarizer(Summarizer):
    """RANDOMIZED [Navlakha et al., SIGMOD'08]."""

    name = "randomized"

    def __init__(self, **options: Any) -> None:
        self.options = options

    def _run(self, graph: Graph, seed: SeedLike) -> RunOutput:
        summary = randomized_summarize(graph, seed=seed, **self.options)
        return summary, [], {}

    def _dispatch(self, graph, seed, execution, control, resources) -> RunOutput:
        summary = randomized_summarize(
            graph, seed=seed, resources=resources, **self.options
        )
        return summary, [], {}


@register
class SagsSummarizer(Summarizer):
    """SAGS [Khan et al., Computing'15]: LSH-based merging."""

    name = "sags"

    def __init__(self, **options: Any) -> None:
        self.options = options

    def _run(self, graph: Graph, seed: SeedLike) -> RunOutput:
        summary = sags_summarize(graph, **{**self.options, "seed": seed})
        return summary, [], {}

    def _dispatch(self, graph, seed, execution, control, resources) -> RunOutput:
        summary = sags_summarize(
            graph, resources=resources, **{**self.options, "seed": seed}
        )
        return summary, [], {}


@register
class GreedySummarizer(Summarizer):
    """GREEDY [Navlakha et al., SIGMOD'08]; deterministic, so ``seed`` is unused."""

    name = "greedy"

    def __init__(self, **options: Any) -> None:
        self.options = options

    def _run(self, graph: Graph, seed: SeedLike) -> RunOutput:
        summary = greedy_summarize(graph, **self.options)
        return summary, [], {}

    def _dispatch(self, graph, seed, execution, control, resources) -> RunOutput:
        summary = greedy_summarize(graph, resources=resources, **self.options)
        return summary, [], {}
