"""The unified summarizer abstraction: one result shape, one entry point.

Every summarization method in the library — SLUGGER and the five flat
baselines — historically had its own driver signature and result object.
:class:`Summarizer` is the common protocol the engine registry dispatches
through: ``summarize(graph, seed=...)`` always returns an
:class:`EngineResult` with the summary, shared wall-clock timing, the
per-iteration history (when the method produces one), and method-specific
details.  Adapters only implement :meth:`Summarizer._run`; timing and
result packaging live here so every method is measured the same way.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, ClassVar, Dict, List, Optional, Tuple, Union

from repro.engine.execution import ExecutionConfig
from repro.engine.hooks import GraphResources, RunControl
from repro.graphs.graph import Graph
from repro.model.flat import FlatSummary
from repro.model.summary import HierarchicalSummary
from repro.utils.rng import SeedLike
from repro.utils.validation import require_type

__all__ = ["AnySummary", "EngineResult", "Summarizer"]

AnySummary = Union[HierarchicalSummary, FlatSummary]


@dataclass
class EngineResult:
    """Outcome of running one summarizer on one graph.

    Attributes
    ----------
    method:
        Registry name of the method that produced the result.
    summary:
        The (lossless) summary, hierarchical or flat.
    runtime_seconds:
        Wall-clock duration measured by the engine around the whole run.
    history:
        Per-iteration records for iterative methods (empty otherwise).
    details:
        Method-specific extras (e.g. SLUGGER's pruning counters).
    """

    method: str
    summary: AnySummary
    runtime_seconds: float
    history: List[Dict[str, float]] = field(default_factory=list)
    details: Dict[str, Any] = field(default_factory=dict)

    def cost(self) -> int:
        """Model-comparable encoding cost (Eq. 1 / Eq. 11)."""
        if isinstance(self.summary, FlatSummary):
            return self.summary.cost_eq11()
        return self.summary.cost()

    def relative_size(self, graph: Graph) -> float:
        """Relative output size with respect to ``graph`` (Eq. 10 / Eq. 11)."""
        return self.summary.relative_size(graph)

    def validate(self, graph: Graph) -> None:
        """Raise unless the summary represents ``graph`` exactly."""
        self.summary.validate(graph)


class Summarizer(ABC):
    """A named, configured summarization method.

    Subclasses set :attr:`name` (the registry key), declare whether they
    honor an ``iterations`` option via :attr:`iteration_controlled`, and
    implement :meth:`_run`.  Instances are also callable with the legacy
    ``(graph, seed) -> summary`` signature, so existing code that treats
    methods as plain functions keeps working.
    """

    #: Registry key; subclasses must override.
    name: ClassVar[str] = ""
    #: Whether the method exposes an ``iterations`` knob (SLUGGER, SWeG).
    iteration_controlled: ClassVar[bool] = False
    #: Whether the method honors an :class:`ExecutionConfig` (its phases
    #: can shard across worker processes).  Methods without the
    #: capability silently run serially; output never depends on it.
    supports_parallel: ClassVar[bool] = False

    def summarize(
        self,
        graph: Graph,
        seed: SeedLike = None,
        execution: Optional[ExecutionConfig] = None,
        control: Optional[RunControl] = None,
        resources: Optional[GraphResources] = None,
    ) -> EngineResult:
        """Run the method on ``graph`` with shared timing bookkeeping.

        ``execution`` is forwarded to parallel-capable methods (see
        :attr:`supports_parallel`); for a fixed seed the summary is
        bit-identical regardless of the execution configuration.
        ``control`` (progress/cancel) and ``resources`` (shared
        substrate views) are honored by methods that override
        :meth:`_dispatch` — SLUGGER and SWeG — and are inert no-ops for
        the rest; neither can change the summary.
        """
        require_type(graph, Graph, "graph")
        started = time.perf_counter()
        summary, history, details = self._dispatch(
            graph, seed, execution, control, resources
        )
        elapsed = time.perf_counter() - started
        if execution is not None:
            details = dict(details)
            details["execution"] = {
                "workers": execution.workers,
                "parallel_capable": self.supports_parallel,
            }
        return EngineResult(
            method=self.name,
            summary=summary,
            runtime_seconds=elapsed,
            history=history,
            details=details,
        )

    @abstractmethod
    def _run(
        self, graph: Graph, seed: SeedLike
    ) -> Tuple[AnySummary, List[Dict[str, float]], Dict[str, Any]]:
        """Produce ``(summary, history, details)`` for one graph."""

    def _run_with_execution(
        self, graph: Graph, seed: SeedLike, execution: Optional[ExecutionConfig]
    ) -> Tuple[AnySummary, List[Dict[str, float]], Dict[str, Any]]:
        """Execution-aware hook; parallel-capable adapters override this.

        The default ignores ``execution`` so simple methods only have to
        implement :meth:`_run`.
        """
        return self._run(graph, seed)

    def _dispatch(
        self,
        graph: Graph,
        seed: SeedLike,
        execution: Optional[ExecutionConfig],
        control: Optional[RunControl],
        resources: Optional[GraphResources],
    ) -> Tuple[AnySummary, List[Dict[str, float]], Dict[str, Any]]:
        """Full-surface hook: execution + progress/cancel + shared substrate.

        The default preserves the historical routing (``execution`` to
        parallel-capable methods, everything else to :meth:`_run`) and
        ignores ``control`` and ``resources``, so existing adapters and
        user subclasses keep working unchanged.  Adapters that support
        the service hooks override this method.
        """
        if self.supports_parallel:
            return self._run_with_execution(graph, seed, execution)
        return self._run(graph, seed)

    def __call__(self, graph: Graph, seed: SeedLike = None) -> AnySummary:
        """Legacy ``MethodFunction`` protocol: return just the summary."""
        return self.summarize(graph, seed=seed).summary

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
