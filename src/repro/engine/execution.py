"""Pluggable execution layer: serial and process-sharded phase executors.

Every parallelizable phase of the summarization stack (shingle sweeps,
SLUGGER's decide-merges phase, SWeG's divide step) funnels through the
same tiny abstraction defined here: an *executor* maps a worker function
over a list of contiguous shard payloads and yields the results **in
payload order**.  Two implementations exist:

* :class:`SerialExecutor` runs the shards inline, one after the other —
  the default, and the reference semantics every parallel run must
  reproduce bit-for-bit;
* :class:`ProcessShardExecutor` fans the shards out over a
  ``concurrent.futures.ProcessPoolExecutor`` whose workers are created
  with the ``fork`` start method, so they inherit the caller's in-memory
  snapshot (graph, summarization state, frozen CSR views) as a cheap
  copy-on-write image instead of pickling it through a pipe.

Context hand-off
----------------
Shard payloads stay tiny (index ranges plus a seed); the heavyweight
inputs travel through a *worker context*.  Each executor registers its
context under a unique token in a module-level registry; shards are
dispatched through :func:`_run_shard`, which resolves the token against
the registry and pins the context for the duration of the shard, where
worker functions read it back via :func:`worker_context`.  Forked
workers inherit the registry (and therefore the context object) as part
of the copy-on-write image — nothing is pickled in.  Because the current
context is tracked per *thread* in the parent, any number of serial
executions (e.g. concurrent service jobs) can run simultaneously without
observing each other's contexts; a forked worker owns a private
copy-on-write image, so it may freely *mutate* its context (e.g.
simulate merges on the summarization state) without the parent — or any
sibling worker — observing the writes.

Determinism
-----------
Nothing in this module introduces ordering nondeterminism: results are
yielded in payload order regardless of which worker computed them, and
the phases built on top are designed so the final output is bit-identical
for a fixed seed no matter how many workers are configured (see
``core/slugger.py`` and the execution test suite).

Teardown guarantee
------------------
Both executors are context managers, ``close()`` is idempotent, and
live process pools are tracked in a module-level set with an ``atexit``
sweep — an exception anywhere between pool creation and the normal
``close()`` call can no longer leak forked workers past interpreter
shutdown.  The long-lived serving layer (:mod:`repro.service`) keeps
warm pools open across requests and relies on the same hooks for clean
shutdown and restart.
"""

from __future__ import annotations

import atexit
import itertools
import multiprocessing
import os
import threading
import weakref
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from functools import partial
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError, InvalidStateError

__all__ = [
    "ExecutionConfig",
    "ProcessShardExecutor",
    "SerialExecutor",
    "SERIAL_EXECUTION",
    "available_cpus",
    "executor_for",
    "process_execution_available",
    "shard_bounds",
    "worker_context",
]

#: Token → context registry.  Registered before a pool's workers fork, so
#: the forked copy-on-write image contains every context its shards will
#: resolve; read back through :func:`worker_context`.
_CONTEXTS: Dict[int, Any] = {}
_CONTEXTS_LOCK = threading.Lock()
_TOKENS = itertools.count(1)

#: The context pinned for the shard currently running on this thread.
#: Thread-local in the parent (concurrent serial runs stay isolated);
#: a forked pool worker is single-threaded, so its slot is private too.
_CURRENT = threading.local()


def _register_context(context: Any) -> int:
    token = next(_TOKENS)
    with _CONTEXTS_LOCK:
        _CONTEXTS[token] = context
    return token


def _release_context(token: int) -> None:
    with _CONTEXTS_LOCK:
        _CONTEXTS.pop(token, None)


def _run_shard(token: int, fn: Callable[[Any], Any], payload: Any) -> Any:
    """Resolve ``token``, pin its context for this thread, run ``fn``.

    Runs inline for :class:`SerialExecutor` and inside the forked worker
    process for :class:`ProcessShardExecutor` (the registry entry was
    inherited at fork time).
    """
    previous = getattr(_CURRENT, "context", None)
    _CURRENT.context = _CONTEXTS.get(token)
    try:
        return fn(payload)
    finally:
        _CURRENT.context = previous


def worker_context() -> Any:
    """The context object installed for the currently running shard."""
    context = getattr(_CURRENT, "context", None)
    if context is None:
        raise InvalidStateError("no worker context is installed; shards must "
                                "be run through an executor's map_shards")
    return context


def process_execution_available() -> bool:
    """Whether fork-based process sharding is usable on this platform.

    The sharded executor relies on ``fork`` so workers inherit the
    parent's state snapshot without pickling; platforms without it (e.g.
    Windows) transparently fall back to serial execution.
    """
    return "fork" in multiprocessing.get_all_start_methods()


def available_cpus() -> int:
    """Number of CPUs the current process may actually run on."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@dataclass(frozen=True)
class ExecutionConfig:
    """How a summarizer run distributes its parallelizable phases.

    Attributes
    ----------
    workers:
        Number of worker processes for the sharded phases.  ``1`` (the
        default) keeps everything on the serial reference path.  Output
        is bit-identical for a fixed seed regardless of this value.
    chunks_per_worker:
        Shard granularity of the decide-merges phase: candidate groups
        are split into ``workers * chunks_per_worker`` contiguous chunks
        so the apply phase can start consuming decisions while later
        chunks are still being computed.
    serial_zero_threshold:
        Zero-threshold iterations (the final SLUGGER pass) merge almost
        every candidate, so optimistic decide work would be thrown away
        wholesale; with this flag (default) those iterations run on the
        serial path directly.  Purely a performance heuristic — flipping
        it cannot change the output.
    min_parallel_items:
        Smallest number of shardable items (candidate groups) worth
        spinning up a process pool for; below it the phase runs serially.
    shingle_parallel_min_nodes:
        Smallest graph (node count) for which the batch shingle phase is
        sharded across processes; below it the pool dispatch overhead
        exceeds the hashing work.
    colored_zero_threshold:
        Zero-threshold iterations can instead run *colored* merge
        sweeps: candidate groups whose footprints are pairwise disjoint
        (an independent class of the interaction graph) are decided
        concurrently and applied in canonical order — structurally
        exact, no replay.  On (default) the colored path engages
        whenever ``serial_zero_threshold`` would have forced a parallel
        zero-threshold iteration serial; purely a performance choice,
        the output cannot change.
    colored_min_class:
        Smallest independent class worth a parallel decide round in a
        colored sweep; below it the remaining groups run on the serial
        reference path.
    prune_parallel_min_pairs:
        Smallest pruning scan (root pairs for substep 3, supernodes for
        substep 1's candidate feed) worth sharding over the pool; each
        sharded pruning scan pays a re-fork, so small scans stay inline.
    """

    workers: int = 1
    chunks_per_worker: int = 4
    serial_zero_threshold: bool = True
    min_parallel_items: int = 2
    shingle_parallel_min_nodes: int = 25000
    colored_zero_threshold: bool = True
    colored_min_class: int = 8
    prune_parallel_min_pairs: int = 1024

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {self.workers}")
        if self.chunks_per_worker < 1:
            raise ConfigurationError(
                f"chunks_per_worker must be >= 1, got {self.chunks_per_worker}"
            )
        if self.min_parallel_items < 0:
            raise ConfigurationError(
                f"min_parallel_items must be >= 0, got {self.min_parallel_items}"
            )
        if self.shingle_parallel_min_nodes < 0:
            raise ConfigurationError(
                f"shingle_parallel_min_nodes must be >= 0, "
                f"got {self.shingle_parallel_min_nodes}"
            )
        if self.colored_min_class < 2:
            raise ConfigurationError(
                f"colored_min_class must be >= 2, got {self.colored_min_class}"
            )
        if self.prune_parallel_min_pairs < 2:
            raise ConfigurationError(
                f"prune_parallel_min_pairs must be >= 2, "
                f"got {self.prune_parallel_min_pairs}"
            )

    @property
    def parallel(self) -> bool:
        """Whether this configuration can use process sharding at all."""
        return self.workers > 1 and process_execution_available()

    def effective_workers(self, items: int) -> int:
        """Worker count actually used for ``items`` shardable work items."""
        if not self.parallel or items < max(self.min_parallel_items, 2):
            return 1
        return min(self.workers, items)


#: The default configuration: everything on the serial reference path.
SERIAL_EXECUTION = ExecutionConfig()


def shard_bounds(total: int, shards: int) -> List[Tuple[int, int]]:
    """Split ``range(total)`` into at most ``shards`` contiguous ranges.

    Every range is non-empty and the concatenation covers ``0..total-1``
    in order, so mapping a pure function over the shards and chaining the
    results reproduces the unsharded computation exactly.
    """
    shards = max(1, min(shards, total))
    bounds = []
    for i in range(shards):
        start = i * total // shards
        stop = (i + 1) * total // shards
        if stop > start:
            bounds.append((start, stop))
    return bounds


class SerialExecutor:
    """Run shards inline, in order — the reference executor."""

    workers = 1

    def __init__(self, context: Any = None) -> None:
        self._context = context
        self._token = _register_context(context) if context is not None else 0

    def map_shards(self, fn: Callable[[Any], Any], payloads: Sequence[Any]) -> Iterator[Any]:
        """Yield ``fn(payload)`` for every payload, lazily and in order."""
        token = self._token

        def results() -> Iterator[Any]:
            for payload in payloads:
                yield _run_shard(token, fn, payload)
        return results()

    def close(self) -> None:
        if self._token:
            _release_context(self._token)
            self._token = 0

    def __enter__(self) -> "SerialExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


#: Live process pools, swept at interpreter exit so forked workers never
#: outlive the parent even when an exception skipped the normal close().
_LIVE_EXECUTORS: "weakref.WeakSet[ProcessShardExecutor]" = weakref.WeakSet()


def _shutdown_live_executors() -> None:  # pragma: no cover - interpreter exit
    for executor in list(_LIVE_EXECUTORS):
        try:
            executor.close()
        except Exception:
            pass


atexit.register(_shutdown_live_executors)


class ProcessShardExecutor:
    """Fan shards out over a fork-based ``ProcessPoolExecutor``.

    The worker context is registered at construction, so the pool's
    processes — forked on first submission — inherit it as part of their
    copy-on-write snapshot.  ``map_shards`` submits every payload up
    front (forcing all workers to fork against the *current* snapshot,
    before the caller starts mutating it) and returns a lazy, in-order
    result iterator, which lets a consumer overlap downstream work with
    still-running shards.

    The executor is a context manager; ``close()`` is idempotent, safe
    on every exception path, and additionally guaranteed by an atexit
    sweep over all live pools, so an error mid-run cannot leak forked
    workers.  Long-lived owners (the serving layer's warm pools) may
    call :meth:`restart` to drop the forked snapshot and re-fork against
    fresh state on the next submission.
    """

    def __init__(self, workers: int, context: Any = None) -> None:
        if not process_execution_available():
            raise ConfigurationError(
                "process execution requires the 'fork' start method; "
                "use SerialExecutor on this platform"
            )
        self.workers = max(1, workers)
        self._context = context
        self._token = _register_context(context) if context is not None else 0
        self._pool: Optional[ProcessPoolExecutor] = None
        self._closed = False
        # Warm executors are shared across service dispatcher threads;
        # pool creation, submission, restart, and close serialize here so
        # two racing first-submissions cannot each fork a pool (orphaning
        # one) and a close cannot interleave with a submit.
        self._sync = threading.Lock()
        _LIVE_EXECUTORS.add(self)

    def prestart(self) -> None:
        """Create the pool at full width before the first submission.

        Long-lived owners that feed the pool one payload at a time (the
        serving layer's job pool) call this so the pool is not sized by
        the first batch's length.
        """
        with self._sync:
            if self._closed:
                raise InvalidStateError("executor is closed")
            if self._pool is None:
                # Only _sync is held here, and forked workers run
                # _run_shard only — they never acquire it.
                # repro-lint: disable=fork-under-lock (workers never acquire the executor's _sync)
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers,
                    mp_context=multiprocessing.get_context("fork"),
                )

    def map_shards(self, fn: Callable[[Any], Any], payloads: Sequence[Any]) -> Iterator[Any]:
        """Submit all payloads and yield results in payload order."""
        payloads = list(payloads)
        with self._sync:
            if self._closed:
                raise InvalidStateError("executor is closed")
            if self._pool is None:
                # Only _sync is held here, and forked workers run
                # _run_shard only — they never acquire it.
                # repro-lint: disable=fork-under-lock (workers never acquire the executor's _sync)
                self._pool = ProcessPoolExecutor(
                    max_workers=min(self.workers, max(1, len(payloads))),
                    mp_context=multiprocessing.get_context("fork"),
                )
            # ``map`` submits every payload immediately; with the fork
            # start method all worker processes are created during this
            # call, which pins their inherited snapshot to the state as
            # of *now*.
            try:
                return self._pool.map(partial(_run_shard, self._token, fn), payloads)
            except Exception:
                # Tear the (possibly broken) pool down so no forked
                # workers leak, but keep the executor usable: the next
                # submission re-forks fresh.  Warm pools shared across
                # requests must survive one transient failure.
                self._shutdown_pool_locked()
                raise

    def restart(self) -> None:
        """Drop the forked worker snapshot; the next map re-forks fresh.

        Used by warm-pool owners after the inherited state went stale
        (e.g. new graphs were interned into a serving store).
        """
        with self._sync:
            self._shutdown_pool_locked()

    def close(self) -> None:
        with self._sync:
            self._shutdown_pool_locked()
            if self._token:
                _release_context(self._token)
                self._token = 0
            self._closed = True

    def _shutdown_pool_locked(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ProcessShardExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def executor_for(
    config: Optional[ExecutionConfig],
    items: int,
    context: Any = None,
    reuse: Any = None,
):
    """The executor matching ``config`` for ``items`` shardable work items.

    Falls back to :class:`SerialExecutor` when the configuration is
    serial, the platform cannot fork, or the work is too small to be
    worth a pool.  The choice can never affect results — only where the
    work runs.

    ``reuse`` lets multi-round callers (the prune loop) hand back the
    executor from the previous round: when it was registered with the
    *same* context object and still fits (same class, enough workers),
    it is returned again — restarted for process pools, dropping the
    stale forked snapshot so the next submission re-forks against
    current state — instead of being torn down and rebuilt each round.
    When the returned executor is a different object, the caller still
    owns (and must close) the one it passed in.
    """
    workers = 1 if config is None else config.effective_workers(items)
    if reuse is not None and reuse._context is context:
        if workers <= 1 and isinstance(reuse, SerialExecutor):
            return reuse
        if (
            workers > 1
            and isinstance(reuse, ProcessShardExecutor)
            and reuse.workers >= workers
            and not reuse._closed
        ):
            reuse.restart()
            return reuse
    if workers <= 1:
        return SerialExecutor(context)
    return ProcessShardExecutor(workers, context)
