"""Pluggable execution layer: serial and process-sharded phase executors.

Every parallelizable phase of the summarization stack (shingle sweeps,
SLUGGER's decide-merges phase, SWeG's divide step) funnels through the
same tiny abstraction defined here: an *executor* maps a worker function
over a list of contiguous shard payloads and yields the results **in
payload order**.  Two implementations exist:

* :class:`SerialExecutor` runs the shards inline, one after the other —
  the default, and the reference semantics every parallel run must
  reproduce bit-for-bit;
* :class:`ProcessShardExecutor` fans the shards out over a
  ``concurrent.futures.ProcessPoolExecutor`` whose workers are created
  with the ``fork`` start method, so they inherit the caller's in-memory
  snapshot (graph, summarization state, frozen CSR views) as a cheap
  copy-on-write image instead of pickling it through a pipe.

Context hand-off
----------------
Shard payloads stay tiny (index ranges plus a seed); the heavyweight
inputs travel through a module-level *worker context* that is installed
immediately before the shards are mapped.  Forked workers read the
context they inherited at fork time via :func:`worker_context`; the
serial executor installs the same context in-process, so worker
functions are oblivious to where they run.  Because a forked worker owns
a private copy-on-write image, it may freely *mutate* the context (e.g.
simulate merges on the summarization state) without the parent — or any
sibling worker — observing the writes; the parent's objects act as the
immutable snapshot the ISSUE-level determinism argument relies on.

Determinism
-----------
Nothing in this module introduces ordering nondeterminism: results are
yielded in payload order regardless of which worker computed them, and
the phases built on top are designed so the final output is bit-identical
for a fixed seed no matter how many workers are configured (see
``core/slugger.py`` and the execution test suite).
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError

#: Handed to worker functions: set right before shards are mapped so a
#: forked pool inherits it, and read back through :func:`worker_context`.
_WORKER_CONTEXT: Any = None


def _install_context(context: Any) -> None:
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = context


def worker_context() -> Any:
    """The context object installed for the currently running shard."""
    if _WORKER_CONTEXT is None:
        raise RuntimeError("no worker context is installed; shards must be "
                           "run through an executor's map_shards")
    return _WORKER_CONTEXT


def process_execution_available() -> bool:
    """Whether fork-based process sharding is usable on this platform.

    The sharded executor relies on ``fork`` so workers inherit the
    parent's state snapshot without pickling; platforms without it (e.g.
    Windows) transparently fall back to serial execution.
    """
    return "fork" in multiprocessing.get_all_start_methods()


def available_cpus() -> int:
    """Number of CPUs the current process may actually run on."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@dataclass(frozen=True)
class ExecutionConfig:
    """How a summarizer run distributes its parallelizable phases.

    Attributes
    ----------
    workers:
        Number of worker processes for the sharded phases.  ``1`` (the
        default) keeps everything on the serial reference path.  Output
        is bit-identical for a fixed seed regardless of this value.
    chunks_per_worker:
        Shard granularity of the decide-merges phase: candidate groups
        are split into ``workers * chunks_per_worker`` contiguous chunks
        so the apply phase can start consuming decisions while later
        chunks are still being computed.
    serial_zero_threshold:
        Zero-threshold iterations (the final SLUGGER pass) merge almost
        every candidate, so optimistic decide work would be thrown away
        wholesale; with this flag (default) those iterations run on the
        serial path directly.  Purely a performance heuristic — flipping
        it cannot change the output.
    min_parallel_items:
        Smallest number of shardable items (candidate groups) worth
        spinning up a process pool for; below it the phase runs serially.
    shingle_parallel_min_nodes:
        Smallest graph (node count) for which the batch shingle phase is
        sharded across processes; below it the pool dispatch overhead
        exceeds the hashing work.
    """

    workers: int = 1
    chunks_per_worker: int = 4
    serial_zero_threshold: bool = True
    min_parallel_items: int = 2
    shingle_parallel_min_nodes: int = 25000

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {self.workers}")
        if self.chunks_per_worker < 1:
            raise ConfigurationError(
                f"chunks_per_worker must be >= 1, got {self.chunks_per_worker}"
            )
        if self.min_parallel_items < 0:
            raise ConfigurationError(
                f"min_parallel_items must be >= 0, got {self.min_parallel_items}"
            )
        if self.shingle_parallel_min_nodes < 0:
            raise ConfigurationError(
                f"shingle_parallel_min_nodes must be >= 0, "
                f"got {self.shingle_parallel_min_nodes}"
            )

    @property
    def parallel(self) -> bool:
        """Whether this configuration can use process sharding at all."""
        return self.workers > 1 and process_execution_available()

    def effective_workers(self, items: int) -> int:
        """Worker count actually used for ``items`` shardable work items."""
        if not self.parallel or items < max(self.min_parallel_items, 2):
            return 1
        return min(self.workers, items)


#: The default configuration: everything on the serial reference path.
SERIAL_EXECUTION = ExecutionConfig()


def shard_bounds(total: int, shards: int) -> List[Tuple[int, int]]:
    """Split ``range(total)`` into at most ``shards`` contiguous ranges.

    Every range is non-empty and the concatenation covers ``0..total-1``
    in order, so mapping a pure function over the shards and chaining the
    results reproduces the unsharded computation exactly.
    """
    shards = max(1, min(shards, total))
    bounds = []
    for i in range(shards):
        start = i * total // shards
        stop = (i + 1) * total // shards
        if stop > start:
            bounds.append((start, stop))
    return bounds


class SerialExecutor:
    """Run shards inline, in order — the reference executor."""

    workers = 1

    def __init__(self, context: Any = None) -> None:
        self._context = context

    def map_shards(self, fn: Callable[[Any], Any], payloads: Sequence[Any]) -> Iterator[Any]:
        """Yield ``fn(payload)`` for every payload, lazily and in order."""
        def results() -> Iterator[Any]:
            for payload in payloads:
                _install_context(self._context)
                yield fn(payload)
        return results()

    def close(self) -> None:
        if _WORKER_CONTEXT is self._context:
            _install_context(None)

    def __enter__(self) -> "SerialExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ProcessShardExecutor:
    """Fan shards out over a fork-based ``ProcessPoolExecutor``.

    The worker context is installed before any shard is submitted, so
    the pool's processes — forked on first submission — inherit it as a
    copy-on-write snapshot.  ``map_shards`` submits every payload up
    front (forcing all workers to fork against the *current* snapshot,
    before the caller starts mutating it) and returns a lazy, in-order
    result iterator, which lets a consumer overlap downstream work with
    still-running shards.
    """

    def __init__(self, workers: int, context: Any = None) -> None:
        if not process_execution_available():
            raise ConfigurationError(
                "process execution requires the 'fork' start method; "
                "use SerialExecutor on this platform"
            )
        self.workers = max(1, workers)
        self._context = context
        self._pool: Optional[ProcessPoolExecutor] = None

    def map_shards(self, fn: Callable[[Any], Any], payloads: Sequence[Any]) -> Iterator[Any]:
        """Submit all payloads and yield results in payload order."""
        payloads = list(payloads)
        _install_context(self._context)
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=min(self.workers, max(1, len(payloads))),
                mp_context=multiprocessing.get_context("fork"),
            )
        # ``map`` submits every payload immediately; with the fork start
        # method all worker processes are created during this call, which
        # pins their inherited snapshot to the state as of *now*.
        return self._pool.map(fn, payloads)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if _WORKER_CONTEXT is self._context:
            _install_context(None)

    def __enter__(self) -> "ProcessShardExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def executor_for(config: Optional[ExecutionConfig], items: int, context: Any = None):
    """The executor matching ``config`` for ``items`` shardable work items.

    Falls back to :class:`SerialExecutor` when the configuration is
    serial, the platform cannot fork, or the work is too small to be
    worth a pool.  The choice can never affect results — only where the
    work runs.
    """
    if config is None:
        return SerialExecutor(context)
    workers = config.effective_workers(items)
    if workers <= 1:
        return SerialExecutor(context)
    return ProcessShardExecutor(workers, context)
