"""Cooperative run hooks: progress events, cancel tokens, shared substrates.

The serving layer (:mod:`repro.service`) needs three things from a
running summarizer that the one-shot API never exposed:

* **progress** — per-iteration events a job can forward to callbacks;
* **cancellation** — a token checked between iterations, so a queued or
  running job can be abandoned without killing the process;
* **shared substrates** — prebuilt :class:`~repro.graphs.dense.DenseAdjacency`
  / CSR views (and warm shingle pools) reused across runs on the same
  graph instead of being rebuilt per call.

:class:`RunControl` carries the first two, :class:`GraphResources` the
third.  Both are plain, dependency-free objects so the core drivers
(``core/slugger.py``, ``baselines/sweg.py``) can accept them without
importing the service layer; passing ``None`` (the default everywhere)
keeps the historical one-shot behavior bit-for-bit.

Determinism: neither hook can change a summary.  Progress events are
observations; cancellation aborts a run (raising
:class:`~repro.exceptions.JobCancelled`) rather than truncating it; and
a :class:`GraphResources` substrate is byte-equivalent to the one the
run would have built itself.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.exceptions import JobCancelled

__all__ = ["GraphResources", "RunControl"]


class RunControl:
    """Progress/cancel hook threaded through a single summarizer run.

    Parameters
    ----------
    on_progress:
        Callback invoked with one ``dict`` per event (at least a
        ``"stage"`` key; iterative methods add ``iteration`` /
        ``iterations`` and per-iteration counters).  Callbacks run on
        the thread executing the summarizer and must be cheap.
    cancel:
        Object with an ``is_set() -> bool`` method (e.g. a
        ``threading.Event``).  :meth:`checkpoint` raises
        :class:`~repro.exceptions.JobCancelled` once it is set; drivers
        call it between iterations, so cancellation is cooperative and
        never yields a partial summary.
    checkpoint_sink:
        Callback invoked with one payload ``dict`` (``iteration``,
        ``summary``, ``rng_state``, ``history``) after every completed
        iteration — the persistence layer serializes it into a
        checkpoint container.  Runs synchronously on the summarizer
        thread, so the snapshot is consistent; ``None`` disables
        checkpointing (the historical behavior).
    resume_payload:
        A previously checkpointed payload ``dict`` to restart from.
        Drivers that support resumption restore the summary and RNG
        stream position and skip the completed iterations; the result
        stays bit-identical to an uninterrupted fixed-seed run.
    metrics:
        A :class:`repro.obs.MetricsRegistry` the run records counters /
        gauges / histograms into, or ``None`` for the shared no-op
        registry.  Telemetry is observational: enabling it cannot
        change a summary.
    tracer:
        A :class:`repro.obs.Tracer` the run records phase / shard spans
        into, or ``None`` for the shared no-op tracer (whose spans
        still self-time, so drivers read one measurement source either
        way).
    """

    __slots__ = ("_on_progress", "_cancel", "checkpoint_sink", "resume_payload",
                 "metrics", "tracer", "_seq")

    def __init__(
        self,
        on_progress: Optional[Callable[[Dict[str, Any]], None]] = None,
        cancel: Optional[Any] = None,
        checkpoint_sink: Optional[Callable[[Dict[str, Any]], None]] = None,
        resume_payload: Optional[Dict[str, Any]] = None,
        metrics: Optional[Any] = None,
        tracer: Optional[Any] = None,
    ) -> None:
        # Imported here (stdlib-only module) to keep hooks importable
        # without dragging the telemetry package into every consumer.
        from repro.obs import NULL_METRICS, NULL_TRACER

        self._on_progress = on_progress
        self._cancel = cancel
        self.checkpoint_sink = checkpoint_sink
        self.resume_payload = resume_payload
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._seq = 0

    def cancelled(self) -> bool:
        """Whether the cancel token has been set."""
        return self._cancel is not None and self._cancel.is_set()

    def checkpoint(self) -> None:
        """Raise :class:`~repro.exceptions.JobCancelled` if cancelled."""
        if self.cancelled():
            raise JobCancelled("run cancelled between iterations")

    def emit(self, stage: str, **values: Any) -> None:
        """Report one progress event to the callback (if any).

        Every event carries a monotonic ``seq`` (0, 1, 2, ...) assigned
        at emit time, so consumers can detect reordering or loss on any
        transport without trusting arrival order.
        """
        if self._on_progress is not None:
            event: Dict[str, Any] = {"stage": stage, "seq": self._seq}
            self._seq += 1
            event.update(values)
            self._on_progress(event)

    def save_checkpoint(self, payload: Dict[str, Any]) -> None:
        """Hand an iteration-boundary snapshot to the checkpoint sink."""
        if self.checkpoint_sink is not None:
            self.checkpoint_sink(payload)


class GraphResources:
    """Prebuilt, shareable per-graph substrate views.

    Subclasses (the service layer's ``GraphHandle``) memoize the dense
    integer-id substrate so repeated runs against the same graph reuse
    one ``NodeIndex`` / ``DenseAdjacency`` / CSR build.  Every accessor
    may return ``None``, which means "build your own" — the base class
    always does, so it doubles as the no-op default.

    The returned objects are treated as **read-only** by every consumer
    (summarizer runs never mutate the input adjacency), which is what
    makes sharing them across concurrent runs safe.
    """

    def dense(self):
        """A prebuilt :class:`~repro.graphs.dense.DenseAdjacency`, or ``None``."""
        return None

    def csr(self):
        """A prebuilt frozen :class:`~repro.graphs.dense.CSRAdjacency`, or ``None``."""
        return None

    def shingle_executor(self, execution) -> Optional[Any]:
        """A warm executor for sharded shingle sweeps, or ``None``.

        The executor's worker context must be ``(csr, labels)`` for this
        graph.  Ownership stays with the resources object — borrowers
        must *not* close it; the owner (e.g. a service graph store)
        closes it on shutdown.
        """
        return None
