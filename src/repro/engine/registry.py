"""The summarizer registry: one lookup table for every method.

The registry is the single place a summarization method is wired into
the system.  ``cli.py compare``, :mod:`repro.analysis.comparison`, the
experiment figures, and the examples all resolve methods by name here,
so adding a scenario (a streaming variant, a lossy mode, a new baseline)
means registering one :class:`~repro.engine.base.Summarizer` subclass —
no per-method glue anywhere else.

>>> from repro import engine
>>> sorted(engine.available_methods())[:3]
['greedy', 'mosso', 'randomized']
>>> result = engine.run("slugger", some_graph, seed=0, iterations=5)  # doctest: +SKIP
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Sequence, Type

from repro.engine.base import EngineResult, Summarizer
from repro.engine.execution import ExecutionConfig
from repro.engine.hooks import GraphResources, RunControl
from repro.exceptions import ConfigurationError
from repro.graphs.graph import Graph
from repro.utils.rng import SeedLike

__all__ = [
    "DEFAULT_SUITE",
    "available_methods",
    "create",
    "default_suite",
    "register",
    "run",
]

_REGISTRY: Dict[str, Type[Summarizer]] = {}

#: Methods the paper's evaluation compares side by side (Fig. 1(a),
#: Fig. 5); GREEDY is registered but excluded from the default suite
#: because it is quadratic-ish and only used as an optimality reference.
DEFAULT_SUITE = ("slugger", "sweg", "mosso", "randomized", "sags")

_BUILTINS_LOADED = False
_BUILTINS_LOADING = False
_BUILTINS_LOCK = threading.RLock()


def _ensure_builtins() -> None:
    """Import the built-in adapters on first registry use (thread-safe).

    Lazy loading keeps the import graph acyclic: the core drivers import
    the execution layer from this package, and the adapters import the
    core drivers — registering them at ``repro.engine`` import time would
    close that loop.  Concurrent first uses (service dispatcher threads)
    serialize on the lock; the ``_BUILTINS_LOADING`` flag lets the
    adapters' own :func:`register` calls — made on the importing thread,
    which already holds the re-entrant lock — pass through while the
    module body runs.
    """
    global _BUILTINS_LOADED, _BUILTINS_LOADING
    if _BUILTINS_LOADED:
        return
    # Forked workers never reach past the lock-free fast path above: the
    # service preloads the registry in the parent (available_methods())
    # before any fork, so _BUILTINS_LOADED is already True in every child.
    # repro-lint: disable=worker-lock (parent preloads pre-fork; workers take the loaded fast path)
    with _BUILTINS_LOCK:
        if _BUILTINS_LOADED or _BUILTINS_LOADING:
            return
        # repro-lint: disable=worker-lock (unreachable post-fork; see the preload note above)
        _BUILTINS_LOADING = True
        try:
            from repro.engine import adapters  # noqa: F401 - registration side effect
        finally:
            # repro-lint: disable=worker-lock (unreachable post-fork; see the preload note above)
            _BUILTINS_LOADING = False
        # repro-lint: disable=worker-lock (unreachable post-fork; see the preload note above)
        _BUILTINS_LOADED = True


def register(cls: Type[Summarizer]) -> Type[Summarizer]:
    """Class decorator adding a :class:`Summarizer` subclass to the registry."""
    _ensure_builtins()
    if not cls.name:
        raise ConfigurationError(f"{cls.__name__} must define a non-empty name")
    if cls.name in _REGISTRY:
        raise ConfigurationError(f"summarizer {cls.name!r} is already registered")
    _REGISTRY[cls.name] = cls
    return cls


def available_methods() -> List[str]:
    """Names of all registered summarizers, in registration order."""
    _ensure_builtins()
    return list(_REGISTRY)


def create(method: str, **options: Any) -> Summarizer:
    """Instantiate the summarizer registered under ``method``.

    ``options`` are method-specific constructor arguments (e.g.
    ``iterations`` for SLUGGER/SWeG, ``epsilon`` for lossy SWeG).

    .. note::
       For serving workloads — repeated or concurrent requests, queueing,
       progress, cancellation — prefer the service layer
       (:class:`repro.service.SummaryService`); ``create`` remains the
       low-level constructor it uses internally.
    """
    _ensure_builtins()
    try:
        cls = _REGISTRY[method]
    except KeyError:
        raise ConfigurationError(
            f"unknown summarizer {method!r}; available: {', '.join(available_methods())}"
        ) from None
    return cls(**options)


def run(
    method: str,
    graph: Graph,
    seed: SeedLike = None,
    execution: Optional["ExecutionConfig"] = None,
    control: Optional[RunControl] = None,
    resources: Optional[GraphResources] = None,
    **options: Any,
) -> EngineResult:
    """One-shot dispatch, served warm by the default service.

    Since the service layer landed this is a thin shim over
    :func:`repro.service.default_service`: the request runs inline on
    the calling thread, but substrate builds are interned across calls
    on the same graph.  Output is bit-identical to constructing the
    summarizer directly — and to submitting the same request to any
    :class:`repro.service.SummaryService` (queued, concurrent, thread or
    process mode).  New code that issues many requests should talk to a
    service instance directly (``submit`` / ``await summarize``);
    ``run`` stays as the convenient one-shot spelling.

    ``execution`` configures the parallel executor layer for methods that
    support it (``supports_parallel``); other methods run serially and
    ignore it.  ``control`` optionally receives per-iteration progress
    events and carries a cancel token.  ``resources`` injects prebuilt
    substrate views — e.g. a :class:`repro.storage.StoredGraph` whose
    memory-mapped CSR the run consumes zero-copy — and bypasses the
    default service's interning for the call; output is bit-identical
    either way.
    """
    from repro.service import SummaryRequest, default_service

    request = SummaryRequest(
        method=method, graph=graph, seed=seed, options=options, execution=execution
    )
    return default_service().run(request, control=control, resources=resources)


def default_suite(
    iterations: int = 10, methods: Optional[Sequence[str]] = None
) -> Dict[str, Summarizer]:
    """Configured summarizers for a method comparison.

    ``iterations`` is applied to every iteration-controlled method
    (SLUGGER and SWeG); the rest take no iteration knob.  ``methods``
    defaults to :data:`DEFAULT_SUITE`.
    """
    _ensure_builtins()
    names = DEFAULT_SUITE if methods is None else tuple(methods)
    suite: Dict[str, Summarizer] = {}
    for name in names:
        cls = _REGISTRY.get(name)
        if cls is None:
            raise ConfigurationError(
                f"unknown summarizer {name!r}; available: {', '.join(available_methods())}"
            )
        options = {"iterations": iterations} if cls.iteration_controlled else {}
        suite[name] = cls(**options)
    return suite
