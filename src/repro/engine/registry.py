"""The summarizer registry: one lookup table for every method.

The registry is the single place a summarization method is wired into
the system.  ``cli.py compare``, :mod:`repro.analysis.comparison`, the
experiment figures, and the examples all resolve methods by name here,
so adding a scenario (a streaming variant, a lossy mode, a new baseline)
means registering one :class:`~repro.engine.base.Summarizer` subclass —
no per-method glue anywhere else.

>>> from repro import engine
>>> sorted(engine.available_methods())[:3]
['greedy', 'mosso', 'randomized']
>>> result = engine.run("slugger", some_graph, seed=0, iterations=5)  # doctest: +SKIP
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Type

from repro.engine.base import EngineResult, Summarizer
from repro.engine.execution import ExecutionConfig
from repro.exceptions import ConfigurationError
from repro.graphs.graph import Graph
from repro.utils.rng import SeedLike

_REGISTRY: Dict[str, Type[Summarizer]] = {}

#: Methods the paper's evaluation compares side by side (Fig. 1(a),
#: Fig. 5); GREEDY is registered but excluded from the default suite
#: because it is quadratic-ish and only used as an optimality reference.
DEFAULT_SUITE = ("slugger", "sweg", "mosso", "randomized", "sags")

_BUILTINS_LOADED = False


def _ensure_builtins() -> None:
    """Import the built-in adapters on first registry use.

    Lazy loading keeps the import graph acyclic: the core drivers import
    the execution layer from this package, and the adapters import the
    core drivers — registering them at ``repro.engine`` import time would
    close that loop.  The flag is set *before* the import because the
    adapters call :func:`register` while their module body runs.
    """
    global _BUILTINS_LOADED
    if not _BUILTINS_LOADED:
        _BUILTINS_LOADED = True
        from repro.engine import adapters  # noqa: F401 - registration side effect


def register(cls: Type[Summarizer]) -> Type[Summarizer]:
    """Class decorator adding a :class:`Summarizer` subclass to the registry."""
    _ensure_builtins()
    if not cls.name:
        raise ConfigurationError(f"{cls.__name__} must define a non-empty name")
    if cls.name in _REGISTRY:
        raise ConfigurationError(f"summarizer {cls.name!r} is already registered")
    _REGISTRY[cls.name] = cls
    return cls


def available_methods() -> List[str]:
    """Names of all registered summarizers, in registration order."""
    _ensure_builtins()
    return list(_REGISTRY)


def create(method: str, **options: Any) -> Summarizer:
    """Instantiate the summarizer registered under ``method``.

    ``options`` are method-specific constructor arguments (e.g.
    ``iterations`` for SLUGGER/SWeG, ``epsilon`` for lossy SWeG).
    """
    _ensure_builtins()
    try:
        cls = _REGISTRY[method]
    except KeyError:
        raise ConfigurationError(
            f"unknown summarizer {method!r}; available: {', '.join(available_methods())}"
        ) from None
    return cls(**options)


def run(
    method: str,
    graph: Graph,
    seed: SeedLike = None,
    execution: Optional["ExecutionConfig"] = None,
    **options: Any,
) -> EngineResult:
    """One-shot dispatch: ``create(method, **options).summarize(graph, seed)``.

    ``execution`` configures the parallel executor layer for methods that
    support it (``supports_parallel``); other methods run serially and
    ignore it.  Results are bit-identical either way for a fixed seed.
    """
    return create(method, **options).summarize(graph, seed=seed, execution=execution)


def default_suite(
    iterations: int = 10, methods: Optional[Sequence[str]] = None
) -> Dict[str, Summarizer]:
    """Configured summarizers for a method comparison.

    ``iterations`` is applied to every iteration-controlled method
    (SLUGGER and SWeG); the rest take no iteration knob.  ``methods``
    defaults to :data:`DEFAULT_SUITE`.
    """
    _ensure_builtins()
    names = DEFAULT_SUITE if methods is None else tuple(methods)
    suite: Dict[str, Summarizer] = {}
    for name in names:
        cls = _REGISTRY.get(name)
        if cls is None:
            raise ConfigurationError(
                f"unknown summarizer {name!r}; available: {', '.join(available_methods())}"
            )
        options = {"iterations": iterations} if cls.iteration_controlled else {}
        suite[name] = cls(**options)
    return suite
