"""Exception types shared across the :mod:`repro` package.

Keeping a small, explicit exception hierarchy lets callers distinguish
user errors (bad arguments, malformed files) from internal invariant
violations (a summary that no longer represents its input graph).
"""

from __future__ import annotations

__all__ = [
    "CompressionError",
    "ConfigurationError",
    "ContainerFormatError",
    "DatasetError",
    "GraphFormatError",
    "InvalidGraphError",
    "InvalidStateError",
    "JobCancelled",
    "JobTimeoutError",
    "LintError",
    "LossyBoundError",
    "ReproError",
    "ServiceClosedError",
    "ServiceError",
    "ServiceSaturatedError",
    "StreamError",
    "SummaryInvariantError",
    "TelemetryError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class GraphFormatError(ReproError):
    """Raised when an edge-list file or graph description cannot be parsed."""


class ContainerFormatError(GraphFormatError):
    """Raised when a binary graph container is malformed or corrupted.

    Covers bad magic/version, truncated files, out-of-range sections,
    and checksum mismatches in the :mod:`repro.storage` container format.
    A corrupted container must fail loudly here — never deserialize into
    a silently wrong graph.
    """


class InvalidGraphError(ReproError):
    """Raised when a graph violates the simple-undirected-graph contract."""


class SummaryInvariantError(ReproError):
    """Raised when a summary fails to represent its input graph exactly.

    Lossless summarization is the core contract of this library; any
    operation that would silently break it raises this error instead.
    """


class ConfigurationError(ReproError):
    """Raised when an algorithm is configured with invalid parameters."""


class InvalidStateError(ReproError, RuntimeError):
    """Raised when an operation is invalid for an object's lifecycle state.

    Examples: submitting shards to a closed executor, reading the worker
    context outside a shard, stopping a stopwatch that was never started.
    Subclasses :class:`RuntimeError` for backward compatibility — these
    sites raised ``RuntimeError`` before the taxonomy covered them, and
    callers may still catch it.
    """


class LintError(ReproError):
    """Raised when the :mod:`repro.devtools` static analyzer cannot run.

    Covers unreadable or unparseable source files, malformed baselines,
    and unknown rule ids — analyzer *operation* failures, never rule
    findings (those are data, returned in the report).
    """


class DatasetError(ReproError):
    """Raised when a named dataset is unknown or cannot be generated."""


class CompressionError(ReproError):
    """Raised when a bit stream or compressed payload is malformed.

    The :mod:`repro.compression` codecs raise this instead of silently
    producing a wrong graph, keeping the lossless contract end to end.
    """


class StreamError(ReproError):
    """Raised when a dynamic-graph event stream is inconsistent.

    Examples include deleting an edge that is not present or inserting a
    self-loop, both of which would leave the maintained graph and the
    maintained summary out of sync.
    """


class LossyBoundError(ReproError):
    """Raised when a lossy summarization request violates its error bound."""


class JobCancelled(ReproError):
    """Raised when a summarization run is cancelled cooperatively.

    The pipeline's cancel token is checked between iterations (see
    :class:`repro.engine.hooks.RunControl`); a cancelled run raises this
    instead of returning a partial summary, so no caller can mistake an
    interrupted run for a complete one.  :meth:`SummaryJob.result
    <repro.service.jobs.SummaryJob.result>` re-raises it to the waiter.
    """


class TelemetryError(ReproError):
    """Raised when telemetry data is malformed or inconsistent.

    Covers metric type/bucket mismatches during registry merges and
    unparseable exposition text in :mod:`repro.obs.export`.  Telemetry
    failures never corrupt a summary — they surface here instead.
    """


class ServiceError(ReproError):
    """Base class for errors raised by the :mod:`repro.service` layer."""


class JobTimeoutError(ServiceError, TimeoutError):
    """Raised when waiting on a job outlives the caller's timeout.

    Subclasses :class:`TimeoutError` for backward compatibility —
    :meth:`SummaryJob.result <repro.service.jobs.SummaryJob.result>`
    raised the stdlib type before the taxonomy covered it, and callers
    may still catch it.
    """


class ServiceClosedError(ServiceError):
    """Raised when a request is submitted to a service that has shut down."""


class ServiceSaturatedError(ServiceError):
    """Raised when the service's bounded request queue is full.

    Backpressure is explicit: callers either retry, block via
    ``submit(..., block=True)``, or raise their queue bound.
    """
