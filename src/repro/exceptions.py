"""Exception types shared across the :mod:`repro` package.

Keeping a small, explicit exception hierarchy lets callers distinguish
user errors (bad arguments, malformed files) from internal invariant
violations (a summary that no longer represents its input graph).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class GraphFormatError(ReproError):
    """Raised when an edge-list file or graph description cannot be parsed."""


class InvalidGraphError(ReproError):
    """Raised when a graph violates the simple-undirected-graph contract."""


class SummaryInvariantError(ReproError):
    """Raised when a summary fails to represent its input graph exactly.

    Lossless summarization is the core contract of this library; any
    operation that would silently break it raises this error instead.
    """


class ConfigurationError(ReproError):
    """Raised when an algorithm is configured with invalid parameters."""


class DatasetError(ReproError):
    """Raised when a named dataset is unknown or cannot be generated."""


class CompressionError(ReproError):
    """Raised when a bit stream or compressed payload is malformed.

    The :mod:`repro.compression` codecs raise this instead of silently
    producing a wrong graph, keeping the lossless contract end to end.
    """


class StreamError(ReproError):
    """Raised when a dynamic-graph event stream is inconsistent.

    Examples include deleting an edge that is not present or inserting a
    self-loop, both of which would leave the maintained graph and the
    maintained summary out of sync.
    """


class LossyBoundError(ReproError):
    """Raised when a lossy summarization request violates its error bound."""
