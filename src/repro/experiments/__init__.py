"""Experiment harness regenerating every table and figure of the paper.

Each experiment function returns plain records (lists of dictionaries)
that the benchmark modules print in the same layout as the paper's
artifact.  The mapping between experiments and paper artifacts is listed
in DESIGN.md (per-experiment index) and the measured-vs-paper comparison
lives in EXPERIMENTS.md.
"""

from repro.experiments.runner import ExperimentRecord, run_repeated, sweep
from repro.experiments.figures import (
    compactness_experiment,
    composition_experiment,
    decompression_experiment,
    headline_experiment,
    runtime_experiment,
    scalability_experiment,
    summary_algorithm_experiment,
    theorem1_experiment,
)
from repro.experiments.tables import (
    height_sweep,
    iteration_sweep,
    pruning_ablation,
)
from repro.experiments.extensions import (
    compression_pipeline_experiment,
    cost_breakdown_experiment,
    lossy_tradeoff_experiment,
    ordering_ablation_experiment,
    streaming_experiment,
)
from repro.experiments.reporting import format_series, format_table

__all__ = [
    "compression_pipeline_experiment",
    "cost_breakdown_experiment",
    "lossy_tradeoff_experiment",
    "ordering_ablation_experiment",
    "streaming_experiment",
    "ExperimentRecord",
    "run_repeated",
    "sweep",
    "compactness_experiment",
    "composition_experiment",
    "decompression_experiment",
    "headline_experiment",
    "runtime_experiment",
    "scalability_experiment",
    "summary_algorithm_experiment",
    "theorem1_experiment",
    "height_sweep",
    "iteration_sweep",
    "pruning_ablation",
    "format_series",
    "format_table",
]
