"""Extension experiments beyond the paper's tables and figures.

These experiments exercise the parts of the system the paper motivates
but does not evaluate directly:

* :func:`compression_pipeline_experiment` — the Sect. I claim that
  summarization composes with downstream graph compression: bits per
  edge of raw-graph gap compression versus summarize-then-compress.
* :func:`ordering_ablation_experiment` — effect of the node-relabeling
  scheme (references [9]-[11]) on the downstream compressor.
* :func:`lossy_tradeoff_experiment` — the size/error trade-off of the
  lossy summarization variant discussed in Sect. V.
* :func:`streaming_experiment` — online summary quality over a fully
  dynamic edge stream (the MoSSo setting) on the same dataset analogues.
* :func:`cost_breakdown_experiment` — the per-root decomposition of
  Eq. 2, complementing the edge-type composition of Fig. 6.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.analysis.cost_breakdown import cost_decomposition
from repro.compression.adjacency import encode_adjacency
from repro.compression.ordering import compute_ordering, ordering_locality
from repro.compression.pipeline import compression_report as pipeline_report
from repro.core import Slugger, SluggerConfig
from repro.experiments.runner import ExperimentRecord
from repro.graphs.datasets import load_dataset
from repro.lossy.bounded import lossy_sweg_summarize
from repro.streaming.online import replay_stream
from repro.streaming.stream import fully_dynamic_stream, insertion_stream

__all__ = [
    "compression_pipeline_experiment",
    "cost_breakdown_experiment",
    "lossy_tradeoff_experiment",
    "ordering_ablation_experiment",
    "streaming_experiment",
]


def compression_pipeline_experiment(
    datasets: Sequence[str],
    iterations: int = 10,
    seed: int = 0,
    code: str = "gamma",
    ordering: str = "bfs",
) -> List[ExperimentRecord]:
    """Bits per edge: gap-compressed raw graph versus summarize-then-compress."""
    records: List[ExperimentRecord] = []
    for key in datasets:
        graph = load_dataset(key, seed=seed)
        summary = Slugger(SluggerConfig(iterations=iterations, seed=seed)).summarize(graph).summary
        report = pipeline_report(graph, summary, code=code, ordering=ordering, seed=seed)
        records.append(ExperimentRecord(
            label=f"{key}/{code}/{ordering}",
            parameters={"dataset": key, "code": code, "ordering": ordering},
            values={
                "raw_bits_per_edge": report["raw_bits_per_edge"],
                "summary_bits_per_edge": report["summary_bits_per_edge"],
                "pipeline_ratio": report["pipeline_ratio"],
                "relative_size": summary.relative_size(graph),
            },
        ))
    return records


def ordering_ablation_experiment(
    dataset: str = "CN",
    orderings: Sequence[str] = ("natural", "degree", "bfs", "shingle"),
    code: str = "gamma",
    seed: int = 0,
) -> List[ExperimentRecord]:
    """Effect of the node-relabeling scheme on the raw-graph gap compressor."""
    graph = load_dataset(dataset, seed=seed)
    records: List[ExperimentRecord] = []
    for scheme in orderings:
        node_order = compute_ordering(graph, scheme, seed=seed)
        compressed = encode_adjacency(
            graph, code=code, ordering=scheme, seed=seed, precomputed_ordering=node_order
        )
        records.append(ExperimentRecord(
            label=f"{dataset}/{scheme}",
            parameters={"dataset": dataset, "ordering": scheme, "code": code},
            values={
                "bits_per_edge": compressed.bits_per_edge(),
                "locality": ordering_locality(graph, node_order),
            },
        ))
    return records


def lossy_tradeoff_experiment(
    datasets: Sequence[str],
    epsilons: Sequence[float] = (0.0, 0.1, 0.25, 0.5),
    iterations: int = 10,
    seed: int = 0,
) -> List[ExperimentRecord]:
    """Relative size and measured error of lossy SWeG as the error bound ε grows."""
    records: List[ExperimentRecord] = []
    for key in datasets:
        graph = load_dataset(key, seed=seed)
        for epsilon in epsilons:
            result = lossy_sweg_summarize(
                graph, epsilon=epsilon, iterations=iterations, seed=seed
            )
            records.append(ExperimentRecord(
                label=f"{key}/eps={epsilon}",
                parameters={"dataset": key, "epsilon": epsilon},
                values={
                    "relative_size": result.relative_size,
                    "max_relative_error": result.measured_error,
                    "dropped_corrections": float(result.dropped_corrections),
                },
            ))
    return records


def streaming_experiment(
    dataset: str = "FA",
    deletion_ratio: float = 0.2,
    checkpoints: int = 8,
    seed: int = 0,
) -> List[ExperimentRecord]:
    """Online (MoSSo) summary quality over insertion-only and fully dynamic streams."""
    graph = load_dataset(dataset, seed=seed)
    streams = {
        "insertion_only": insertion_stream(graph, seed=seed),
        "fully_dynamic": fully_dynamic_stream(graph, deletion_ratio=deletion_ratio, seed=seed),
    }
    records: List[ExperimentRecord] = []
    for name, events in streams.items():
        result = replay_stream(events, checkpoints=checkpoints, validate=False)
        result.final_summary.validate(result.final_graph)
        for point in result.checkpoints:
            records.append(ExperimentRecord(
                label=f"{dataset}/{name}/t={point.time}",
                parameters={"dataset": dataset, "stream": name, "time": point.time},
                values={
                    "num_edges": float(point.num_edges),
                    "relative_size": point.relative_size,
                },
            ))
    return records


def cost_breakdown_experiment(
    datasets: Sequence[str],
    iterations: int = 10,
    seed: int = 0,
) -> List[ExperimentRecord]:
    """Per-root decomposition of the encoding cost (Eq. 2) of SLUGGER outputs."""
    records: List[ExperimentRecord] = []
    for key in datasets:
        graph = load_dataset(key, seed=seed)
        summary = Slugger(SluggerConfig(iterations=iterations, seed=seed)).summarize(graph).summary
        decomposition = cost_decomposition(summary)
        records.append(ExperimentRecord(
            label=key,
            parameters={"dataset": key},
            values=decomposition,
        ))
    return records
