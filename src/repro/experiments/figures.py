"""Experiments behind the paper's figures (Fig. 1, Fig. 5, Fig. 6, appendix).

Every function is pure computation returning :class:`ExperimentRecord`
lists; the benchmark modules choose the dataset subsets and parameter
scales (small by default so the whole suite runs in minutes in pure
Python) and print the results next to the paper's reported numbers.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

from repro import engine
from repro.algorithms import bfs_order, count_triangles, dijkstra_distances, pagerank
from repro.analysis.comparison import compare_methods, default_methods
from repro.analysis.metrics import compression_report, edge_composition
from repro.core import Slugger, SluggerConfig
from repro.experiments.runner import ExperimentRecord
from repro.graphs.datasets import load_dataset
from repro.graphs.generators import theorem1_graph
from repro.graphs.graph import Graph
from repro.graphs.sampling import scalability_series
from repro.utils.rng import ensure_rng
from repro.utils.stats import linear_fit, pearson_correlation

__all__ = [
    "compactness_experiment",
    "composition_experiment",
    "decompression_experiment",
    "headline_experiment",
    "runtime_experiment",
    "scalability_experiment",
    "summary_algorithm_experiment",
    "theorem1_experiment",
]


# ----------------------------------------------------------------------
# Fig. 1(a) and Fig. 5(a)/(b): method comparison
# ----------------------------------------------------------------------
def headline_experiment(
    dataset: str = "PR", iterations: int = 10, seed: int = 0
) -> List[ExperimentRecord]:
    """Fig. 1(a): relative output size of the five methods on the PR dataset."""
    return compactness_experiment([dataset], iterations=iterations, seed=seed)


def compactness_experiment(
    datasets: Sequence[str],
    iterations: int = 10,
    seed: int = 0,
    validate: bool = True,
) -> List[ExperimentRecord]:
    """Fig. 5(a): relative output size of every method on every dataset."""
    records: List[ExperimentRecord] = []
    methods = default_methods(iterations=iterations)
    for key in datasets:
        graph = load_dataset(key, seed=seed)
        results = compare_methods(graph, methods=methods, seed=seed, validate=validate)
        for result in results:
            records.append(ExperimentRecord(
                label=f"{key}/{result.method}",
                parameters={"dataset": key, "method": result.method},
                values={
                    "relative_size": result.relative_size,
                    "runtime_seconds": result.runtime_seconds,
                    "cost": result.report["cost"],
                    "num_edges": result.report["num_edges"],
                },
            ))
    return records


def runtime_experiment(
    datasets: Sequence[str],
    iterations: int = 10,
    seed: int = 0,
) -> List[ExperimentRecord]:
    """Fig. 5(b): running time of every method, with speed-ups relative to SLUGGER."""
    records = compactness_experiment(datasets, iterations=iterations, seed=seed, validate=False)
    slugger_times: Dict[str, float] = {
        record.parameters["dataset"]: record.values["runtime_seconds"]
        for record in records
        if record.parameters["method"] == "slugger"
    }
    for record in records:
        dataset = record.parameters["dataset"]
        baseline = record.values["runtime_seconds"]
        if baseline > 0:
            record.values["speedup_vs_slugger"] = slugger_times[dataset] / baseline
    return records


# ----------------------------------------------------------------------
# Fig. 1(b): scalability
# ----------------------------------------------------------------------
def scalability_experiment(
    dataset: str = "U5",
    fractions: Sequence[float] = (0.2, 0.4, 0.6, 0.8, 1.0),
    iterations: int = 5,
    seed: int = 0,
) -> List[ExperimentRecord]:
    """Fig. 1(b): SLUGGER runtime versus |E| on node-sampled subgraphs.

    The last record carries the least-squares slope and R² of runtime as a
    function of |E|; a high R² is the textual counterpart of the "linear
    scalability" claim.
    """
    graph = load_dataset(dataset, seed=seed)
    subgraphs = scalability_series(graph, fractions, seed=seed)
    records: List[ExperimentRecord] = []
    edge_counts: List[float] = []
    runtimes: List[float] = []
    for fraction, subgraph in zip(fractions, subgraphs):
        if subgraph.num_edges == 0:
            continue
        config = SluggerConfig(iterations=iterations, seed=seed)
        result = Slugger(config).summarize(subgraph)
        edge_counts.append(float(subgraph.num_edges))
        runtimes.append(result.runtime_seconds)
        records.append(ExperimentRecord(
            label=f"fraction={fraction}",
            parameters={"dataset": dataset, "fraction": fraction},
            values={
                "num_edges": float(subgraph.num_edges),
                "runtime_seconds": result.runtime_seconds,
                "relative_size": result.relative_size(subgraph),
            },
        ))
    if len(edge_counts) >= 2:
        slope, intercept, r_squared = linear_fit(edge_counts, runtimes)
        records.append(ExperimentRecord(
            label="linear-fit",
            parameters={"dataset": dataset},
            values={"slope": slope, "intercept": intercept, "r_squared": r_squared},
        ))
    return records


# ----------------------------------------------------------------------
# Fig. 6: composition of outputs
# ----------------------------------------------------------------------
def composition_experiment(
    datasets: Sequence[str],
    iterations: int = 10,
    seed: int = 0,
) -> List[ExperimentRecord]:
    """Fig. 6: share of p-, n-, and h-edges in SLUGGER's outputs per dataset."""
    records: List[ExperimentRecord] = []
    for key in datasets:
        graph = load_dataset(key, seed=seed)
        result = Slugger(SluggerConfig(iterations=iterations, seed=seed)).summarize(graph)
        shares = edge_composition(result.summary)
        records.append(ExperimentRecord(
            label=key,
            parameters={"dataset": key},
            values={
                "share_p_edges": shares["p_edges"],
                "share_n_edges": shares["n_edges"],
                "share_h_edges": shares["h_edges"],
                "relative_size": result.relative_size(graph),
            },
        ))
    return records


# ----------------------------------------------------------------------
# Appendix VIII-B: partial decompression latency
# ----------------------------------------------------------------------
def decompression_experiment(
    datasets: Sequence[str],
    iterations: int = 10,
    seed: int = 0,
    queries: int = 200,
) -> List[ExperimentRecord]:
    """Neighbor-query latency on SLUGGER and SWeG summaries (Sect. VIII-B).

    Also reports the correlation between SLUGGER's per-dataset query time
    and the average leaf depth of its hierarchy trees, which the paper
    measures at about 0.82.
    """
    rng = ensure_rng(seed)
    records: List[ExperimentRecord] = []
    depths: List[float] = []
    latencies: List[float] = []
    for key in datasets:
        graph = load_dataset(key, seed=seed)
        slugger_summary = engine.run(
            "slugger", graph, seed=seed, iterations=iterations
        ).summary
        sweg_summary = engine.run("sweg", graph, seed=seed, iterations=iterations).summary
        nodes = graph.nodes()
        sample = [nodes[rng.randrange(len(nodes))] for _ in range(min(queries, len(nodes)))]
        slugger_latency = _mean_query_seconds(slugger_summary, sample)
        sweg_latency = _mean_query_seconds(sweg_summary, sample)
        average_depth = slugger_summary.hierarchy.average_leaf_depth()
        depths.append(average_depth)
        latencies.append(slugger_latency)
        records.append(ExperimentRecord(
            label=key,
            parameters={"dataset": key, "queries": len(sample)},
            values={
                "slugger_microseconds": slugger_latency * 1e6,
                "sweg_microseconds": sweg_latency * 1e6,
                "average_leaf_depth": average_depth,
            },
        ))
    if len(depths) >= 2 and len(set(depths)) > 1 and len(set(latencies)) > 1:
        records.append(ExperimentRecord(
            label="correlation",
            parameters={},
            values={"pearson_depth_vs_latency": pearson_correlation(depths, latencies)},
        ))
    return records


def _mean_query_seconds(summary, nodes) -> float:
    started = time.perf_counter()
    for node in nodes:
        summary.neighbors(node)
    elapsed = time.perf_counter() - started
    return elapsed / max(len(nodes), 1)


# ----------------------------------------------------------------------
# Appendix VIII-C: graph algorithms on summaries
# ----------------------------------------------------------------------
def summary_algorithm_experiment(
    dataset: str = "PR",
    iterations: int = 10,
    seed: int = 0,
    pagerank_iterations: int = 5,
) -> List[ExperimentRecord]:
    """Run BFS, PageRank, Dijkstra, and triangle counting on the raw graph
    and on the SLUGGER summary, reporting runtimes and agreement."""
    graph = load_dataset(dataset, seed=seed)
    summary = Slugger(SluggerConfig(iterations=iterations, seed=seed)).summarize(graph).summary
    source = min(graph.nodes(), key=repr)

    workloads = {
        "bfs": lambda provider: bfs_order(provider, source),
        "pagerank": lambda provider: pagerank(provider, iterations=pagerank_iterations),
        "dijkstra": lambda provider: dijkstra_distances(provider, source),
        "triangles": lambda provider: count_triangles(provider),
    }
    records: List[ExperimentRecord] = []
    for name, workload in workloads.items():
        started = time.perf_counter()
        on_graph = workload(graph)
        graph_seconds = time.perf_counter() - started
        started = time.perf_counter()
        on_summary = workload(summary)
        summary_seconds = time.perf_counter() - started
        records.append(ExperimentRecord(
            label=name,
            parameters={"dataset": dataset, "algorithm": name},
            values={
                "graph_seconds": graph_seconds,
                "summary_seconds": summary_seconds,
                "slowdown": summary_seconds / graph_seconds if graph_seconds > 0 else 0.0,
                "results_agree": float(_results_agree(on_graph, on_summary)),
            },
        ))
    return records


def _results_agree(result_a, result_b) -> bool:
    if isinstance(result_a, dict) and isinstance(result_b, dict):
        if set(result_a) != set(result_b):
            return False
        return all(abs(result_a[key] - result_b[key]) < 1e-9 for key in result_a)
    if isinstance(result_a, list) and isinstance(result_b, list):
        return set(map(repr, result_a)) == set(map(repr, result_b))
    return result_a == result_b


# ----------------------------------------------------------------------
# Theorem 1: expressiveness gap between the two models
# ----------------------------------------------------------------------
def theorem1_experiment(
    sizes: Sequence[int] = (4, 6, 8),
    k: int = 2,
    iterations: int = 10,
    seed: int = 0,
) -> List[ExperimentRecord]:
    """Hierarchical vs flat encoding cost on the Theorem 1 graph family.

    SLUGGER (hierarchical model) is compared against SWeG (flat model) on
    the Fig. 3 construction for growing ``n``; the widening gap is the
    empirical counterpart of Theorem 1.
    """
    records: List[ExperimentRecord] = []
    for n in sizes:
        graph = theorem1_graph(n, k)
        slugger_result = engine.run("slugger", graph, seed=seed, iterations=iterations)
        sweg_result = engine.run("sweg", graph, seed=seed, iterations=iterations)
        records.append(ExperimentRecord(
            label=f"n={n}",
            parameters={"n": n, "k": k},
            values={
                "num_edges": float(graph.num_edges),
                "hierarchical_cost": float(slugger_result.cost()),
                "flat_cost": float(sweg_result.cost()),
                "flat_over_hierarchical": (
                    sweg_result.cost() / slugger_result.cost()
                    if slugger_result.cost() > 0 else 0.0
                ),
            },
        ))
    return records
