"""Plain-text rendering of experiment results.

The benchmark modules print the regenerated tables and figure series with
these helpers so their output can be compared side by side with the
paper's artifacts (and with EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

__all__ = ["format_series", "format_table"]


def format_table(rows: Sequence[Dict[str, Any]], columns: Sequence[str],
                 title: str = "", precision: int = 3) -> str:
    """Render ``rows`` (dictionaries) as a fixed-width text table."""
    if not rows:
        return f"{title}\n(empty)" if title else "(empty)"
    header = [str(column) for column in columns]
    body: List[List[str]] = []
    for row in rows:
        rendered: List[str] = []
        for column in columns:
            value = row.get(column, "")
            if isinstance(value, float):
                rendered.append(f"{value:.{precision}f}")
            else:
                rendered.append(str(value))
        body.append(rendered)
    widths = [
        max(len(header[index]), *(len(row[index]) for row in body))
        for index in range(len(header))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(header[index].ljust(widths[index]) for index in range(len(header))))
    lines.append("  ".join("-" * widths[index] for index in range(len(header))))
    for row in body:
        lines.append("  ".join(row[index].ljust(widths[index]) for index in range(len(header))))
    return "\n".join(lines)


def format_series(xs: Sequence[Any], ys: Sequence[float], x_label: str, y_label: str,
                  title: str = "", precision: int = 3) -> str:
    """Render an (x, y) series — the textual stand-in for a figure's curve."""
    rows = [{x_label: x, y_label: y} for x, y in zip(xs, ys)]
    return format_table(rows, [x_label, y_label], title=title, precision=precision)
