"""Generic experiment-running utilities: repetition, timing, parameter sweeps."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from repro.utils.stats import mean, stdev

__all__ = [
    "ExperimentRecord",
    "run_jobs",
    "run_repeated",
    "sweep",
    "timed",
]


@dataclass
class ExperimentRecord:
    """One measured data point: a label, parameters, and measured values."""

    label: str
    parameters: Dict[str, Any] = field(default_factory=dict)
    values: Dict[str, float] = field(default_factory=dict)

    def as_row(self) -> Dict[str, Any]:
        """Flatten the record into a single dictionary (for table rendering)."""
        row: Dict[str, Any] = {"label": self.label}
        row.update(self.parameters)
        row.update(self.values)
        return row


def run_repeated(
    function: Callable[[int], Dict[str, float]],
    repetitions: int = 3,
    base_seed: int = 0,
) -> Dict[str, float]:
    """Run ``function(seed)`` several times and aggregate means and deviations.

    The paper reports means over five runs with standard deviations; the
    harness makes the repetition count explicit so quick runs and full
    reproductions use the same code.

    Aggregation runs over the *union* of the samples' metric keys (in
    first-seen order), so a metric that only appears in some repetitions
    — e.g. a counter a seed never triggers — is still reported instead of
    being silently dropped.  Such partial metrics are surfaced explicitly
    via a ``<key>_missing`` entry counting the repetitions that did not
    report them; their mean/std are computed over the reporting samples.
    """
    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")
    samples: List[Dict[str, float]] = [
        function(base_seed + repetition) for repetition in range(repetitions)
    ]
    key_order: Dict[str, None] = {}
    for sample in samples:
        for key in sample:
            key_order.setdefault(key, None)
    aggregated: Dict[str, float] = {}
    for key in key_order:
        values = [sample[key] for sample in samples if key in sample]
        aggregated[key] = mean(values)
        aggregated[f"{key}_std"] = stdev(values)
        missing = repetitions - len(values)
        if missing:
            aggregated[f"{key}_missing"] = float(missing)
    aggregated["repetitions"] = float(repetitions)
    return aggregated


def sweep(
    function: Callable[..., Dict[str, float]],
    parameter: str,
    values: Sequence[Any],
    **fixed: Any,
) -> List[ExperimentRecord]:
    """Evaluate ``function`` for every value of one swept parameter."""
    records: List[ExperimentRecord] = []
    for value in values:
        arguments = dict(fixed)
        arguments[parameter] = value
        measured = function(**arguments)
        records.append(
            ExperimentRecord(
                label=f"{parameter}={value}",
                parameters={parameter: value, **fixed},
                values=measured,
            )
        )
    return records


def timed(function: Callable[[], Any]) -> Dict[str, float]:
    """Run ``function`` once and return its wall-clock time in seconds."""
    started = time.perf_counter()
    function()
    return {"seconds": time.perf_counter() - started}


def run_jobs(
    service, requests: Sequence[Any], timeout: Optional[float] = None
) -> List[Any]:
    """Submit ``requests`` to a summary service and gather their results.

    The batch counterpart of calling ``engine.run`` in a loop: all
    requests are enqueued up front (FIFO), execute with the service's
    configured concurrency and warm state, and the results come back in
    submission order.  ``service`` is duck-typed (``batch`` returning
    job handles with ``result``), so experiment code does not import the
    service layer directly.

    ``timeout`` bounds the *whole batch*: the deadline is shared, so a
    50-request batch with ``timeout=60`` raises :class:`TimeoutError`
    60 seconds in, not after 50 per-job minutes.

    Determinism: result ``i`` is bit-identical to running request ``i``
    by itself — ordering and concurrency only change wall time.
    """
    jobs = service.batch(list(requests))
    deadline = None if timeout is None else time.perf_counter() + timeout
    results = []
    for job in jobs:
        remaining = (
            None if deadline is None else max(0.0, deadline - time.perf_counter())
        )
        results.append(job.result(remaining))
    return results
