"""Experiments behind the paper's tables (Table III, IV, V)."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.metrics import compression_report
from repro.core import Slugger, SluggerConfig
from repro.core.pruning import (
    prune_edgeless_supernodes,
    prune_single_edge_roots,
    reencode_root_pairs_flat,
)
from repro.experiments.runner import ExperimentRecord
from repro.graphs.datasets import load_dataset

__all__ = ["height_sweep", "iteration_sweep", "pruning_ablation"]


# ----------------------------------------------------------------------
# Table III: effect of the iteration number T
# ----------------------------------------------------------------------
def iteration_sweep(
    datasets: Sequence[str],
    iteration_values: Sequence[int] = (1, 5, 10, 20),
    seed: int = 0,
) -> List[ExperimentRecord]:
    """Table III: relative size of SLUGGER's output as T grows."""
    records: List[ExperimentRecord] = []
    for key in datasets:
        graph = load_dataset(key, seed=seed)
        for iterations in iteration_values:
            config = SluggerConfig(iterations=iterations, seed=seed)
            result = Slugger(config).summarize(graph)
            records.append(ExperimentRecord(
                label=f"{key}/T={iterations}",
                parameters={"dataset": key, "iterations": iterations},
                values={
                    "relative_size": result.relative_size(graph),
                    "runtime_seconds": result.runtime_seconds,
                },
            ))
    return records


# ----------------------------------------------------------------------
# Table IV: effect of each pruning substep
# ----------------------------------------------------------------------
def pruning_ablation(
    datasets: Sequence[str],
    iterations: int = 10,
    seed: int = 0,
) -> List[ExperimentRecord]:
    """Table IV: output size, max tree height, and average leaf depth after
    pruning stage 0 (no pruning), 1, 2, and 3.

    The merge phase runs once per dataset; the pruning substeps are then
    applied cumulatively to copies of the un-pruned summary so the stages
    are directly comparable, exactly as in the paper's table.
    """
    records: List[ExperimentRecord] = []
    for key in datasets:
        graph = load_dataset(key, seed=seed)
        config = SluggerConfig(iterations=iterations, seed=seed, prune=False)
        unpruned = Slugger(config).summarize(graph).summary

        staged = unpruned.copy()
        stages: Dict[int, Dict[str, float]] = {0: compression_report(staged, graph)}
        prune_edgeless_supernodes(staged)
        stages[1] = compression_report(staged, graph)
        prune_single_edge_roots(staged)
        stages[2] = compression_report(staged, graph)
        reencode_root_pairs_flat(graph, staged)
        # Substep 3 can expose new edgeless supernodes; clean them up the
        # same way the packaged pruning loop does.
        prune_edgeless_supernodes(staged)
        stages[3] = compression_report(staged, graph)

        for stage, report in stages.items():
            records.append(ExperimentRecord(
                label=f"{key}/stage={stage}",
                parameters={"dataset": key, "stage": stage},
                values={
                    "relative_size": report["relative_size"],
                    "max_height": report["max_height"],
                    "average_leaf_depth": report["average_leaf_depth"],
                },
            ))
    return records


# ----------------------------------------------------------------------
# Table V: effect of the height bound H_b
# ----------------------------------------------------------------------
def height_sweep(
    datasets: Sequence[str],
    bounds: Sequence[Optional[int]] = (2, 5, 7, 10, None),
    iterations: int = 10,
    seed: int = 0,
) -> List[ExperimentRecord]:
    """Table V: average leaf depth and relative size under a height bound H_b.

    ``None`` stands for the unbounded original algorithm (the ∞ column).
    """
    records: List[ExperimentRecord] = []
    for key in datasets:
        graph = load_dataset(key, seed=seed)
        for bound in bounds:
            config = SluggerConfig(iterations=iterations, seed=seed, height_bound=bound)
            result = Slugger(config).summarize(graph)
            report = compression_report(result.summary, graph)
            records.append(ExperimentRecord(
                label=f"{key}/Hb={'inf' if bound is None else bound}",
                parameters={"dataset": key, "height_bound": bound},
                values={
                    "relative_size": report["relative_size"],
                    "average_leaf_depth": report["average_leaf_depth"],
                    "max_height": report["max_height"],
                },
            ))
    return records
