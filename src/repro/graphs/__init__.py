"""Graph substrate: data structure, I/O, generators, datasets, sampling."""

from repro.graphs.graph import Graph
from repro.graphs.index import NodeIndex
from repro.graphs.dense import CSRAdjacency, DenseAdjacency, LazyDenseAdjacency
from repro.graphs.view import CSRGraphView
from repro.graphs.io import read_edge_list, write_edge_list
from repro.graphs.generators import (
    barabasi_albert_graph,
    caveman_graph,
    complete_bipartite_graph,
    complete_graph,
    copying_model_graph,
    cycle_graph,
    erdos_renyi_graph,
    grid_graph,
    kronecker_like_graph,
    nested_partition_graph,
    path_graph,
    star_graph,
    theorem1_graph,
)
from repro.graphs.random_models import (
    configuration_model_graph,
    hierarchical_random_graph,
    rmat_graph,
    watts_strogatz_graph,
)
from repro.graphs.datasets import DATASETS, DatasetSpec, available_datasets, load_dataset
from repro.graphs.sampling import induced_subgraph, sample_nodes, scalability_series
from repro.graphs.properties import (
    connected_components,
    degree_histogram,
    global_clustering_coefficient,
    graph_density,
)

__all__ = [
    "Graph",
    "NodeIndex",
    "DenseAdjacency",
    "LazyDenseAdjacency",
    "CSRAdjacency",
    "CSRGraphView",
    "read_edge_list",
    "write_edge_list",
    "barabasi_albert_graph",
    "caveman_graph",
    "complete_bipartite_graph",
    "complete_graph",
    "copying_model_graph",
    "cycle_graph",
    "erdos_renyi_graph",
    "grid_graph",
    "kronecker_like_graph",
    "nested_partition_graph",
    "path_graph",
    "star_graph",
    "theorem1_graph",
    "rmat_graph",
    "watts_strogatz_graph",
    "configuration_model_graph",
    "hierarchical_random_graph",
    "DATASETS",
    "DatasetSpec",
    "available_datasets",
    "load_dataset",
    "induced_subgraph",
    "sample_nodes",
    "scalability_series",
    "connected_components",
    "degree_histogram",
    "global_clustering_coefficient",
    "graph_density",
]
