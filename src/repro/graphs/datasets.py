"""Synthetic analogues of the 16 real-world datasets of Table II.

The paper evaluates on real graphs (Caida … UK-05) that cannot be
downloaded in this offline environment and whose largest members
(hundreds of millions of edges) are out of reach for pure Python.  The
registry below substitutes each dataset with a synthetic analogue whose
*shape* matches the domain the paper groups it under:

* Internet / e-mail / social graphs → preferential attachment plus a
  nested planted-partition community overlay (degree skew + communities).
* Collaboration and co-purchase graphs → relaxed caveman / nested
  partitions (many small dense groups).
* Hyperlink (web) graphs → copying model (near-duplicate neighborhoods),
  which is why web graphs are the most compressible in the paper.
* Protein interaction (PR) → dense nested partition; the paper's PR
  dataset is its most compressible non-web graph and is the headline of
  Fig. 1(a).

The absolute sizes are scaled down by 2–4 orders of magnitude so that the
whole 16-dataset × 5-method comparison runs in minutes; the *relative*
behaviour (which methods win, how ratios move across domains) is what the
benchmarks reproduce.  Datasets marked ``large=True`` mirror the
asterisked datasets of Fig. 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.exceptions import DatasetError
from repro.graphs import generators
from repro.graphs.graph import Graph
from repro.utils.rng import ensure_rng

__all__ = [
    "DatasetSpec",
    "available_datasets",
    "dataset_table",
    "load_dataset",
]


@dataclass(frozen=True)
class DatasetSpec:
    """Description of one synthetic dataset analogue.

    Attributes
    ----------
    key:
        Two-letter code used in the paper's tables (e.g. ``"PR"``).
    name:
        Human-readable name of the real dataset being mirrored.
    domain:
        Domain label from Table II (Internet, Social, Hyperlinks, ...).
    builder:
        Zero-argument-plus-seed callable returning the graph.
    large:
        Whether the paper marks the dataset as a large one (asterisked).
    paper_nodes / paper_edges:
        The size of the *real* dataset, kept for documentation and for
        the EXPERIMENTS.md paper-vs-measured tables.
    """

    key: str
    name: str
    domain: str
    builder: Callable[[int], Graph] = field(repr=False)
    large: bool = False
    paper_nodes: int = 0
    paper_edges: int = 0

    def build(self, seed: int = 0) -> Graph:
        """Generate the analogue graph deterministically from ``seed``."""
        return self.builder(seed)


def _social_analogue(num_nodes: int, attach: int, communities: Tuple[int, ...],
                     probabilities: Tuple[float, ...]) -> Callable[[int], Graph]:
    """Social-network analogue: BA skeleton merged with nested communities."""

    def build(seed: int) -> Graph:
        rng = ensure_rng(seed)
        skeleton = generators.barabasi_albert_graph(num_nodes, attach, seed=rng.randrange(2**31))
        overlay = generators.nested_partition_graph(communities, probabilities,
                                                    seed=rng.randrange(2**31))
        graph = skeleton.copy()
        offset_nodes = min(num_nodes, overlay.num_nodes)
        for u, v in overlay.edges():
            if u < offset_nodes and v < offset_nodes:
                graph.add_edge(u, v)
        return graph

    return build


def _web_analogue(num_nodes: int, out_degree: int, copy_probability: float) -> Callable[[int], Graph]:
    """Hyperlink-network analogue built with the copying model."""

    def build(seed: int) -> Graph:
        return generators.copying_model_graph(num_nodes, out_degree, copy_probability, seed=seed)

    return build


def _community_analogue(communities: Tuple[int, ...],
                        probabilities: Tuple[float, ...]) -> Callable[[int], Graph]:
    """Collaboration / co-purchase analogue: pure nested planted partition."""

    def build(seed: int) -> Graph:
        return generators.nested_partition_graph(communities, probabilities, seed=seed)

    return build


def _caveman_analogue(num_cliques: int, clique_size: int, rewire: float) -> Callable[[int], Graph]:
    """Clustered analogue with explicit near-cliques."""

    def build(seed: int) -> Graph:
        return generators.caveman_graph(num_cliques, clique_size, rewire, seed=seed)

    return build


DATASETS: Dict[str, DatasetSpec] = {}


def _register(spec: DatasetSpec) -> None:
    if spec.key in DATASETS:
        raise DatasetError(f"duplicate dataset key {spec.key!r}")
    DATASETS[spec.key] = spec


# The ordering follows Table II (small to large).
_register(DatasetSpec(
    key="CA", name="Caida", domain="Internet",
    builder=_social_analogue(400, 2, (5, 8, 5), (0.001, 0.02, 0.3)),
    paper_nodes=26_475, paper_edges=53_381))
_register(DatasetSpec(
    key="FA", name="Ego-Facebook", domain="Social",
    builder=_social_analogue(350, 4, (4, 8, 10), (0.002, 0.05, 0.55)),
    paper_nodes=4_039, paper_edges=88_234))
_register(DatasetSpec(
    key="PR", name="Protein", domain="Protein Interaction",
    builder=_community_analogue((4, 6, 16), (0.004, 0.12, 0.75)),
    paper_nodes=6_229, paper_edges=146_160))
_register(DatasetSpec(
    key="EM", name="Email-Enron", domain="Email",
    builder=_social_analogue(500, 3, (6, 8, 8), (0.001, 0.03, 0.35)),
    paper_nodes=36_692, paper_edges=183_831))
_register(DatasetSpec(
    key="DB", name="DBLP", domain="Collaboration",
    builder=_caveman_analogue(80, 8, 0.08),
    paper_nodes=317_080, paper_edges=1_049_866))
_register(DatasetSpec(
    key="AM", name="Amazon0601", domain="Co-purchase",
    builder=_community_analogue((8, 10, 8), (0.0008, 0.03, 0.45)),
    paper_nodes=403_394, paper_edges=2_443_408))
_register(DatasetSpec(
    key="CN", name="CNR-2000", domain="Hyperlinks",
    builder=_web_analogue(900, 10, 0.85),
    paper_nodes=325_557, paper_edges=2_738_969))
_register(DatasetSpec(
    key="YO", name="Youtube", domain="Social",
    builder=_social_analogue(800, 2, (8, 10, 8), (0.0004, 0.01, 0.2)),
    paper_nodes=1_134_890, paper_edges=2_987_624))
_register(DatasetSpec(
    key="SK", name="Skitter", domain="Internet",
    builder=_social_analogue(900, 4, (6, 10, 12), (0.0006, 0.02, 0.3)),
    paper_nodes=1_696_415, paper_edges=11_095_298))
_register(DatasetSpec(
    key="EU", name="EU-05", domain="Hyperlinks",
    builder=_web_analogue(1_200, 12, 0.88), large=False,
    paper_nodes=862_664, paper_edges=16_138_468))
_register(DatasetSpec(
    key="ES", name="Eswiki-13", domain="Social",
    builder=_social_analogue(1_000, 5, (8, 10, 12), (0.0008, 0.02, 0.35)),
    paper_nodes=970_327, paper_edges=21_184_931))
_register(DatasetSpec(
    key="LJ", name="LiveJournal", domain="Social",
    builder=_social_analogue(1_200, 4, (8, 12, 12), (0.0005, 0.015, 0.3)),
    paper_nodes=3_997_962, paper_edges=34_681_189))
_register(DatasetSpec(
    key="HO", name="Hollywood", domain="Collaboration", large=True,
    builder=_caveman_analogue(120, 12, 0.05),
    paper_nodes=1_985_306, paper_edges=114_492_816))
_register(DatasetSpec(
    key="IC", name="IC-04", domain="Hyperlinks", large=True,
    builder=_web_analogue(1_600, 14, 0.9),
    paper_nodes=7_414_758, paper_edges=150_984_819))
_register(DatasetSpec(
    key="U2", name="UK-02", domain="Hyperlinks", large=True,
    builder=_web_analogue(2_000, 14, 0.88),
    paper_nodes=18_483_186, paper_edges=261_787_258))
_register(DatasetSpec(
    key="U5", name="UK-05", domain="Hyperlinks", large=True,
    builder=_web_analogue(2_400, 16, 0.9),
    paper_nodes=39_454_463, paper_edges=783_027_125))


def available_datasets(*, include_large: bool = True) -> List[str]:
    """Keys of all registered dataset analogues, in Table II order."""
    return [key for key, spec in DATASETS.items() if include_large or not spec.large]


def load_dataset(key: str, seed: int = 0) -> Graph:
    """Generate the synthetic analogue registered under ``key``.

    Raises
    ------
    DatasetError
        If ``key`` is not a registered dataset code.
    """
    spec = DATASETS.get(key.upper())
    if spec is None:
        raise DatasetError(
            f"unknown dataset {key!r}; available: {', '.join(sorted(DATASETS))}"
        )
    return spec.build(seed)


def dataset_table(seed: int = 0, keys: Optional[List[str]] = None) -> List[Dict[str, object]]:
    """Rows describing each analogue (key, domain, measured |V| and |E|).

    Used by the documentation example and the dataset CLI subcommand; the
    sizes of the analogues are measured rather than hard-coded so the
    table always reflects what the generators actually produce.
    """
    rows: List[Dict[str, object]] = []
    for key in keys or available_datasets():
        spec = DATASETS[key]
        graph = spec.build(seed)
        rows.append({
            "key": key,
            "name": spec.name,
            "domain": spec.domain,
            "large": spec.large,
            "paper_nodes": spec.paper_nodes,
            "paper_edges": spec.paper_edges,
            "analogue_nodes": graph.num_nodes,
            "analogue_edges": graph.num_edges,
        })
    return rows
