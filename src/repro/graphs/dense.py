"""Dense integer-id adjacency: the array-backed substrate of the hot paths.

:class:`DenseAdjacency` mirrors a :class:`~repro.graphs.graph.Graph` on
the contiguous id space of a :class:`~repro.graphs.index.NodeIndex`:
neighbor sets become a ``list`` of ``set[int]`` (list indexing instead
of label hashing per access) and degrees live in a preallocated
``array('q')``.  It is the mutable working representation every
summarizer now computes on; labels only appear at the boundary.

:class:`CSRAdjacency` is the frozen, read-only view for phases that only
read the graph (shingle sweeps, orderings, analytics): neighbor lists
are packed into two flat integer arrays (``indptr``/``indices``, the
standard compressed-sparse-row layout used by WebGraph-style systems),
which cuts the per-neighbor memory from a hash-set slot (~32+ bytes) to
one machine integer and makes whole-graph sweeps cache-friendly.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from sys import getsizeof
from typing import Iterable, Iterator, List, Optional, Set, Tuple

from repro.exceptions import InvalidGraphError
from repro.graphs.index import Label, NodeIndex

__all__ = [
    "CSRAdjacency",
    "DenseAdjacency",
    "LazyDenseAdjacency",
    "graph_adjacency_bytes",
]


class DenseAdjacency:
    """Mutable set-based adjacency over contiguous integer node ids.

    Examples
    --------
    >>> dense = DenseAdjacency(NodeIndex(["a", "b", "c"]))
    >>> dense.add_edge(0, 1)
    True
    >>> sorted(dense.neighbors[0])
    [1]
    >>> dense.degrees[1]
    1
    """

    __slots__ = ("index", "neighbors", "degrees", "num_edges")

    def __init__(self, index: Optional[NodeIndex] = None) -> None:
        self.index = index if index is not None else NodeIndex()
        size = len(self.index)
        self.neighbors: List[Set[int]] = [set() for _ in range(size)]
        # Preallocated degree array, maintained on every edge mutation so
        # degree reads never touch the neighbor sets.
        self.degrees = array("q", bytes(8 * size))
        self.num_edges = 0

    @classmethod
    def from_graph(cls, graph) -> "DenseAdjacency":
        """Mirror ``graph`` onto dense ids (assigned in node-insertion order)."""
        index = NodeIndex.from_graph(graph)
        dense = cls(index)
        ids = index.ids()
        neighbors = dense.neighbors
        degrees = dense.degrees
        # Graphs whose labels already are the ints 0..n-1 (every
        # generator and dataset analogue) need no per-neighbor
        # translation — the sets are copied as-is.  The type check
        # matters: 0.0 == 0 but a float label must still be translated,
        # or list-indexed consumers would be handed floats.
        identity = all(
            type(label) is int and label == node_id
            for node_id, label in enumerate(index.labels())
        )
        for label, nbrs in graph.adjacency().items():
            u = ids[label]
            mapped = set(nbrs) if identity else {ids[other] for other in nbrs}
            neighbors[u] = mapped
            degrees[u] = len(mapped)
        dense.num_edges = graph.num_edges
        return dense

    @classmethod
    def from_csr(cls, csr) -> "DenseAdjacency":
        """Thaw a frozen CSR view back into a mutable dense adjacency.

        ``csr`` is any CSR-like object (``index`` / ``indptr`` /
        ``indices`` / ``num_nodes`` / ``num_edges``) — the in-memory
        :class:`CSRAdjacency` or a storage-layer mapped view.  The result
        is content-identical to :meth:`from_graph` on the equivalent
        graph: same ids (the CSR inherited the index order), same
        neighbor sets, same degrees.
        """
        dense = cls(csr.index)
        if dense.num_nodes != csr.num_nodes:
            raise InvalidGraphError(
                f"CSR index holds {dense.num_nodes} labels for {csr.num_nodes} nodes"
            )
        indptr, indices = csr.indptr, csr.indices
        neighbors = dense.neighbors
        degrees = dense.degrees
        for u in range(csr.num_nodes):
            lo, hi = indptr[u], indptr[u + 1]
            run = indices[lo:hi]
            neighbors[u] = set(run)
            degrees[u] = hi - lo
        dense.num_edges = csr.num_edges
        return dense

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes (ids ``0..num_nodes-1``)."""
        return len(self.neighbors)

    def add_node(self, label: Label) -> int:
        """Intern ``label`` and make room for its adjacency; returns the id."""
        node_id = self.index.intern(label)
        while node_id >= len(self.neighbors):
            self.neighbors.append(set())
            self.degrees.append(0)
        return node_id

    def add_edge(self, u: int, v: int) -> bool:
        """Add the undirected edge ``(u, v)`` by id; returns whether it was new."""
        if u == v:
            raise InvalidGraphError(f"self-loops are not allowed (id {u})")
        nbrs_u = self.neighbors[u]
        if v in nbrs_u:
            return False
        nbrs_u.add(v)
        self.neighbors[v].add(u)
        self.degrees[u] += 1
        self.degrees[v] += 1
        self.num_edges += 1
        return True

    def remove_edge(self, u: int, v: int) -> bool:
        """Remove the undirected edge ``(u, v)`` by id if present."""
        nbrs_u = self.neighbors[u]
        if v not in nbrs_u:
            return False
        nbrs_u.discard(v)
        self.neighbors[v].discard(u)
        self.degrees[u] -= 1
        self.degrees[v] -= 1
        self.num_edges -= 1
        return True

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``(u, v)`` is present."""
        return v in self.neighbors[u]

    def degree(self, u: int) -> int:
        """Degree of id ``u`` (array read; no set involved)."""
        return self.degrees[u]

    def edge_ids(self) -> Iterator[Tuple[int, int]]:
        """Iterate every edge once as an ``(u, v)`` id pair with ``u < v``."""
        for u, nbrs in enumerate(self.neighbors):
            for v in nbrs:
                if u < v:
                    yield (u, v)

    def approx_bytes(self) -> int:
        """Approximate heap footprint of the adjacency structure itself."""
        total = getsizeof(self.neighbors) + getsizeof(self.degrees)
        for nbrs in self.neighbors:
            total += getsizeof(nbrs)
        return total

    # ------------------------------------------------------------------
    # Conversion
    # ------------------------------------------------------------------
    def freeze(self) -> "CSRAdjacency":
        """A compact read-only CSR snapshot of the current adjacency."""
        return CSRAdjacency(self)

    def to_graph(self):
        """Materialize the adjacency back into a label-keyed ``Graph``."""
        from repro.graphs.graph import Graph

        labels = self.index.labels()
        graph = Graph(nodes=labels)
        for u, v in self.edge_ids():
            graph.add_edge(labels[u], labels[v])
        return graph

    def __repr__(self) -> str:
        return f"DenseAdjacency(num_nodes={self.num_nodes}, num_edges={self.num_edges})"


class _LazyNeighborSets:
    """Per-node neighbor sets thawed from a CSR run on first access.

    Supports exactly the sequence operations :class:`DenseAdjacency`
    performs on its ``neighbors`` list (index, iterate, ``len``,
    ``append``), so a :class:`LazyDenseAdjacency` can reuse the dense
    mutators unchanged.  Each materialized set is built as
    ``set(csr.neighbors_of(u))`` — the identical construction
    :meth:`DenseAdjacency.from_csr` performs eagerly — so reads observe
    the same contents whether the thaw happened up front or on demand.
    """

    __slots__ = ("_csr", "_sets", "materialized")

    def __init__(self, csr, size: int) -> None:
        self._csr = csr
        self._sets: List[Optional[Set[int]]] = [None] * size
        #: Number of per-node sets thawed so far (benchmark observable).
        self.materialized = 0

    def __len__(self) -> int:
        return len(self._sets)

    def __getitem__(self, u: int) -> Set[int]:
        made = self._sets[u]
        if made is None:
            made = set(self._csr.neighbors_of(u))
            self._sets[u] = made
            self.materialized += 1
        return made

    def __iter__(self) -> Iterator[Set[int]]:
        for u in range(len(self._sets)):
            yield self[u]

    def append(self, value: Set[int]) -> None:
        """Grow by one node (``add_node`` support); counts as materialized."""
        self._sets.append(value)
        self.materialized += 1

    def peek(self, u: int) -> Optional[Set[int]]:
        """The set for ``u`` if already thawed, else ``None`` (no thaw)."""
        return self._sets[u]

    def approx_bytes(self) -> int:
        """Footprint of the slot list plus every thawed set."""
        total = getsizeof(self._sets)
        for made in self._sets:
            if made is not None:
                total += getsizeof(made)
        return total


class LazyDenseAdjacency(DenseAdjacency):
    """Thaw-on-demand dense adjacency over a frozen CSR view.

    A drop-in :class:`DenseAdjacency` whose per-node neighbor sets are
    materialized lazily from a backing CSR (an in-memory
    :class:`CSRAdjacency` or a storage-layer
    :class:`~repro.storage.mapped.MappedCSR`) on first read or write —
    copy-on-first-use per node instead of the eager O(m)
    :meth:`DenseAdjacency.from_csr` thaw.  Read-dominated consumers that
    only touch a fraction of the neighborhoods (pruning scans, panel
    statistics, analytics over mmap-loaded graphs) never pay for the
    rest; edge iteration and membership tests stream straight off the
    CSR until a node is thawed.

    Contents are identical to the eager thaw at every observation point,
    so summarizer runs over a lazy substrate stay bit-identical to
    in-memory runs.  Mutation (``add_edge`` / ``remove_edge``) thaws the
    touched endpoints and marks the view dirty; from then on whole-graph
    iteration merges thawed sets with untouched CSR runs, and
    :meth:`freeze` re-packs instead of returning the stale backing view.

    Examples
    --------
    >>> dense = DenseAdjacency(NodeIndex(range(3)))
    >>> _ = dense.add_edge(0, 1); _ = dense.add_edge(1, 2)
    >>> lazy = LazyDenseAdjacency(dense.freeze())
    >>> lazy.thawed_nodes
    0
    >>> sorted(lazy.neighbors[1])
    [0, 2]
    >>> lazy.thawed_nodes, lazy.num_edges
    (1, 2)
    """

    __slots__ = ("_csr", "_dirty")

    def __init__(self, csr) -> None:
        index = csr.index
        if len(index) != csr.num_nodes:
            raise InvalidGraphError(
                f"CSR index holds {len(index)} labels for {csr.num_nodes} nodes"
            )
        self.index = index
        self.neighbors = _LazyNeighborSets(csr, csr.num_nodes)
        indptr = csr.indptr
        degrees = array("q", bytes(8 * csr.num_nodes))
        for u in range(csr.num_nodes):
            degrees[u] = indptr[u + 1] - indptr[u]
        self.degrees = degrees
        self.num_edges = csr.num_edges
        self._csr = csr
        self._dirty = False

    @property
    def csr(self):
        """The backing frozen view the overlay thaws from."""
        return self._csr

    @property
    def dirty(self) -> bool:
        """Whether any edge mutation diverged the overlay from the CSR."""
        return self._dirty

    @property
    def thawed_nodes(self) -> int:
        """Number of per-node sets materialized so far."""
        return self.neighbors.materialized

    def add_edge(self, u: int, v: int) -> bool:
        """Thaw both endpoints, then add the edge (see base class)."""
        self._dirty = True
        return super().add_edge(u, v)

    def remove_edge(self, u: int, v: int) -> bool:
        """Thaw both endpoints, then remove the edge (see base class)."""
        self._dirty = True
        return super().remove_edge(u, v)

    def has_edge(self, u: int, v: int) -> bool:
        """Membership test without thawing: binary search on cold nodes."""
        made = self.neighbors.peek(u)
        if made is not None:
            return v in made
        # A cold node's run is authoritative even after mutations
        # elsewhere: every mutation thaws both of its endpoints.
        return self._csr.has_edge(u, v)

    def edge_ids(self) -> Iterator[Tuple[int, int]]:
        """Stream edges off the CSR while clean; merge overlays when dirty."""
        if not self._dirty:
            yield from self._csr.edge_ids()
            return
        csr_nodes = self._csr.num_nodes
        for u in range(self.num_nodes):
            made = self.neighbors.peek(u)
            if made is None and u < csr_nodes:
                run: Iterable[int] = self._csr.neighbors_of(u)
            else:
                run = made if made is not None else ()
            for v in run:
                if u < v:
                    yield (u, v)

    def freeze(self) -> "CSRAdjacency":
        """The backing CSR while clean (zero copy); a fresh pack when dirty."""
        if not self._dirty:
            return self._csr
        return CSRAdjacency(self)

    def approx_bytes(self) -> int:
        """Footprint of the overlay only — thawed sets plus the degree array.

        The backing CSR (possibly an mmap whose pages belong to the page
        cache) is deliberately excluded: this reports what the lazy thaw
        actually allocated.
        """
        return getsizeof(self.degrees) + self.neighbors.approx_bytes()

    def __repr__(self) -> str:
        return (
            f"LazyDenseAdjacency(num_nodes={self.num_nodes}, "
            f"num_edges={self.num_edges}, thawed={self.thawed_nodes})"
        )


class CSRAdjacency:
    """Frozen compressed-sparse-row view of a :class:`DenseAdjacency`.

    Neighbor runs are sorted ascending, so membership tests are binary
    searches and gap-based consumers (the compression layer) can read
    monotone runs directly.

    Examples
    --------
    >>> dense = DenseAdjacency(NodeIndex(range(3)))
    >>> _ = dense.add_edge(0, 2); _ = dense.add_edge(0, 1)
    >>> csr = dense.freeze()
    >>> list(csr.neighbors_of(0))
    [1, 2]
    >>> csr.degree(0), csr.has_edge(0, 2), csr.has_edge(1, 2)
    (2, True, False)
    """

    __slots__ = ("index", "indptr", "indices", "num_nodes", "num_edges")

    def __init__(self, dense: DenseAdjacency) -> None:
        self.index = dense.index
        self.num_nodes = dense.num_nodes
        self.num_edges = dense.num_edges
        indptr = array("q", bytes(8 * (self.num_nodes + 1)))
        indices = array("q", bytes(8 * (2 * self.num_edges)))
        position = 0
        for u, nbrs in enumerate(dense.neighbors):
            indptr[u] = position
            for v in sorted(nbrs):
                indices[position] = v
                position += 1
        indptr[self.num_nodes] = position
        self.indptr = indptr
        self.indices = indices

    def degree(self, u: int) -> int:
        """Degree of id ``u``."""
        return self.indptr[u + 1] - self.indptr[u]

    def neighbors_of(self, u: int) -> "array":
        """The sorted neighbor run of ``u`` (a slice of the flat array)."""
        return self.indices[self.indptr[u]:self.indptr[u + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        """Binary-search membership test in ``u``'s sorted neighbor run."""
        lo, hi = self.indptr[u], self.indptr[u + 1]
        position = bisect_left(self.indices, v, lo, hi)
        return position < hi and self.indices[position] == v

    def edge_ids(self) -> Iterator[Tuple[int, int]]:
        """Iterate every edge once as an ``(u, v)`` id pair with ``u < v``."""
        indptr, indices = self.indptr, self.indices
        for u in range(self.num_nodes):
            for position in range(indptr[u], indptr[u + 1]):
                v = indices[position]
                if u < v:
                    yield (u, v)

    def approx_bytes(self) -> int:
        """Approximate heap footprint of the two flat arrays."""
        return getsizeof(self.indptr) + getsizeof(self.indices)

    def __repr__(self) -> str:
        return f"CSRAdjacency(num_nodes={self.num_nodes}, num_edges={self.num_edges})"


def graph_adjacency_bytes(graph) -> int:
    """Approximate heap footprint of a ``Graph``'s dict-of-sets adjacency.

    Used by the substrate benchmark to report the memory side of the
    dense/CSR comparison; node label objects themselves are excluded on
    all sides so the numbers compare structures, not label payloads.
    """
    adjacency = graph.adjacency()
    total = getsizeof(adjacency)
    for nbrs in adjacency.values():
        total += getsizeof(nbrs)
    return total
