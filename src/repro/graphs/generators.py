"""Random and deterministic graph generators.

The reproduction cannot download the 16 real-world graphs of Table II,
so the dataset registry (:mod:`repro.graphs.datasets`) composes the
generators in this module into synthetic analogues.  Graph summarization
compressibility is driven by (a) nested community structure and (b)
degree skew; the generators below cover both, plus the deterministic
families used in the paper's theory section (Fig. 3 / Theorem 1) and the
small structured graphs used throughout the tests.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import InvalidGraphError
from repro.graphs.graph import Graph
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import require_non_negative, require_positive, require_probability

__all__ = [
    "barabasi_albert_graph",
    "caveman_graph",
    "complete_bipartite_graph",
    "complete_graph",
    "copying_model_graph",
    "cycle_graph",
    "degree_sequence_summary",
    "erdos_renyi_graph",
    "grid_graph",
    "kronecker_like_graph",
    "nested_partition_graph",
    "path_graph",
    "planted_clique_graph",
    "star_graph",
    "theorem1_graph",
]


# ----------------------------------------------------------------------
# Deterministic structured graphs
# ----------------------------------------------------------------------
def complete_graph(num_nodes: int) -> Graph:
    """The clique K_n on nodes ``0..n-1``."""
    require_non_negative(num_nodes, "num_nodes")
    graph = Graph(nodes=range(num_nodes))
    for u, v in itertools.combinations(range(num_nodes), 2):
        graph.add_edge(u, v)
    return graph


def complete_bipartite_graph(left: int, right: int) -> Graph:
    """The complete bipartite graph K_{left,right}.

    Left part is ``0..left-1``, right part is ``left..left+right-1``.
    """
    require_non_negative(left, "left")
    require_non_negative(right, "right")
    graph = Graph(nodes=range(left + right))
    for u in range(left):
        for v in range(left, left + right):
            graph.add_edge(u, v)
    return graph


def star_graph(num_leaves: int) -> Graph:
    """A star with center ``0`` and ``num_leaves`` leaves."""
    require_non_negative(num_leaves, "num_leaves")
    graph = Graph(nodes=range(num_leaves + 1))
    for leaf in range(1, num_leaves + 1):
        graph.add_edge(0, leaf)
    return graph


def path_graph(num_nodes: int) -> Graph:
    """A simple path on ``num_nodes`` nodes."""
    require_non_negative(num_nodes, "num_nodes")
    graph = Graph(nodes=range(num_nodes))
    for u in range(num_nodes - 1):
        graph.add_edge(u, u + 1)
    return graph


def cycle_graph(num_nodes: int) -> Graph:
    """A simple cycle on ``num_nodes`` nodes (requires at least 3 nodes)."""
    if num_nodes < 3:
        raise InvalidGraphError("a cycle needs at least 3 nodes")
    graph = path_graph(num_nodes)
    graph.add_edge(num_nodes - 1, 0)
    return graph


def grid_graph(rows: int, cols: int) -> Graph:
    """A rows x cols 2-D grid graph."""
    require_positive(rows, "rows")
    require_positive(cols, "cols")
    graph = Graph(nodes=range(rows * cols))
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            if c + 1 < cols:
                graph.add_edge(node, node + 1)
            if r + 1 < rows:
                graph.add_edge(node, node + cols)
    return graph


def theorem1_graph(n: int, k: int) -> Graph:
    """The deterministic family of Fig. 3 / Theorem 1.

    ``n`` internal groups of ``k`` subnodes each are connected to ``n``
    hub nodes such that hub ``i`` is connected to every subnode *except*
    those in two "excluded" groups.  Under the hierarchical model this
    graph admits an encoding with Θ(n·k) edges, while the flat
    (Navlakha) model needs Ω(n^1.5) edges — the expressiveness gap the
    paper formalizes.  The construction used here follows the spirit of
    the figure: every subnode misses exactly ``2k`` potential neighbors.

    Nodes ``0..n-1`` are the hub (internal) nodes; nodes
    ``n..n + n*k - 1`` are the grouped subnodes, group ``g`` holding
    nodes ``n + g*k .. n + (g+1)*k - 1``.
    """
    require_positive(n, "n")
    require_positive(k, "k")
    graph = Graph(nodes=range(n + n * k))
    for hub in range(n):
        excluded = {hub, (hub + 1) % n}
        for group in range(n):
            if group in excluded:
                continue
            base = n + group * k
            for member in range(base, base + k):
                graph.add_edge(hub, member)
    return graph


# ----------------------------------------------------------------------
# Random graph models
# ----------------------------------------------------------------------
def erdos_renyi_graph(num_nodes: int, edge_probability: float, seed: SeedLike = None) -> Graph:
    """G(n, p) random graph."""
    require_non_negative(num_nodes, "num_nodes")
    require_probability(edge_probability, "edge_probability")
    rng = ensure_rng(seed)
    graph = Graph(nodes=range(num_nodes))
    for u in range(num_nodes):
        for v in range(u + 1, num_nodes):
            if rng.random() < edge_probability:
                graph.add_edge(u, v)
    return graph


def barabasi_albert_graph(num_nodes: int, edges_per_node: int, seed: SeedLike = None) -> Graph:
    """Preferential-attachment graph (Barabási–Albert).

    Produces the heavy-tailed degree distributions typical of the social
    and hyperlink networks in Table II.
    """
    require_positive(num_nodes, "num_nodes")
    require_positive(edges_per_node, "edges_per_node")
    if edges_per_node >= num_nodes:
        raise InvalidGraphError("edges_per_node must be smaller than num_nodes")
    rng = ensure_rng(seed)
    graph = Graph(nodes=range(num_nodes))
    # Start from a small clique so the first attachments have targets.
    targets: List[int] = list(range(edges_per_node))
    for u, v in itertools.combinations(targets, 2):
        graph.add_edge(u, v)
    repeated: List[int] = list(targets) * max(1, edges_per_node - 1)
    for new_node in range(edges_per_node, num_nodes):
        chosen: set = set()
        while len(chosen) < edges_per_node:
            chosen.add(rng.choice(repeated) if repeated else rng.randrange(new_node))
        for target in chosen:
            if target != new_node and graph.add_edge(new_node, target):
                repeated.append(target)
                repeated.append(new_node)
    return graph


def caveman_graph(num_cliques: int, clique_size: int, rewire_probability: float = 0.0,
                  seed: SeedLike = None) -> Graph:
    """A (relaxed) caveman graph: disjoint cliques, optionally rewired.

    Clique structure is the best case for summarization: each clique can
    be represented by one supernode with a self-loop p-edge.
    """
    require_positive(num_cliques, "num_cliques")
    require_positive(clique_size, "clique_size")
    require_probability(rewire_probability, "rewire_probability")
    rng = ensure_rng(seed)
    num_nodes = num_cliques * clique_size
    graph = Graph(nodes=range(num_nodes))
    for clique in range(num_cliques):
        members = range(clique * clique_size, (clique + 1) * clique_size)
        for u, v in itertools.combinations(members, 2):
            graph.add_edge(u, v)
    if rewire_probability > 0 and num_nodes > 1:
        for u, v in list(graph.edges()):
            if rng.random() < rewire_probability:
                new_target = rng.randrange(num_nodes)
                if new_target != u and not graph.has_edge(u, new_target):
                    graph.remove_edge(u, v)
                    graph.add_edge(u, new_target)
    return graph


def nested_partition_graph(
    branching: Sequence[int],
    level_probabilities: Sequence[float],
    seed: SeedLike = None,
) -> Graph:
    """Hierarchically nested planted-partition (nested SBM) graph.

    This is the key workload generator of the reproduction: it produces
    the "groups within groups" connectivity (students of a university →
    department → research lab, Sect. II-A) that the hierarchical model is
    designed to exploit.

    Parameters
    ----------
    branching:
        ``branching[d]`` is the number of children each block at depth
        ``d`` splits into; the last level gives leaf nodes.  For example
        ``(4, 5, 6)`` creates 4 top blocks, each with 5 sub-blocks, each
        with 6 leaf nodes: 120 nodes total.
    level_probabilities:
        ``level_probabilities[d]`` is the edge probability between two
        nodes whose lowest common block is at depth ``d`` (depth 0 = the
        whole graph).  Must have ``len(branching)`` entries, ordered from
        coarsest to finest; realism requires them to increase.
    seed:
        RNG seed.
    """
    if len(branching) != len(level_probabilities):
        raise InvalidGraphError(
            "branching and level_probabilities must have the same length "
            f"(got {len(branching)} and {len(level_probabilities)})"
        )
    if not branching:
        return Graph()
    for factor in branching:
        require_positive(factor, "branching factor")
    for probability in level_probabilities:
        require_probability(probability, "level probability")

    rng = ensure_rng(seed)
    num_nodes = 1
    for factor in branching:
        num_nodes *= factor
    graph = Graph(nodes=range(num_nodes))

    # The block path of a node at depth d is its index divided by the
    # product of deeper branching factors; two nodes' lowest common block
    # depth is the longest shared prefix of their block paths.
    suffix_products = [1] * (len(branching) + 1)
    for depth in range(len(branching) - 1, -1, -1):
        suffix_products[depth] = suffix_products[depth + 1] * branching[depth]

    def common_depth(u: int, v: int) -> int:
        depth = 0
        for level in range(1, len(branching)):
            block_size = suffix_products[level]
            if u // block_size == v // block_size:
                depth = level
            else:
                break
        return depth

    for u in range(num_nodes):
        for v in range(u + 1, num_nodes):
            probability = level_probabilities[common_depth(u, v)]
            if probability > 0 and rng.random() < probability:
                graph.add_edge(u, v)
    return graph


def copying_model_graph(num_nodes: int, out_degree: int, copy_probability: float = 0.7,
                        seed: SeedLike = None) -> Graph:
    """Web-graph style copying model (Kumar et al.).

    Each new node picks a prototype and copies a fraction of its links,
    which creates the many near-duplicate neighborhoods that make web
    graphs (CNR, EU, IC, UK in Table II) highly summarizable.
    """
    require_positive(num_nodes, "num_nodes")
    require_positive(out_degree, "out_degree")
    require_probability(copy_probability, "copy_probability")
    rng = ensure_rng(seed)
    graph = Graph(nodes=range(num_nodes))
    seed_size = min(num_nodes, out_degree + 1)
    for u, v in itertools.combinations(range(seed_size), 2):
        graph.add_edge(u, v)
    for new_node in range(seed_size, num_nodes):
        prototype = rng.randrange(new_node)
        prototype_neighbors = sorted(graph.neighbor_set(prototype))
        # With probability ``copy_probability`` the new page is a template
        # copy: it links to (a prefix of) exactly the pages its prototype
        # links to.  Otherwise it links to random pages.  The resulting
        # abundance of (near-)identical neighborhoods is what makes real
        # web graphs so compressible.
        if prototype_neighbors and rng.random() < copy_probability:
            targets = prototype_neighbors[:out_degree]
            if len(targets) < out_degree:
                targets = targets + [prototype]
        else:
            targets = [rng.randrange(new_node) for _ in range(out_degree)]
        for target in targets:
            if target != new_node:
                graph.add_edge(new_node, target)
    return graph


def kronecker_like_graph(initiator: Optional[Sequence[Sequence[float]]] = None,
                         power: int = 8, seed: SeedLike = None) -> Graph:
    """Stochastic-Kronecker-style graph.

    Kronecker graphs (cited in the paper as evidence of hierarchical
    structure) exhibit self-similar, recursively nested communities.
    The generator samples each potential edge with probability equal to
    the product of initiator entries along the digit decomposition of the
    node pair, which is the standard stochastic Kronecker construction.
    """
    if initiator is None:
        initiator = ((0.9, 0.5), (0.5, 0.2))
    size = len(initiator)
    for row in initiator:
        if len(row) != size:
            raise InvalidGraphError("initiator matrix must be square")
        for value in row:
            require_probability(value, "initiator entry")
    require_positive(power, "power")
    rng = ensure_rng(seed)
    num_nodes = size**power
    graph = Graph(nodes=range(num_nodes))

    def edge_probability(u: int, v: int) -> float:
        probability = 1.0
        uu, vv = u, v
        for _ in range(power):
            probability *= initiator[uu % size][vv % size]
            uu //= size
            vv //= size
        return probability

    # Sampling every pair is quadratic; for the modest sizes used in the
    # reproduction we accept it for exactness of the model.
    for u in range(num_nodes):
        for v in range(u + 1, num_nodes):
            if rng.random() < edge_probability(u, v):
                graph.add_edge(u, v)
    return graph


def planted_clique_graph(num_nodes: int, clique_size: int, background_probability: float,
                         seed: SeedLike = None) -> Graph:
    """An Erdős–Rényi background with one planted clique on nodes ``0..clique_size-1``."""
    require_positive(num_nodes, "num_nodes")
    require_non_negative(clique_size, "clique_size")
    require_probability(background_probability, "background_probability")
    if clique_size > num_nodes:
        raise InvalidGraphError("clique_size cannot exceed num_nodes")
    graph = erdos_renyi_graph(num_nodes, background_probability, seed=seed)
    for u, v in itertools.combinations(range(clique_size), 2):
        graph.add_edge(u, v)
    return graph


def degree_sequence_summary(graph: Graph) -> Dict[str, float]:
    """Convenience stats (min/mean/max degree) used by dataset docs and tests."""
    degrees = [graph.degree(node) for node in graph.nodes()]
    if not degrees:
        return {"min": 0.0, "mean": 0.0, "max": 0.0}
    return {
        "min": float(min(degrees)),
        "mean": sum(degrees) / len(degrees),
        "max": float(max(degrees)),
    }
