"""Simple undirected graph structure used across the library.

The paper (Sect. II) works with simple undirected graphs without
self-loops; directions, duplicate edges, and self-loops are removed from
its datasets.  :class:`Graph` enforces exactly that contract: nodes are
arbitrary hashable identifiers (integers in practice), edges are
unordered pairs of distinct nodes, and adjacency is stored as
per-node sets for O(1) membership tests, which the summarizers rely on
heavily.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, List, Set, Tuple

from repro.exceptions import InvalidGraphError

__all__ = ["Edge", "Graph", "Node", "canonical_edge"]

Node = Hashable
Edge = Tuple[Node, Node]


def canonical_edge(u: Node, v: Node) -> Edge:
    """Return the canonical (sorted) form of the undirected edge ``(u, v)``.

    Canonicalization lets edge sets and dictionaries treat ``(u, v)`` and
    ``(v, u)`` as the same key.  Nodes of mixed non-comparable types fall
    back to ordering by ``repr``.
    """
    try:
        return (u, v) if u <= v else (v, u)  # type: ignore[operator]
    except TypeError:
        return (u, v) if repr(u) <= repr(v) else (v, u)


class Graph:
    """A simple undirected graph with set-based adjacency.

    Parameters
    ----------
    edges:
        Optional iterable of ``(u, v)`` pairs.  Duplicate edges are
        collapsed; self-loops raise :class:`InvalidGraphError`.
    nodes:
        Optional iterable of nodes to add even if isolated.

    Examples
    --------
    >>> g = Graph(edges=[(0, 1), (1, 2)])
    >>> g.num_nodes, g.num_edges
    (3, 2)
    >>> sorted(g.neighbors(1))
    [0, 2]
    """

    def __init__(
        self,
        edges: Iterable[Edge] = (),
        nodes: Iterable[Node] = (),
    ) -> None:
        self._adjacency: Dict[Node, Set[Node]] = {}
        self._num_edges = 0
        self._mutations = 0
        for node in nodes:
            self.add_node(node)
        for u, v in edges:
            self.add_edge(u, v)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> None:
        """Add ``node`` (a no-op if it already exists)."""
        if node not in self._adjacency:
            self._adjacency[node] = set()
            self._mutations += 1

    def add_edge(self, u: Node, v: Node) -> bool:
        """Add the undirected edge ``(u, v)``.

        Returns ``True`` if the edge was new, ``False`` if it already
        existed.  Self-loops are rejected because the model of Sect. II
        assumes simple graphs.
        """
        if u == v:
            raise InvalidGraphError(f"self-loops are not allowed (node {u!r})")
        self.add_node(u)
        self.add_node(v)
        if v in self._adjacency[u]:
            return False
        self._adjacency[u].add(v)
        self._adjacency[v].add(u)
        self._num_edges += 1
        self._mutations += 1
        return True

    def remove_edge(self, u: Node, v: Node) -> bool:
        """Remove the undirected edge ``(u, v)`` if present; return whether it was."""
        if u in self._adjacency and v in self._adjacency[u]:
            self._adjacency[u].discard(v)
            self._adjacency[v].discard(u)
            self._num_edges -= 1
            self._mutations += 1
            return True
        return False

    def remove_node(self, node: Node) -> None:
        """Remove ``node`` and all incident edges."""
        if node not in self._adjacency:
            return
        for neighbor in list(self._adjacency[node]):
            self.remove_edge(node, neighbor)
        del self._adjacency[node]
        self._mutations += 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes |V|."""
        return len(self._adjacency)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges |E|."""
        return self._num_edges

    @property
    def mutation_count(self) -> int:
        """Monotonic counter of structural mutations.

        Bumped by every node/edge addition or removal that changed the
        graph, including sequences that preserve node and edge counts —
        the signal cached-substrate consumers (the serving layer's graph
        store) use to detect that a derived view went stale.
        """
        return self._mutations

    def has_node(self, node: Node) -> bool:
        """Whether ``node`` is in the graph."""
        return node in self._adjacency

    def has_edge(self, u: Node, v: Node) -> bool:
        """Whether the undirected edge ``(u, v)`` is in the graph."""
        return u in self._adjacency and v in self._adjacency[u]

    def neighbors(self, node: Node) -> FrozenSet[Node]:
        """The neighbor set of ``node`` (raises ``KeyError`` if absent)."""
        if node not in self._adjacency:
            # repro-lint: disable=raise-taxonomy (documented mapping-style lookup contract)
            raise KeyError(f"node {node!r} is not in the graph")
        return frozenset(self._adjacency[node])

    def neighbor_set(self, node: Node) -> Set[Node]:
        """Internal adjacency set of ``node`` (not copied; do not mutate)."""
        return self._adjacency[node]

    def adjacency(self) -> Dict[Node, Set[Node]]:
        """The internal node → neighbor-set mapping (not copied; do not mutate).

        Hot paths iterate this directly to avoid a method call per node.
        """
        return self._adjacency

    def degree(self, node: Node) -> int:
        """Degree of ``node``."""
        if node not in self._adjacency:
            # repro-lint: disable=raise-taxonomy (documented mapping-style lookup contract)
            raise KeyError(f"node {node!r} is not in the graph")
        return len(self._adjacency[node])

    def nodes(self) -> List[Node]:
        """A list of all nodes."""
        return list(self._adjacency)

    def edges(self) -> Iterator[Edge]:
        """Iterate over each undirected edge exactly once, in canonical form.

        Each edge ``{u, v}`` is yielded from its canonical endpoint (the
        one with ``u <= v``, falling back to ``repr`` order for mixed
        non-comparable types), so the iteration needs no O(E) ``seen``
        set: the reverse encounter is simply skipped.  Labels whose
        ``<=`` is only a partial order (e.g. ``frozenset``) can be
        incomparable in *both* directions without raising; those pairs
        take the ``repr`` fallback as well, so the edge is still yielded
        exactly once.
        """
        for u, nbrs in self._adjacency.items():
            for v in nbrs:
                try:
                    if u <= v:  # type: ignore[operator]
                        yield (u, v)
                    elif not v <= u:  # type: ignore[operator]
                        # Incomparable under a partial order: neither
                        # endpoint wins by <=, so fall back to repr.
                        if repr(u) <= repr(v):
                            yield (u, v)
                except TypeError:
                    if repr(u) <= repr(v):
                        yield (u, v)

    def edge_set(self) -> Set[Edge]:
        """All edges as a set of canonical pairs."""
        return set(self.edges())

    def copy(self) -> "Graph":
        """An independent copy of the graph."""
        clone = Graph()
        clone._adjacency = {node: set(nbrs) for node, nbrs in self._adjacency.items()}
        clone._num_edges = self._num_edges
        return clone

    def relabeled(self) -> Tuple["Graph", Dict[Node, int]]:
        """Return a copy with nodes relabeled to ``0..n-1`` plus the mapping.

        Homogeneous comparable node sets (the common all-integer case) are
        ordered by their natural sort — sorting by ``repr`` would place 10
        before 2.  Mixed non-comparable types fall back to ``repr`` order.
        """
        try:
            ordered = sorted(self._adjacency)
        except TypeError:
            ordered = sorted(self._adjacency, key=repr)
        mapping = {node: index for index, node in enumerate(ordered)}
        relabeled = Graph(nodes=mapping.values())
        for u, v in self.edges():
            relabeled.add_edge(mapping[u], mapping[v])
        return relabeled, mapping

    # ------------------------------------------------------------------
    # Dunder helpers
    # ------------------------------------------------------------------
    def __contains__(self, node: Node) -> bool:
        return node in self._adjacency

    def __iter__(self) -> Iterator[Node]:
        return iter(self._adjacency)

    def __len__(self) -> int:
        return len(self._adjacency)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            set(self._adjacency) == set(other._adjacency)
            and self.edge_set() == other.edge_set()
        )

    def __hash__(self) -> int:  # Graphs are mutable; identity hash keeps them usable in ids only.
        return id(self)

    def __repr__(self) -> str:
        return f"Graph(num_nodes={self.num_nodes}, num_edges={self.num_edges})"

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(cls, edges: Iterable[Edge]) -> "Graph":
        """Build a graph from an iterable of edges, skipping self-loops.

        Unlike :meth:`add_edge`, this constructor tolerates self-loops and
        duplicates in raw data (the paper's preprocessing removes them).
        """
        graph = cls()
        for u, v in edges:
            if u == v:
                continue
            graph.add_edge(u, v)
        return graph
