"""Label ↔ contiguous-integer-id mapping (the WebGraph-style node index).

Every heavy phase of the library benefits from working on a dense id
space ``0..n-1`` instead of arbitrary hashable labels: adjacency becomes
array-indexable, per-node attributes become plain lists, and the hot
loops stop paying dictionary hashing per access (Boldi & Vigna, *The
WebGraph Framework I*, WWW'04).  :class:`NodeIndex` is the boundary
object that owns the mapping: labels are *interned* once (in first-seen
order, so an index built from a :class:`~repro.graphs.graph.Graph`
assigns ids in the graph's node-insertion order), heavy computation runs
on the ids, and results are mapped back to the original labels at the
end.

The id order is significant: :class:`~repro.model.hierarchy.Hierarchy`
also numbers the leaf supernodes ``0..n-1`` in graph order, so an index
built with :meth:`NodeIndex.from_graph` makes *node id == leaf supernode
id*, which is what lets SLUGGER's merging layer drop every
label→leaf-id dictionary probe.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Optional

__all__ = ["Label", "NodeIndex"]

Label = Hashable


class NodeIndex:
    """A bijection between arbitrary hashable labels and ids ``0..n-1``.

    Ids are assigned in first-interned order and never change; the index
    only grows (streaming consumers intern new labels as they arrive).

    Examples
    --------
    >>> index = NodeIndex(["a", "b"])
    >>> index.id_of("b")
    1
    >>> index.intern("c")
    2
    >>> index.label_of(0)
    'a'
    >>> len(index)
    3
    """

    __slots__ = ("_labels", "_ids", "__weakref__")

    def __init__(self, labels: Iterable[Label] = ()) -> None:
        self._labels: List[Label] = []
        self._ids: Dict[Label, int] = {}
        for label in labels:
            self.intern(label)

    @classmethod
    def from_graph(cls, graph) -> "NodeIndex":
        """An index over ``graph``'s nodes, ids in node-insertion order."""
        return cls(graph.adjacency())

    # ------------------------------------------------------------------
    # Mapping
    # ------------------------------------------------------------------
    def intern(self, label: Label) -> int:
        """Return the id of ``label``, assigning the next free id if new."""
        node_id = self._ids.get(label)
        if node_id is None:
            node_id = len(self._labels)
            self._ids[label] = node_id
            self._labels.append(label)
        return node_id

    def id_of(self, label: Label) -> int:
        """The id of a known label (raises ``KeyError`` for unknown ones)."""
        return self._ids[label]

    def get(self, label: Label, default: Optional[int] = None) -> Optional[int]:
        """The id of ``label``, or ``default`` when it is not interned."""
        return self._ids.get(label, default)

    def label_of(self, node_id: int) -> Label:
        """The label owning ``node_id`` (raises ``IndexError`` if out of range)."""
        return self._labels[node_id]

    def labels(self) -> List[Label]:
        """The internal id → label list (not copied; do not mutate).

        ``labels()[i]`` is the label of id ``i``; hot paths index this
        list directly instead of calling :meth:`label_of` per node.
        """
        return self._labels

    def ids(self) -> Dict[Label, int]:
        """The internal label → id mapping (not copied; do not mutate)."""
        return self._ids

    # ------------------------------------------------------------------
    # Dunder helpers
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._labels)

    def __contains__(self, label: Label) -> bool:
        return label in self._ids

    def __iter__(self) -> Iterator[Label]:
        return iter(self._labels)

    def __repr__(self) -> str:
        return f"NodeIndex(size={len(self._labels)})"
