"""Reading and writing graphs as whitespace-separated edge lists.

The paper's datasets are distributed as plain edge lists; the same format
is used here for interoperability with the original SLUGGER repository
and with SNAP-style downloads.  Lines starting with ``#`` or ``%`` are
treated as comments, directions and duplicates are collapsed, and
self-loops are dropped, matching the preprocessing in Sect. IV-A.

Robustness: files from real download mirrors arrive with CRLF line
endings, sometimes a UTF-8 byte-order mark, and — for SNAP exports —
tab-separated columns with trailing payloads (edge weights, timestamps).
All of these parse identically to the clean form: the BOM is stripped,
``\\r`` is whitespace, and columns past the first two are ignored.

Scaling: ``read_edge_list(..., workers=N)`` delegates to the sharded
parallel ingest of :mod:`repro.storage.ingest` — the file is split into
byte-range shards on line boundaries and parsed by a forked worker pool,
producing a graph **identical** to the serial parse (same node insertion
order, same edge set).  For repeated loads of the same file, pack it
into a binary container once (``repro-slugger pack`` /
:func:`repro.storage.pack`) and memory-map it with
:func:`repro.storage.load` instead of re-parsing text at all.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Tuple, Union

from repro.exceptions import GraphFormatError
from repro.graphs.graph import Graph

PathLike = Union[str, Path]

__all__ = ["parse_edge_line", "read_edge_list", "write_edge_list"]


def read_edge_list(path: PathLike, *, relabel: bool = False, workers: int = 1) -> Graph:
    """Read a graph from a whitespace-separated edge-list file.

    Parameters
    ----------
    path:
        File containing one edge per line (``u v``, space- or
        tab-separated; extra columns such as SNAP edge weights are
        ignored), with ``#``/``%`` comment lines allowed.  Node
        identifiers are parsed as integers when possible and kept as
        strings otherwise.  CRLF line endings and a leading UTF-8 BOM
        are tolerated.
    relabel:
        When ``True``, nodes are relabeled to the contiguous range
        ``0..n-1`` (useful before handing the graph to array-based code).
    workers:
        Parse the file in parallel over ``workers`` forked processes
        (see :mod:`repro.storage.ingest`).  The result is identical to
        the serial parse; platforms without ``fork`` — and files too
        small to be worth a pool — fall back to serial automatically.
    """
    file_path = Path(path)
    if workers > 1:
        # Deferred import: graphs is a foundation layer; the storage
        # subsystem builds on it and is only pulled in when the parallel
        # path is actually requested.
        from repro.storage.ingest import sharded_read_edge_list

        graph = sharded_read_edge_list(file_path, workers=workers)
    else:
        graph = Graph()
        # utf-8-sig strips a leading BOM; files without one are read as
        # plain UTF-8.  ``strip()`` handles the ``\r`` of CRLF files.
        # The error location is a closure formatted only on raise — a
        # per-line f-string would cost ~30% of the parse loop.
        line_number = 0

        def location() -> str:
            return f"{file_path}:{line_number}"

        with file_path.open("r", encoding="utf-8-sig") as handle:
            for raw_line in handle:
                line_number += 1
                edge = parse_edge_line(raw_line, location)
                if edge is not None:
                    graph.add_edge(*edge)
    if relabel:
        graph, _ = graph.relabeled()
    return graph


def parse_edge_line(raw_line: str, where) -> Optional[Tuple[object, object]]:
    """Parse one edge-list line into an ``(u, v)`` pair, or ``None``.

    ``None`` means the line carries no edge: blank, a ``#``/``%``
    comment, or a self-loop (dropped per the paper's preprocessing).
    ``where`` labels error messages — a string, or a zero-argument
    callable evaluated only when a line is malformed (``path:line`` for
    the serial reader, ``path@byte N`` for shard workers), so the happy
    path never pays for location formatting.  This is the one tokenizer
    shared by the serial and sharded ingest paths, which is what keeps
    their semantics identical by construction.
    """
    line = raw_line.strip()
    if not line or line.startswith("#") or line.startswith("%"):
        return None
    parts = line.split()
    if len(parts) < 2:
        location = where() if callable(where) else where
        raise GraphFormatError(
            f"{location}: expected at least two columns, got {line!r}"
        )
    u, v = _parse_node(parts[0]), _parse_node(parts[1])
    if u == v:
        return None
    return (u, v)


def write_edge_list(graph: Graph, path: PathLike, *, header: bool = True) -> None:
    """Write ``graph`` as an edge list (one ``u v`` pair per line)."""
    file_path = Path(path)
    file_path.parent.mkdir(parents=True, exist_ok=True)
    with file_path.open("w", encoding="utf-8") as handle:
        if header:
            handle.write(f"# nodes={graph.num_nodes} edges={graph.num_edges}\n")
        for u, v in sorted(graph.edges(), key=repr):
            handle.write(f"{u} {v}\n")


def _parse_node(token: str):
    """Parse a node token as an ``int`` when possible, else keep the string."""
    try:
        return int(token)
    except ValueError:
        return token
