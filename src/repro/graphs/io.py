"""Reading and writing graphs as whitespace-separated edge lists.

The paper's datasets are distributed as plain edge lists; the same format
is used here for interoperability with the original SLUGGER repository
and with SNAP-style downloads.  Lines starting with ``#`` or ``%`` are
treated as comments, directions and duplicates are collapsed, and
self-loops are dropped, matching the preprocessing in Sect. IV-A.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from repro.exceptions import GraphFormatError
from repro.graphs.graph import Graph

PathLike = Union[str, Path]


def read_edge_list(path: PathLike, *, relabel: bool = False) -> Graph:
    """Read a graph from a whitespace-separated edge-list file.

    Parameters
    ----------
    path:
        File containing one edge per line (``u v``), with ``#``/``%``
        comment lines allowed.  Node identifiers are parsed as integers
        when possible and kept as strings otherwise.
    relabel:
        When ``True``, nodes are relabeled to the contiguous range
        ``0..n-1`` (useful before handing the graph to array-based code).
    """
    file_path = Path(path)
    graph = Graph()
    with file_path.open("r", encoding="utf-8") as handle:
        for line_number, raw_line in enumerate(handle, start=1):
            line = raw_line.strip()
            if not line or line.startswith("#") or line.startswith("%"):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise GraphFormatError(
                    f"{file_path}:{line_number}: expected at least two columns, got {line!r}"
                )
            u, v = _parse_node(parts[0]), _parse_node(parts[1])
            if u == v:
                continue
            graph.add_edge(u, v)
    if relabel:
        graph, _ = graph.relabeled()
    return graph


def write_edge_list(graph: Graph, path: PathLike, *, header: bool = True) -> None:
    """Write ``graph`` as an edge list (one ``u v`` pair per line)."""
    file_path = Path(path)
    file_path.parent.mkdir(parents=True, exist_ok=True)
    with file_path.open("w", encoding="utf-8") as handle:
        if header:
            handle.write(f"# nodes={graph.num_nodes} edges={graph.num_edges}\n")
        for u, v in sorted(graph.edges(), key=repr):
            handle.write(f"{u} {v}\n")


def _parse_node(token: str):
    """Parse a node token as an ``int`` when possible, else keep the string."""
    try:
        return int(token)
    except ValueError:
        return token
