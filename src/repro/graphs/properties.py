"""Structural graph properties used by tests, examples, and dataset docs."""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Set

from repro.graphs.graph import Graph, Node

__all__ = [
    "connected_components",
    "degree_histogram",
    "global_clustering_coefficient",
    "graph_density",
]


def connected_components(graph: Graph) -> List[Set[Node]]:
    """Connected components as a list of node sets (largest first)."""
    seen: Set[Node] = set()
    components: List[Set[Node]] = []
    for start in graph.nodes():
        if start in seen:
            continue
        component: Set[Node] = {start}
        queue = deque([start])
        seen.add(start)
        while queue:
            node = queue.popleft()
            for neighbor in graph.neighbor_set(node):
                if neighbor not in seen:
                    seen.add(neighbor)
                    component.add(neighbor)
                    queue.append(neighbor)
        components.append(component)
    components.sort(key=len, reverse=True)
    return components


def graph_density(graph: Graph) -> float:
    """Edge density |E| / (|V| choose 2); zero for graphs with <2 nodes."""
    n = graph.num_nodes
    if n < 2:
        return 0.0
    return graph.num_edges / (n * (n - 1) / 2)


def degree_histogram(graph: Graph) -> Dict[int, int]:
    """Map from degree value to the number of nodes with that degree."""
    histogram: Dict[int, int] = {}
    for node in graph.nodes():
        degree = graph.degree(node)
        histogram[degree] = histogram.get(degree, 0) + 1
    return histogram


def global_clustering_coefficient(graph: Graph) -> float:
    """Transitivity: 3 * triangles / connected triples (0 when no triples exist)."""
    triangles = 0
    triples = 0
    for node in graph.nodes():
        neighbors = list(graph.neighbor_set(node))
        degree = len(neighbors)
        triples += degree * (degree - 1) // 2
        for i in range(degree):
            for j in range(i + 1, degree):
                if graph.has_edge(neighbors[i], neighbors[j]):
                    triangles += 1
    if triples == 0:
        return 0.0
    # Each triangle is counted once per corner node, i.e. three times.
    return triangles / triples
