"""Additional random-graph models used by the extended experiments.

The core generators live in :mod:`repro.graphs.generators`; this module
adds the models referenced by the paper's related work that are useful
as *extra* workloads for ablations and stress tests:

* :func:`rmat_graph` — the recursive-matrix (R-MAT) model behind the
  Graph500 generator; self-similar like Kronecker graphs but generated
  edge-by-edge, so it scales to sparse graphs cheaply.
* :func:`watts_strogatz_graph` — small-world rewiring; high clustering
  with low diameter, a regime where summarization gains are modest.
* :func:`configuration_model_graph` — random graph with a prescribed
  degree sequence (simple-graph version: multi-edges and self-loops are
  skipped), used to isolate the effect of degree skew from community
  structure.
* :func:`hierarchical_random_graph` — the dendrogram-based model of
  Clauset, Moore & Newman (reference [40] of the paper), the canonical
  generative model for the "hierarchy is pervasive" claim the paper
  builds on.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.exceptions import InvalidGraphError
from repro.graphs.graph import Graph
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import require_positive, require_probability

__all__ = [
    "configuration_model_graph",
    "hierarchical_random_graph",
    "rmat_graph",
    "watts_strogatz_graph",
]


def rmat_graph(
    scale: int,
    edge_factor: int = 8,
    probabilities: Sequence[float] = (0.57, 0.19, 0.19, 0.05),
    seed: SeedLike = None,
) -> Graph:
    """R-MAT random graph with ``2**scale`` nodes and about ``edge_factor * 2**scale`` edges.

    Each edge is placed by recursively descending into one of the four
    quadrants of the adjacency matrix with the given probabilities
    (a, b, c, d).  Duplicate edges and self-loops are skipped, so the
    realized edge count can be somewhat below the target — the standard
    behaviour of simple-graph R-MAT samplers.
    """
    require_positive(scale, "scale")
    require_positive(edge_factor, "edge_factor")
    if len(probabilities) != 4:
        raise InvalidGraphError("probabilities must have exactly four entries (a, b, c, d)")
    for probability in probabilities:
        require_probability(probability, "probability")
    total = sum(probabilities)
    if abs(total - 1.0) > 1e-9:
        raise InvalidGraphError(f"probabilities must sum to 1, got {total}")
    rng = ensure_rng(seed)
    num_nodes = 2**scale
    graph = Graph(nodes=range(num_nodes))
    a, b, c, _ = probabilities
    target_edges = edge_factor * num_nodes
    for _ in range(target_edges):
        u = v = 0
        for _ in range(scale):
            u <<= 1
            v <<= 1
            roll = rng.random()
            if roll < a:
                pass  # Top-left quadrant: both bits stay 0.
            elif roll < a + b:
                v |= 1
            elif roll < a + b + c:
                u |= 1
            else:
                u |= 1
                v |= 1
        if u != v:
            graph.add_edge(u, v)
    return graph


def watts_strogatz_graph(
    num_nodes: int,
    nearest_neighbors: int,
    rewire_probability: float,
    seed: SeedLike = None,
) -> Graph:
    """Watts–Strogatz small-world graph.

    Starts from a ring lattice where every node connects to its
    ``nearest_neighbors`` closest nodes (must be even), then rewires each
    edge with the given probability.
    """
    require_positive(num_nodes, "num_nodes")
    require_positive(nearest_neighbors, "nearest_neighbors")
    require_probability(rewire_probability, "rewire_probability")
    if nearest_neighbors % 2 != 0:
        raise InvalidGraphError("nearest_neighbors must be even")
    if nearest_neighbors >= num_nodes:
        raise InvalidGraphError("nearest_neighbors must be smaller than num_nodes")
    rng = ensure_rng(seed)
    graph = Graph(nodes=range(num_nodes))
    half = nearest_neighbors // 2
    for node in range(num_nodes):
        for offset in range(1, half + 1):
            graph.add_edge(node, (node + offset) % num_nodes)
    if rewire_probability > 0:
        for u, v in list(graph.edges()):
            if rng.random() < rewire_probability:
                candidates = [node for node in range(num_nodes) if node != u]
                new_target = rng.choice(candidates)
                if not graph.has_edge(u, new_target):
                    graph.remove_edge(u, v)
                    graph.add_edge(u, new_target)
    return graph


def configuration_model_graph(degree_sequence: Sequence[int], seed: SeedLike = None) -> Graph:
    """Simple-graph configuration model for a prescribed degree sequence.

    Stubs are paired uniformly at random; pairs that would create a
    self-loop or a duplicate edge are discarded, so realized degrees can
    fall slightly below the prescription (the usual simple-graph
    projection).  The degree sum must be even.
    """
    if not degree_sequence:
        return Graph()
    for degree in degree_sequence:
        if degree < 0:
            raise InvalidGraphError(f"degrees must be non-negative, got {degree}")
    if sum(degree_sequence) % 2 != 0:
        raise InvalidGraphError("the degree sequence must have an even sum")
    rng = ensure_rng(seed)
    graph = Graph(nodes=range(len(degree_sequence)))
    stubs: List[int] = []
    for node, degree in enumerate(degree_sequence):
        stubs.extend([node] * degree)
    rng.shuffle(stubs)
    for index in range(0, len(stubs) - 1, 2):
        u, v = stubs[index], stubs[index + 1]
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v)
    return graph


def hierarchical_random_graph(
    depth: int,
    branching: int = 2,
    leaves_per_block: int = 4,
    top_probability: float = 0.02,
    bottom_probability: float = 0.8,
    seed: SeedLike = None,
) -> Graph:
    """Dendrogram-based hierarchical random graph (Clauset–Moore–Newman style).

    Nodes are the leaves of a complete ``branching``-ary tree of the given
    ``depth`` with ``leaves_per_block`` nodes per lowest block.  The edge
    probability of a node pair is determined by the depth of their lowest
    common ancestor and interpolates geometrically between
    ``top_probability`` (ancestor at the root) and ``bottom_probability``
    (same lowest block) — deeper common ancestry means denser connectivity,
    the defining property of hierarchical organisation.
    """
    require_positive(depth, "depth")
    require_positive(branching, "branching")
    require_positive(leaves_per_block, "leaves_per_block")
    require_probability(top_probability, "top_probability")
    require_probability(bottom_probability, "bottom_probability")
    rng = ensure_rng(seed)
    num_blocks = branching**depth
    num_nodes = num_blocks * leaves_per_block
    graph = Graph(nodes=range(num_nodes))

    def block_path(node: int) -> List[int]:
        block = node // leaves_per_block
        path = []
        for _ in range(depth):
            path.append(block % branching)
            block //= branching
        return list(reversed(path))

    paths = [block_path(node) for node in range(num_nodes)]
    # Probability at common-ancestor depth d interpolates geometrically
    # between the top and bottom probabilities over depth+1 levels
    # (d = depth means the two nodes share their lowest block).
    probabilities = []
    for level in range(depth + 1):
        fraction = level / depth
        probabilities.append(top_probability * (bottom_probability / top_probability) ** fraction
                             if top_probability > 0 else bottom_probability * fraction)

    for u in range(num_nodes):
        path_u = paths[u]
        for v in range(u + 1, num_nodes):
            path_v = paths[v]
            common = 0
            while common < depth and path_u[common] == path_v[common]:
                common += 1
            if rng.random() < probabilities[common]:
                graph.add_edge(u, v)
    return graph
