"""Node sampling and induced subgraphs.

Fig. 1(b) of the paper measures SLUGGER's runtime on graphs obtained by
sampling different numbers of nodes from the largest dataset (UK-05).
The same protocol is reproduced here against the synthetic analogue.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Set

from repro.exceptions import InvalidGraphError
from repro.graphs.graph import Graph, Node
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import require_probability

__all__ = ["induced_subgraph", "sample_nodes", "scalability_series"]


def sample_nodes(graph: Graph, fraction: float, seed: SeedLike = None) -> List[Node]:
    """Uniformly sample ``fraction`` of the nodes of ``graph`` (without replacement)."""
    require_probability(fraction, "fraction")
    nodes = graph.nodes()
    count = int(round(fraction * len(nodes)))
    rng = ensure_rng(seed)
    return rng.sample(nodes, count) if count <= len(nodes) else nodes


def induced_subgraph(graph: Graph, nodes: Iterable[Node]) -> Graph:
    """The subgraph induced by ``nodes`` (keeps isolated sampled nodes)."""
    node_set: Set[Node] = set(nodes)
    missing = [node for node in node_set if not graph.has_node(node)]
    if missing:
        raise InvalidGraphError(f"nodes not in graph: {missing[:5]!r}")
    subgraph = Graph(nodes=node_set)
    for u in node_set:
        for v in graph.neighbor_set(u):
            if v in node_set and repr(u) <= repr(v):
                subgraph.add_edge(u, v)
    return subgraph


def scalability_series(graph: Graph, fractions: Sequence[float], seed: SeedLike = None) -> List[Graph]:
    """Induced subgraphs for a sweep of node-sampling fractions.

    Returns one graph per fraction, produced by independent uniform node
    samples — the protocol behind the scalability plot (Fig. 1(b)).
    """
    rng = ensure_rng(seed)
    series: List[Graph] = []
    for fraction in fractions:
        sampled = sample_nodes(graph, fraction, seed=rng)
        series.append(induced_subgraph(graph, sampled))
    return series
