"""The single home for substrate-staleness detection.

Several layers hand prebuilt substrate views (a dense adjacency, a
frozen CSR, a materialized graph) to components that could also build
them from scratch: the summarization states accept injected substrates,
the service graph store seeds handles from storage loads, and
``StoredGraph.seed`` short-circuits cold-load thaws.  Each of those
sites used to carry its own copy of the same two checks — "does this
view still describe this many edges?" and "has the graph been mutated
since this was built?" — and the copies drifted in wording and
strictness.  They now all route through this module:

* :func:`ensure_fresh_views` validates injected views against the edge
  count of their source (graph or container) and raises the caller's
  layer-appropriate error type;
* :func:`mutation_stamp` / :func:`stamp_is_stale` are the one
  sanctioned use of :attr:`Graph.mutation_count` comparisons — the
  ``staleness-guard`` lint rule flags any ad-hoc comparison elsewhere,
  so future strengthening (e.g. content digests) lands in one place.
"""

from __future__ import annotations

from typing import Optional, Type

from repro.exceptions import SummaryInvariantError

__all__ = ["ensure_fresh_views", "mutation_stamp", "stamp_is_stale"]

#: Keyword-argument name → human label used in error messages.  Unknown
#: kwargs fall back to their own name, so callers can validate novel
#: view kinds without touching this table.
_VIEW_LABELS = {
    "dense": "dense substrate",
    "csr": "CSR view",
    "graph": "graph view",
}


def ensure_fresh_views(
    expected_edges: int,
    *,
    error: Type[Exception] = SummaryInvariantError,
    owner: str = "the graph",
    **views,
) -> None:
    """Validate that every non-``None`` prebuilt view matches ``expected_edges``.

    ``views`` maps view names (``dense``, ``csr``, ``graph``) to objects
    exposing ``num_edges`` (or ``None`` for "not injected", which is
    always fresh).  A mismatch raises ``error`` — callers pass their
    layer's type (:class:`~repro.exceptions.SummaryInvariantError` for
    summarization states, :class:`~repro.exceptions.ServiceError` for
    the graph store, :class:`~repro.exceptions.ContainerFormatError`
    for storage seeds) so existing ``except`` contracts are unchanged.

    The edge count is a cheap necessary condition, not a content check:
    substrate construction is deterministic in graph content, so views
    built from the same source agree wherever they are built — the only
    real hazard is a view that outlived a mutation of its source, and
    any structural mutation bumps the edge count or the mutation stamp.
    """
    for name, view in views.items():
        if view is None:
            continue
        if view.num_edges != expected_edges:
            label = _VIEW_LABELS.get(name, name)
            raise error(
                f"prebuilt {label} is stale: {view.num_edges} edges "
                f"vs {owner}'s {expected_edges}"
            )


def mutation_stamp(graph) -> int:
    """Opaque freshness stamp for ``graph``, to pair with :func:`stamp_is_stale`.

    Currently :attr:`Graph.mutation_count` — a counter bumped by every
    structural mutation, so even count-preserving edit sequences
    (remove one edge, add another) change the stamp.
    """
    return graph.mutation_count


def stamp_is_stale(graph, stamp: Optional[int]) -> bool:
    """Whether ``graph`` was structurally mutated since ``stamp`` was taken."""
    return graph.mutation_count != stamp
