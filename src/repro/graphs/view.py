"""Read-only label-keyed :class:`Graph` facade over ``(index, csr)``.

:class:`CSRGraphView` is what lets the summarizers initialize straight
from a mapped container: it satisfies the full :class:`Graph` read API —
``nodes()``/``edges()``/``neighbor_set()``/``degree()`` and friends —
but is backed by a CSR substrate and a :class:`NodeIndex` instead of
per-node adjacency sets.  Nothing is materialized up front:

- ``nodes()``, ``edges()``, ``num_edges``, ``degree()`` and edge
  membership stream straight off the flat arrays (zero rows thawed);
- ``neighbor_set(label)`` thaws exactly the queried row into a memoized
  label set — the access pattern of the pruning scans, which only ever
  inspect the subnode pairs of candidate root trees;
- full materialization only happens if a consumer explicitly walks
  ``adjacency().items()`` or calls :meth:`copy`.

The view is immutable: mutators raise
:class:`~repro.exceptions.InvalidStateError`.  A ``--cache-dir`` hit
hands one of these to the engine instead of paying the O(m)
``StoredGraph.graph()`` materialization, and the summary layer's
``from_graph`` over a view streams the same (index, csr) substrate.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterator, Mapping, Optional, Set, Tuple

from repro.exceptions import InvalidStateError
from repro.graphs.graph import Edge, Graph, canonical_edge
from repro.graphs.index import NodeIndex

__all__ = ["CSRGraphView"]

Label = Hashable

_READ_ONLY = (
    "CSRGraphView is a read-only substrate view; materialize a mutable "
    "Graph with .copy() to edit"
)


class _LazyAdjacencyMap(Mapping):
    """Mapping facade over the view: keys are free, values thaw per row."""

    __slots__ = ("_view",)

    def __init__(self, view: "CSRGraphView") -> None:
        self._view = view

    def __getitem__(self, label: Label) -> Set[Label]:
        return self._view._thaw_row(label)

    def __iter__(self) -> Iterator[Label]:
        return iter(self._view.index.labels())

    def __len__(self) -> int:
        return len(self._view.index)

    def __contains__(self, label: object) -> bool:
        # Mapping's default __contains__ would thaw the row just to
        # answer membership; the index already knows.
        return label in self._view.index


class CSRGraphView(Graph):
    """A :class:`Graph`-compatible, read-only view over ``(index, csr)``."""

    def __init__(self, csr, index: Optional[NodeIndex] = None) -> None:
        resolved = index if index is not None else getattr(csr, "index", None)
        if resolved is None:
            resolved = NodeIndex(range(csr.num_nodes))
        if len(resolved) != csr.num_nodes:
            raise InvalidStateError(
                f"index covers {len(resolved)} labels but the substrate has "
                f"{csr.num_nodes} nodes"
            )
        self._substrate = csr
        self._index = resolved
        self._rows: Dict[Label, Set[Label]] = {}
        self._num_edges = csr.num_edges
        self._mutations = 0
        self._adjacency = _LazyAdjacencyMap(self)  # type: ignore[assignment]

    # ------------------------------------------------------------------
    # Substrate access
    # ------------------------------------------------------------------
    @property
    def substrate(self):
        """The backing CSR-shaped view (``CSRAdjacency`` or ``MappedCSR``)."""
        return self._substrate

    @property
    def index(self) -> NodeIndex:
        """The label ↔ id mapping of the substrate."""
        return self._index

    @property
    def thawed_rows(self) -> int:
        """How many label rows have been materialized so far."""
        return len(self._rows)

    def _thaw_row(self, label: Label) -> Set[Label]:
        cached = self._rows.get(label)
        if cached is None:
            node_id = self._index.id_of(label)
            labels = self._index.labels()
            cached = {labels[v] for v in self._substrate.neighbors_of(node_id)}
            self._rows[label] = cached
        return cached

    # ------------------------------------------------------------------
    # Read overrides that stay on the flat arrays (zero thaw)
    # ------------------------------------------------------------------
    def has_edge(self, u: Label, v: Label) -> bool:
        """Edge membership via binary search on the substrate (no thaw)."""
        u_id = self._index.get(u)
        v_id = self._index.get(v)
        if u_id is None or v_id is None:
            return False
        return self._substrate.has_edge(u_id, v_id)

    def degree(self, node: Label) -> int:
        """Degree off the index pointers (no thaw)."""
        node_id = self._index.get(node)
        if node_id is None:
            # repro-lint: disable=raise-taxonomy (documented mapping-style lookup contract)
            raise KeyError(f"node {node!r} is not in the graph")
        return self._substrate.degree(node_id)

    def edges(self) -> Iterator[Edge]:
        """Stream every edge once, in canonical label form, off the map."""
        labels = self._index.labels()
        for u, v in self._substrate.edge_ids():
            yield canonical_edge(labels[u], labels[v])

    def relabeled(self) -> Tuple[Graph, Dict[Label, int]]:
        """A relabeled mutable copy (materializes; see :meth:`Graph.relabeled`)."""
        try:
            ordered = sorted(self._index.labels())
        except TypeError:
            ordered = sorted(self._index.labels(), key=repr)
        mapping = {node: position for position, node in enumerate(ordered)}
        relabeled = Graph(nodes=mapping.values())
        for u, v in self.edges():
            relabeled.add_edge(mapping[u], mapping[v])
        return relabeled, mapping

    # ------------------------------------------------------------------
    # Mutation is refused
    # ------------------------------------------------------------------
    def add_node(self, node: Label) -> None:
        raise InvalidStateError(_READ_ONLY)

    def add_edge(self, u: Label, v: Label) -> bool:
        raise InvalidStateError(_READ_ONLY)

    def remove_edge(self, u: Label, v: Label) -> bool:
        raise InvalidStateError(_READ_ONLY)

    def remove_node(self, node: Label) -> None:
        raise InvalidStateError(_READ_ONLY)

    def __repr__(self) -> str:
        return (
            f"CSRGraphView(num_nodes={self.num_nodes}, "
            f"num_edges={self.num_edges}, thawed_rows={self.thawed_rows})"
        )
