"""Lossy (bounded-error) summarization and reconstruction-error metrics.

The paper's evaluation is lossless, but its related-work section relies
on the lossy variant of graph summarization (SWeG's ε mode, APXMDL,
utility-driven methods).  This subpackage provides the error metrics and
an ε-bounded driver so the size/error trade-off can be reproduced and
contrasted with the lossless results.
"""

from repro.lossy.error import (
    edge_error_counts,
    error_report,
    l1_reconstruction_error,
    max_relative_error,
    neighborhood_errors,
)
from repro.lossy.bounded import (
    LossySummaryResult,
    lossy_slugger_sparsify,
    lossy_sweg_summarize,
    lossy_tradeoff_curve,
    sparsify_hierarchical_summary,
)

__all__ = [
    "neighborhood_errors",
    "max_relative_error",
    "edge_error_counts",
    "l1_reconstruction_error",
    "error_report",
    "LossySummaryResult",
    "lossy_sweg_summarize",
    "sparsify_hierarchical_summary",
    "lossy_slugger_sparsify",
    "lossy_tradeoff_curve",
]
