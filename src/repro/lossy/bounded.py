"""Bounded-error (lossy) summarization built on the lossless summarizers.

The paper's related work (Sect. V) describes the lossy variant of graph
summarization: find the most concise flat summary whose reconstruction
changes at most a fraction ``ε`` of every node's neighbors.  SWeG [2]
implements it by *dropping corrections* from a lossless summary while a
per-node error budget allows it; this module packages that recipe into a
single driver and verifies the bound on the way out.

SLUGGER itself is a lossless method, so the hierarchical counterpart here
is deliberately conservative: it drops whole n-edges (and p-edges that
cover only a few absent pairs) of a SLUGGER summary while every touched
subnode stays within its ε budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Optional

from repro.baselines.sweg import drop_corrections, sweg_summarize
from repro.exceptions import LossyBoundError
from repro.graphs.graph import Graph
from repro.lossy.error import error_report, max_relative_error
from repro.model.flat import FlatSummary
from repro.model.summary import HierarchicalSummary
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import require_probability, require_type

__all__ = [
    "LossySummaryResult",
    "lossy_slugger_sparsify",
    "lossy_sweg_summarize",
    "lossy_tradeoff_curve",
    "sparsify_hierarchical_summary",
]

Node = Hashable


@dataclass
class LossySummaryResult:
    """A lossy summary together with its measured error and size."""

    summary: FlatSummary
    epsilon: float
    dropped_corrections: int
    report: Dict[str, float]

    @property
    def relative_size(self) -> float:
        """Eq. 11 relative size of the lossy summary."""
        return self.report["relative_size"]

    @property
    def measured_error(self) -> float:
        """Measured maximum per-node relative error (must be ≤ ε)."""
        return self.report["max_relative_error"]


def lossy_sweg_summarize(
    graph: Graph,
    epsilon: float,
    iterations: int = 10,
    seed: SeedLike = 0,
    check_bound: bool = True,
) -> LossySummaryResult:
    """Lossy SWeG: lossless SWeG followed by ε-bounded correction dropping.

    Parameters
    ----------
    graph:
        The input graph.
    epsilon:
        Per-node error bound: a node ``v`` may lose or gain at most
        ``ε · degree(v)`` neighbors in the reconstruction.  ``0`` keeps
        the summary lossless.
    iterations:
        Iterations of the underlying lossless SWeG run.
    seed:
        Seed driving both the lossless run and the dropping order.
    check_bound:
        When ``True`` the measured error is verified against ``ε`` and a
        violation raises :class:`~repro.exceptions.LossyBoundError`.
    """
    require_type(graph, Graph, "graph")
    require_probability(epsilon, "epsilon")
    rng = ensure_rng(seed)
    summary = sweg_summarize(graph, iterations=iterations, seed=rng.randrange(2**61))
    dropped = drop_corrections(summary, graph, epsilon, seed=rng.randrange(2**61))
    report = error_report(summary, graph)
    report["relative_size"] = summary.relative_size(graph) if graph.num_edges else 0.0
    report["cost"] = float(summary.cost_eq11())
    if check_bound and report["max_relative_error"] > epsilon + 1e-9:
        raise LossyBoundError(
            f"lossy summary violates its bound: measured error "
            f"{report['max_relative_error']:.4f} > epsilon {epsilon:.4f}"
        )
    return LossySummaryResult(
        summary=summary,
        epsilon=epsilon,
        dropped_corrections=dropped,
        report=report,
    )


def sparsify_hierarchical_summary(
    summary: HierarchicalSummary,
    graph: Graph,
    epsilon: float,
    seed: SeedLike = 0,
) -> int:
    """Drop n-edges from a hierarchical summary within a per-node ε budget.

    Removing an n-edge re-introduces the subedges it was cancelling, so
    each removal is accepted only if every affected subnode still has
    error budget left.  Returns the number of superedges removed; the
    summary is modified in place.
    """
    require_type(summary, HierarchicalSummary, "summary")
    require_type(graph, Graph, "graph")
    require_probability(epsilon, "epsilon")
    if epsilon == 0.0:
        return 0
    rng = ensure_rng(seed)
    budget: Dict[Node, float] = {
        node: epsilon * graph.degree(node) for node in graph.nodes()
    }
    hierarchy = summary.hierarchy
    removed = 0
    for a, b in sorted(summary.n_edges(), key=lambda edge: rng.random()):
        leaves_a = hierarchy.leaf_subnodes(a)
        leaves_b = hierarchy.leaf_subnodes(b)
        # The affected pairs are at most |A| x |B|; charge each endpoint once
        # per pair it participates in.
        charge: Dict[Node, int] = {}
        for u in leaves_a:
            for v in leaves_b:
                if u == v:
                    continue
                charge[u] = charge.get(u, 0) + 1
                charge[v] = charge.get(v, 0) + 1
        if all(budget.get(node, 0.0) >= amount for node, amount in charge.items()):
            summary.remove_n_edge(a, b)
            for node, amount in charge.items():
                budget[node] -= amount
            removed += 1
    return removed


def lossy_slugger_sparsify(
    summary: HierarchicalSummary,
    graph: Graph,
    epsilon: float,
    seed: SeedLike = 0,
    check_bound: bool = True,
) -> Dict[str, float]:
    """Apply :func:`sparsify_hierarchical_summary` and report size and error.

    The summary is modified in place; the returned record contains the
    new cost, relative size, number of removed superedges, and the
    measured error (verified against ``ε`` unless ``check_bound`` is
    ``False``).
    """
    removed = sparsify_hierarchical_summary(summary, graph, epsilon, seed=seed)
    report = error_report(summary, graph)
    report["removed_superedges"] = float(removed)
    report["cost"] = float(summary.cost())
    report["relative_size"] = summary.relative_size(graph) if graph.num_edges else 0.0
    if check_bound and report["max_relative_error"] > epsilon + 1e-9:
        raise LossyBoundError(
            f"sparsified summary violates its bound: measured error "
            f"{report['max_relative_error']:.4f} > epsilon {epsilon:.4f}"
        )
    return report


def lossy_tradeoff_curve(
    graph: Graph,
    epsilons,
    iterations: int = 10,
    seed: SeedLike = 0,
):
    """Relative size versus ε for lossy SWeG (the size/error trade-off series)."""
    rows = []
    for epsilon in epsilons:
        result = lossy_sweg_summarize(graph, epsilon, iterations=iterations, seed=seed)
        rows.append(
            {
                "epsilon": float(epsilon),
                "relative_size": result.relative_size,
                "dropped_corrections": float(result.dropped_corrections),
                "max_relative_error": result.measured_error,
            }
        )
    return rows
