"""Reconstruction-error metrics for lossy summarization.

The lossy variant of graph summarization (Sect. V of the paper; SWeG's
lossy mode and APXMDL) bounds, for every node, how much its reconstructed
neighborhood may deviate from the original one.  These metrics quantify
that deviation for any summary type:

* :func:`neighborhood_errors` — per-node count of lost plus spurious
  neighbors;
* :func:`max_relative_error` — the quantity the ε bound constrains:
  ``max_v error(v) / max(1, degree(v))``;
* :func:`edge_error_counts` — graph-level lost/spurious edge totals;
* :func:`l1_reconstruction_error` — the entry-wise L1 distance between
  adjacency matrices used by the utility-driven lossy methods (k-GS,
  SSumm).
"""

from __future__ import annotations

from typing import Dict, Hashable, Tuple, Union

from repro.graphs.graph import Graph
from repro.model.flat import FlatSummary
from repro.model.summary import HierarchicalSummary

__all__ = [
    "edge_error_counts",
    "error_report",
    "l1_reconstruction_error",
    "max_relative_error",
    "neighborhood_errors",
]

Node = Hashable
AnySummary = Union[HierarchicalSummary, FlatSummary]


def _reconstruct(summary: Union[AnySummary, Graph]) -> Graph:
    if isinstance(summary, Graph):
        return summary
    return summary.decompress()


def neighborhood_errors(summary: Union[AnySummary, Graph], graph: Graph) -> Dict[Node, int]:
    """Per-node neighborhood error: lost neighbors plus spurious neighbors."""
    reconstructed = _reconstruct(summary)
    errors: Dict[Node, int] = {node: 0 for node in graph.nodes()}
    original_edges = graph.edge_set()
    rebuilt_edges = reconstructed.edge_set()
    for u, v in original_edges ^ rebuilt_edges:
        if u in errors:
            errors[u] += 1
        else:
            errors[u] = 1
        if v in errors:
            errors[v] += 1
        else:
            errors[v] = 1
    return errors


def max_relative_error(summary: Union[AnySummary, Graph], graph: Graph) -> float:
    """Largest per-node error relative to the node's degree (the ε of lossy SWeG)."""
    errors = neighborhood_errors(summary, graph)
    worst = 0.0
    for node, error in errors.items():
        degree = graph.degree(node) if graph.has_node(node) else 0
        worst = max(worst, error / max(1, degree))
    return worst


def edge_error_counts(summary: Union[AnySummary, Graph], graph: Graph) -> Tuple[int, int]:
    """Graph-level error: ``(lost_edges, spurious_edges)`` of the reconstruction."""
    reconstructed = _reconstruct(summary)
    original_edges = graph.edge_set()
    rebuilt_edges = reconstructed.edge_set()
    return len(original_edges - rebuilt_edges), len(rebuilt_edges - original_edges)


def l1_reconstruction_error(summary: Union[AnySummary, Graph], graph: Graph) -> int:
    """Entry-wise L1 distance between the original and reconstructed adjacency matrices.

    Each lost or spurious undirected edge contributes 2 (both symmetric
    entries differ), matching the error measure of the utility-driven
    lossy summarization literature.
    """
    lost, spurious = edge_error_counts(summary, graph)
    return 2 * (lost + spurious)


def error_report(summary: Union[AnySummary, Graph], graph: Graph) -> Dict[str, float]:
    """One record combining every error metric (used by the lossy bench)."""
    errors = neighborhood_errors(summary, graph)
    lost, spurious = edge_error_counts(summary, graph)
    num_nodes = max(1, graph.num_nodes)
    return {
        "lost_edges": float(lost),
        "spurious_edges": float(spurious),
        "l1_error": float(l1_reconstruction_error(summary, graph)),
        "max_relative_error": max_relative_error(summary, graph),
        "mean_node_error": sum(errors.values()) / num_nodes,
        "exact": float(lost == 0 and spurious == 0),
    }
