"""Graph summarization models.

Two representation models are implemented:

* :class:`~repro.model.summary.HierarchicalSummary` — the hierarchical
  graph summarization model of the paper (Sect. II-B): supernodes may
  nest, and the graph is described by positive edges (p-edges), negative
  edges (n-edges), and hierarchy edges (h-edges).
* :class:`~repro.model.flat.FlatSummary` — the previous graph
  summarization model of Navlakha et al. (Sect. II-A): disjoint
  supernodes, superedges, and per-subedge corrections.

Both expose the same losslessness contract: ``decompress()`` returns a
graph equal to the input, ``neighbors(v)`` answers adjacency queries by
partial decompression, and ``validate(graph)`` raises if the contract is
broken.
"""

from repro.model.hierarchy import Hierarchy
from repro.model.summary import HierarchicalSummary
from repro.model.flat import FlatSummary
from repro.model.conversion import flat_to_hierarchical, hierarchical_report, singleton_summary
from repro.model.serialization import (
    load_flat_summary,
    load_hierarchical_summary,
    save_flat_summary,
    save_hierarchical_summary,
)
from repro.model.export import (
    ascii_hierarchy,
    flat_summary_to_dot,
    hierarchy_to_dot,
    summary_to_dot,
    supernode_size_distribution,
)

__all__ = [
    "Hierarchy",
    "HierarchicalSummary",
    "FlatSummary",
    "flat_to_hierarchical",
    "hierarchical_report",
    "singleton_summary",
    "load_flat_summary",
    "load_hierarchical_summary",
    "save_flat_summary",
    "save_hierarchical_summary",
    "ascii_hierarchy",
    "hierarchy_to_dot",
    "summary_to_dot",
    "flat_summary_to_dot",
    "supernode_size_distribution",
]
