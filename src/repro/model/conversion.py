"""Conversions and reports bridging the flat and hierarchical models.

Sect. II-B of the paper shows the flat model is a special case of the
hierarchical one: superedges become p-edges between root supernodes,
corrections become p/n-edges between singleton leaves, and supernode
membership becomes a height-1 hierarchy tree.  :func:`flat_to_hierarchical`
implements exactly that embedding, which also makes Eq. 10 and Eq. 11
agree on converted summaries.
"""

from __future__ import annotations

from typing import Dict, Hashable

from repro.graphs.graph import Graph
from repro.model.flat import FlatSummary
from repro.model.hierarchy import Hierarchy
from repro.model.summary import HierarchicalSummary

__all__ = ["flat_to_hierarchical", "hierarchical_report", "singleton_summary"]

Subnode = Hashable


def singleton_summary(graph: Graph) -> HierarchicalSummary:
    """The trivial hierarchical summary of ``graph`` (Algorithm 1 initial state)."""
    return HierarchicalSummary.from_graph(graph)


def flat_to_hierarchical(flat: FlatSummary) -> HierarchicalSummary:
    """Embed a flat summary into the hierarchical model.

    Non-singleton supernodes become height-1 trees whose leaves are the
    member subnodes; superedges map to p-edges between the corresponding
    roots (or to self-loop p-edges); corrections map to p/n-edges between
    leaf supernodes.  The resulting hierarchical cost (Eq. 1) equals the
    flat cost under Eq. 11.
    """
    hierarchy = Hierarchy()
    leaf_ids: Dict[Subnode, int] = {}
    for subnode in flat.group_of:
        leaf_ids[subnode] = hierarchy.add_leaf(subnode)

    root_of_group: Dict[int, int] = {}
    for group_id, members in flat.groups.items():
        if len(members) == 1:
            (only_member,) = tuple(members)
            root_of_group[group_id] = leaf_ids[only_member]
        else:
            root_of_group[group_id] = hierarchy.create_parent(
                leaf_ids[member] for member in sorted(members, key=repr)
            )

    summary = HierarchicalSummary(hierarchy)
    for a, b in flat.superedges:
        summary.add_p_edge(root_of_group[a], root_of_group[b])
    for u, v in flat.corrections_plus:
        summary.add_p_edge(leaf_ids[u], leaf_ids[v])
    for u, v in flat.corrections_minus:
        summary.add_n_edge(leaf_ids[u], leaf_ids[v])
    return summary


def hierarchical_report(summary: HierarchicalSummary) -> Dict[str, float]:
    """Structural statistics of a hierarchical summary used across experiments.

    Returns the encoding cost split by edge type, the number of
    supernodes and roots, the maximum tree height, and the average leaf
    depth (the Table IV / Table V metrics).
    """
    hierarchy = summary.hierarchy
    return {
        "cost": float(summary.cost()),
        "p_edges": float(summary.num_p_edges),
        "n_edges": float(summary.num_n_edges),
        "h_edges": float(summary.num_h_edges),
        "supernodes": float(hierarchy.num_supernodes),
        "roots": float(len(hierarchy.roots())),
        "max_height": float(hierarchy.max_height()),
        "average_leaf_depth": float(hierarchy.average_leaf_depth()),
    }
