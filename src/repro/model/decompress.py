"""Decompression helpers shared by both summary models.

The functions here provide a model-agnostic interface used by the
summary-aware graph algorithms (Sect. VIII-C) and by the partial
decompression benchmark (Sect. VIII-B): given either a
:class:`~repro.model.summary.HierarchicalSummary` or a
:class:`~repro.model.flat.FlatSummary`, retrieve neighbors of one node
without materializing the whole graph, or reconstruct the whole graph.
"""

from __future__ import annotations

from typing import Hashable, Set, Union

from repro.graphs.graph import Graph
from repro.model.flat import FlatSummary
from repro.model.summary import HierarchicalSummary

__all__ = ["partial_neighbors", "reconstruct", "reconstruction_matches"]

Subnode = Hashable
AnySummary = Union[HierarchicalSummary, FlatSummary]


def reconstruct(summary: AnySummary) -> Graph:
    """Fully decompress ``summary`` back into a :class:`Graph`."""
    return summary.decompress()


def partial_neighbors(summary: AnySummary, subnode: Subnode) -> Set[Subnode]:
    """Neighbors of ``subnode`` obtained by partial decompression (Alg. 4).

    Works uniformly for the hierarchical and the flat model, which is
    what lets BFS/PageRank/Dijkstra run unchanged on either
    representation.
    """
    return summary.neighbors(subnode)


def reconstruction_matches(summary: AnySummary, graph: Graph) -> bool:
    """Whether ``summary`` losslessly represents ``graph`` (bool form of ``validate``)."""
    try:
        summary.validate(graph)
    except Exception:
        return False
    return True
