"""Export helpers: render summaries as DOT graphs or ASCII hierarchy trees.

Hierarchical summaries are hard to inspect as raw edge sets; the helpers
here turn them into human-readable artifacts — Graphviz DOT sources for
figures resembling Fig. 2 of the paper and indented ASCII trees for
terminal inspection — without adding any plotting dependency.
"""

from __future__ import annotations

from typing import Dict, List, Union

from repro.model.flat import FlatSummary
from repro.model.hierarchy import Hierarchy
from repro.model.summary import HierarchicalSummary

__all__ = [
    "ascii_hierarchy",
    "flat_summary_to_dot",
    "hierarchy_to_dot",
    "summary_to_dot",
    "supernode_size_distribution",
]

AnySummary = Union[HierarchicalSummary, FlatSummary]


def _quote(value: object) -> str:
    return '"' + str(value).replace('"', '\\"') + '"'


def _supernode_label(hierarchy: Hierarchy, supernode: int, max_members: int = 6) -> str:
    members = sorted(map(str, hierarchy.leaf_subnodes(supernode)))
    if len(members) > max_members:
        members = members[:max_members] + ["..."]
    return f"S{supernode}\\n{{{', '.join(members)}}}"


def hierarchy_to_dot(hierarchy: Hierarchy, name: str = "hierarchy") -> str:
    """Graphviz DOT source of the hierarchy forest (h-edges only)."""
    lines = [f"digraph {name} {{", "  rankdir=TB;", "  node [shape=box];"]
    for supernode in sorted(hierarchy.supernodes()):
        lines.append(f"  {supernode} [label={_quote(_supernode_label(hierarchy, supernode))}];")
    for supernode in sorted(hierarchy.supernodes()):
        for child in sorted(hierarchy.children(supernode)):
            lines.append(f"  {supernode} -> {child};")
    lines.append("}")
    return "\n".join(lines)


def summary_to_dot(summary: HierarchicalSummary, name: str = "summary") -> str:
    """Graphviz DOT source showing h-edges (grey), p-edges (solid), n-edges (dashed).

    The styling mirrors Fig. 2/3 of the paper: red solid superedges are
    positive, blue dashed superedges are negative, grey arrows are the
    hierarchy.
    """
    hierarchy = summary.hierarchy
    lines = [f"graph {name} {{", "  node [shape=box];"]
    for supernode in sorted(hierarchy.supernodes()):
        lines.append(f"  {supernode} [label={_quote(_supernode_label(hierarchy, supernode))}];")
    for supernode in sorted(hierarchy.supernodes()):
        for child in sorted(hierarchy.children(supernode)):
            lines.append(f"  {supernode} -- {child} [color=grey, style=bold, dir=forward];")
    for a, b in sorted(summary.p_edges()):
        lines.append(f"  {a} -- {b} [color=red];")
    for a, b in sorted(summary.n_edges()):
        lines.append(f"  {a} -- {b} [color=blue, style=dashed];")
    lines.append("}")
    return "\n".join(lines)


def flat_summary_to_dot(summary: FlatSummary, name: str = "flat_summary") -> str:
    """Graphviz DOT source of a flat summary (supernodes, P, C+ and C- edges)."""
    lines = [f"graph {name} {{", "  node [shape=box];"]
    for group, members in sorted(summary.groups.items()):
        label = f"G{group}\\n{{{', '.join(sorted(map(str, members)))}}}"
        lines.append(f"  g{group} [label={_quote(label)}];")
    for a, b in sorted(summary.superedges):
        lines.append(f"  g{a} -- g{b} [color=red];")
    for u, v in sorted(summary.corrections_plus, key=repr):
        lines.append(f"  {_quote(u)} -- {_quote(v)} [color=darkgreen, style=dotted];")
    for u, v in sorted(summary.corrections_minus, key=repr):
        lines.append(f"  {_quote(u)} -- {_quote(v)} [color=blue, style=dashed];")
    lines.append("}")
    return "\n".join(lines)


def ascii_hierarchy(summary_or_hierarchy: Union[HierarchicalSummary, Hierarchy],
                    max_members: int = 8) -> str:
    """Indented ASCII rendering of the hierarchy forest.

    Each line shows a supernode id, how many subnodes it contains, and —
    for small supernodes — the subnodes themselves, for example::

        S12 (4 subnodes): 0, 1, 2, 3
          S8 (2 subnodes): 2, 3
    """
    hierarchy = (
        summary_or_hierarchy.hierarchy
        if isinstance(summary_or_hierarchy, HierarchicalSummary)
        else summary_or_hierarchy
    )
    lines: List[str] = []

    def render(supernode: int, depth: int) -> None:
        members = sorted(map(str, hierarchy.leaf_subnodes(supernode)))
        shown = ", ".join(members[:max_members]) + (", ..." if len(members) > max_members else "")
        lines.append(f"{'  ' * depth}S{supernode} ({len(members)} subnodes): {shown}")
        for child in sorted(hierarchy.children(supernode)):
            render(child, depth + 1)

    for root in sorted(hierarchy.roots()):
        render(root, 0)
    return "\n".join(lines)


def supernode_size_distribution(summary: AnySummary) -> Dict[int, int]:
    """Histogram ``size -> count`` of supernode sizes.

    For hierarchical summaries only root supernodes are counted (they are
    the disjoint cover of the subnodes); for flat summaries every group is
    counted.
    """
    if isinstance(summary, HierarchicalSummary):
        hierarchy = summary.hierarchy
        sizes = [hierarchy.size(root) for root in hierarchy.roots()]
    elif isinstance(summary, FlatSummary):
        sizes = sorted(len(members) for members in summary.groups.values())
    else:
        raise TypeError(f"unsupported summary type {type(summary).__name__}")
    histogram: Dict[int, int] = {}
    for size in sizes:
        histogram[size] = histogram.get(size, 0) + 1
    return histogram
