"""The previous (flat) graph summarization model of Navlakha et al.

``FlatSummary`` represents a graph by a partition ``S`` of its nodes
into disjoint supernodes, a set ``P`` of superedges (self-loops allowed),
and correction sets ``C+``/``C-`` of subedges (Sect. II-A).  It is the
output model of every baseline (Randomized, Greedy, SWeG, SAGS, MoSSo)
and a special case of the hierarchical model, which is how the paper
compares costs across models (Eq. 11).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, List, Optional, Set, Tuple

from repro.exceptions import SummaryInvariantError
from repro.graphs.graph import Graph, canonical_edge
from repro.utils.validation import require_type

__all__ = ["FlatSummary"]

Subnode = Hashable
GroupId = int
SubedgePair = Tuple[Subnode, Subnode]
SuperEdge = Tuple[GroupId, GroupId]


def _canonical_pair(a: GroupId, b: GroupId) -> SuperEdge:
    return (a, b) if a <= b else (b, a)


class FlatSummary:
    """A lossless flat summary ``(S, P, C+, C-)`` of an undirected graph.

    Instances are normally produced by :meth:`from_grouping`, which
    computes the optimal superedge/correction encoding for a fixed node
    partition — once ``S`` is chosen, that encoding is unique and cheap
    to compute (Sect. II-A).
    """

    def __init__(self) -> None:
        self.groups: Dict[GroupId, FrozenSet[Subnode]] = {}
        self.group_of: Dict[Subnode, GroupId] = {}
        self.superedges: Set[SuperEdge] = set()
        self.corrections_plus: Set[SubedgePair] = set()
        self.corrections_minus: Set[SubedgePair] = set()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_grouping(cls, graph: Graph, groups: Iterable[Iterable[Subnode]]) -> "FlatSummary":
        """Build the optimal flat summary of ``graph`` for a fixed partition.

        Parameters
        ----------
        graph:
            The input graph.
        groups:
            An iterable of node groups forming a partition of the graph's
            nodes.  Groups may be given in any order; singletons may be
            omitted and are added automatically for uncovered nodes.
        """
        require_type(graph, Graph, "graph")
        summary = cls()
        covered: Set[Subnode] = set()
        next_id = 0
        for group in groups:
            members = frozenset(group)
            if not members:
                continue
            overlap = members & covered
            if overlap:
                raise SummaryInvariantError(
                    f"groups must be disjoint; nodes seen twice: {sorted(map(repr, overlap))[:5]}"
                )
            for node in members:
                if not graph.has_node(node):
                    raise SummaryInvariantError(f"group member {node!r} is not a node of the graph")
            summary.groups[next_id] = members
            for node in members:
                summary.group_of[node] = next_id
            covered |= members
            next_id += 1
        for node in graph.nodes():
            if node not in covered:
                summary.groups[next_id] = frozenset([node])
                summary.group_of[node] = next_id
                next_id += 1
        summary._encode(graph)
        return summary

    @classmethod
    def singletons(cls, graph: Graph) -> "FlatSummary":
        """The trivial summary where every node is its own supernode."""
        return cls.from_grouping(graph, ([node] for node in graph.nodes()))

    def _encode(self, graph: Graph) -> None:
        """Compute the optimal ``P``, ``C+``, ``C-`` for the current partition."""
        self.superedges.clear()
        self.corrections_plus.clear()
        self.corrections_minus.clear()
        # Count actual subedges per supernode pair in one pass over E.
        pair_edges: Dict[SuperEdge, List[SubedgePair]] = {}
        for u, v in graph.edges():
            pair = _canonical_pair(self.group_of[u], self.group_of[v])
            pair_edges.setdefault(pair, []).append(canonical_edge(u, v))
        for (a, b), edges in pair_edges.items():
            present = len(edges)
            if a == b:
                size = len(self.groups[a])
                possible = size * (size - 1) // 2
            else:
                possible = len(self.groups[a]) * len(self.groups[b])
            # Either list all present edges as C+ (cost `present`), or add a
            # superedge and list the missing pairs as C- (cost 1 + missing).
            if 1 + (possible - present) < present:
                self.superedges.add((a, b))
                missing = possible - present
                if missing:
                    edge_set = set(edges)
                    for u, v in self._pairs_between(a, b):
                        if canonical_edge(u, v) not in edge_set:
                            self.corrections_minus.add(canonical_edge(u, v))
            else:
                self.corrections_plus.update(edges)

    def _pairs_between(self, a: GroupId, b: GroupId) -> Iterator[SubedgePair]:
        """All potential subedges between supernodes ``a`` and ``b``."""
        if a == b:
            members = sorted(self.groups[a], key=repr)
            for i in range(len(members)):
                for j in range(i + 1, len(members)):
                    yield members[i], members[j]
        else:
            for u in self.groups[a]:
                for v in self.groups[b]:
                    yield u, v

    # ------------------------------------------------------------------
    # Cost
    # ------------------------------------------------------------------
    @property
    def num_superedges(self) -> int:
        """|P|."""
        return len(self.superedges)

    @property
    def num_corrections(self) -> int:
        """|C+| + |C-|."""
        return len(self.corrections_plus) + len(self.corrections_minus)

    def membership_edges(self) -> int:
        """|H*| of Eq. 11: one membership edge per subnode of each non-singleton supernode."""
        return sum(len(members) for members in self.groups.values() if len(members) >= 2)

    def cost(self) -> int:
        """Navlakha encoding cost |P| + |C+| + |C-|."""
        return self.num_superedges + self.num_corrections

    def cost_eq11(self) -> int:
        """Cost comparable with the hierarchical model (Eq. 11): adds |H*|."""
        return self.cost() + self.membership_edges()

    def relative_size(self, graph: Graph) -> float:
        """Relative output size under Eq. 11, as reported in Fig. 5(a)."""
        if graph.num_edges == 0:
            raise SummaryInvariantError("relative size is undefined for an edgeless graph")
        return self.cost_eq11() / graph.num_edges

    # ------------------------------------------------------------------
    # Decompression
    # ------------------------------------------------------------------
    def decompress(self) -> Graph:
        """Reconstruct the represented graph exactly."""
        graph = Graph(nodes=self.group_of)
        for a, b in self.superedges:
            for u, v in self._pairs_between(a, b):
                if u != v:
                    graph.add_edge(u, v)
        for u, v in self.corrections_minus:
            graph.remove_edge(u, v)
        for u, v in self.corrections_plus:
            graph.add_edge(u, v)
        return graph

    def neighbors(self, subnode: Subnode) -> Set[Subnode]:
        """One-hop neighbors of ``subnode`` by partial decompression."""
        if subnode not in self.group_of:
            # repro-lint: disable=raise-taxonomy (documented mapping-style lookup contract)
            raise KeyError(f"subnode {subnode!r} is not in the summary")
        group = self.group_of[subnode]
        result: Set[Subnode] = set()
        for a, b in self.superedges:
            if a == group and b == group:
                result |= set(self.groups[group])
            elif a == group:
                result |= set(self.groups[b])
            elif b == group:
                result |= set(self.groups[a])
        result.discard(subnode)
        for u, v in self.corrections_minus:
            if u == subnode:
                result.discard(v)
            elif v == subnode:
                result.discard(u)
        for u, v in self.corrections_plus:
            if u == subnode:
                result.add(v)
            elif v == subnode:
                result.add(u)
        return result

    # ------------------------------------------------------------------
    # Validation and stats
    # ------------------------------------------------------------------
    def validate(self, graph: Graph) -> None:
        """Raise :class:`SummaryInvariantError` unless the summary is exact for ``graph``."""
        if set(self.group_of) != set(graph.nodes()):
            raise SummaryInvariantError("flat summary does not cover exactly the graph's nodes")
        rebuilt = self.decompress()
        if rebuilt.edge_set() != graph.edge_set():
            lost = graph.edge_set() - rebuilt.edge_set()
            spurious = rebuilt.edge_set() - graph.edge_set()
            raise SummaryInvariantError(
                f"flat summary is not lossless: {len(lost)} edges lost, {len(spurious)} spurious"
            )

    def group_sizes(self) -> List[int]:
        """Sizes of all supernodes (descending)."""
        return sorted((len(members) for members in self.groups.values()), reverse=True)

    def num_non_singleton_groups(self) -> int:
        """Number of supernodes containing at least two subnodes."""
        return sum(1 for members in self.groups.values() if len(members) >= 2)

    def __repr__(self) -> str:
        return (
            f"FlatSummary(groups={len(self.groups)}, superedges={self.num_superedges}, "
            f"corrections={self.num_corrections})"
        )
