"""Forest of hierarchical supernodes.

A supernode is identified by an integer id.  Leaf supernodes are
singletons wrapping exactly one subnode of the input graph; internal
supernodes own one or more child supernodes and implicitly contain every
subnode in their subtree.  The forest corresponds to the set ``H`` of
hierarchy edges in the model ``G = (S, P+, P-, H)``: each non-root
supernode contributes exactly one h-edge (from its parent).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Set, Tuple

from repro.exceptions import SummaryInvariantError

__all__ = ["Hierarchy"]

Subnode = Hashable


class Hierarchy:
    """A mutable forest of supernodes over a fixed set of subnodes.

    Examples
    --------
    >>> h = Hierarchy()
    >>> a, b = h.add_leaf("u"), h.add_leaf("v")
    >>> top = h.create_parent([a, b])
    >>> h.num_hierarchy_edges
    2
    >>> sorted(h.leaf_subnodes(top))
    ['u', 'v']
    """

    def __init__(self) -> None:
        self._parent: Dict[int, Optional[int]] = {}
        self._children: Dict[int, List[int]] = {}
        self._leaf_subnode: Dict[int, Subnode] = {}
        self._leaf_of_subnode: Dict[Subnode, int] = {}
        self._size: Dict[int, int] = {}
        # Memoized leaf-id tuples per supernode.  A supernode's leaf set is
        # fixed at creation time (children are only ever attached when the
        # supernode is created, and ``splice_out`` reattaches children to
        # the parent without changing any surviving leaf set), so entries
        # never go stale — they are only dropped when their supernode is
        # removed.  ``create_parent`` extends the cache incrementally by
        # concatenating the children's tuples, which is what keeps
        # shingle rounds, panel statistics, and saving evaluation from
        # re-walking trees on the SLUGGER hot path.
        self._leaf_cache: Dict[int, Tuple[int, ...]] = {}
        self._next_id = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_leaf(self, subnode: Subnode) -> int:
        """Register ``subnode`` and return the id of its singleton supernode."""
        if subnode in self._leaf_of_subnode:
            return self._leaf_of_subnode[subnode]
        node_id = self._next_id
        self._next_id += 1
        self._parent[node_id] = None
        self._children[node_id] = []
        self._leaf_subnode[node_id] = subnode
        self._leaf_of_subnode[subnode] = node_id
        self._size[node_id] = 1
        self._leaf_cache[node_id] = (node_id,)
        return node_id

    def create_parent(self, children: Iterable[int]) -> int:
        """Create a new supernode whose children are the given root supernodes.

        Every child must currently be a root (the forest stays a forest).
        Returns the id of the new supernode.
        """
        child_list = list(children)
        if not child_list:
            raise SummaryInvariantError("a new internal supernode needs at least one child")
        for child in child_list:
            if child not in self._parent:
                # repro-lint: disable=raise-taxonomy (documented mapping-style lookup contract)
                raise KeyError(f"unknown supernode id {child}")
            if self._parent[child] is not None:
                raise SummaryInvariantError(
                    f"supernode {child} already has a parent; only roots can be merged"
                )
        node_id = self._next_id
        self._next_id += 1
        self._parent[node_id] = None
        self._children[node_id] = list(child_list)
        self._size[node_id] = sum(self._size[child] for child in child_list)
        for child in child_list:
            self._parent[child] = node_id
        child_caches = [self._leaf_cache.get(child) for child in child_list]
        if all(cached is not None for cached in child_caches):
            # Incremental update: the merged leaf set is the concatenation
            # of the children's (immutable) leaf sets.
            combined: List[int] = []
            for cached in child_caches:
                combined.extend(cached)  # type: ignore[arg-type]
            self._leaf_cache[node_id] = tuple(combined)
        return node_id

    @classmethod
    def from_parts(
        cls,
        subnodes: Iterable[Subnode],
        internal: Iterable[Tuple[int, List[int]]],
        next_id: Optional[int] = None,
    ) -> "Hierarchy":
        """Rebuild a forest from its serialized parts (the summary codec).

        ``subnodes`` is the id-ordered leaf list (leaf ``i`` wraps the
        ``i``-th subnode); ``internal`` yields ``(id, children)`` pairs in
        **ascending id order** with each children list verbatim as
        originally created; ``next_id`` restores the id counter (defaults
        to one past the largest id).  Because supernode ids are assigned
        monotonically and dict deletions preserve insertion order, the
        ascending-id rebuild reproduces the original iteration order of
        every internal mapping — :meth:`roots` and friends return ids in
        exactly the order the serialized forest did, which is what keeps
        resumed runs bit-identical.  Sizes and leaf caches are recomputed
        bottom-up from the children lists.
        """
        forest = cls()
        for subnode in subnodes:
            forest.add_leaf(subnode)
        num_leaves = forest._next_id
        if num_leaves != len(forest._leaf_subnode):
            raise SummaryInvariantError("serialized hierarchy repeats a subnode")
        for node_id, children in internal:
            if node_id < forest._next_id or node_id in forest._parent:
                raise SummaryInvariantError(
                    f"serialized internal supernodes must arrive in ascending id "
                    f"order above the leaves, got id {node_id}"
                )
            if not children:
                raise SummaryInvariantError(
                    f"serialized internal supernode {node_id} has no children"
                )
            combined: List[int] = []
            size = 0
            for child in children:
                if child not in forest._parent:
                    raise SummaryInvariantError(
                        f"serialized supernode {node_id} references unknown child {child}"
                    )
                if forest._parent[child] is not None:
                    raise SummaryInvariantError(
                        f"serialized supernode {child} has two parents"
                    )
                forest._parent[child] = node_id
                size += forest._size[child]
                combined.extend(forest._leaf_cache[child])
            forest._parent[node_id] = None
            forest._children[node_id] = list(children)
            forest._size[node_id] = size
            forest._leaf_cache[node_id] = tuple(combined)
            forest._next_id = node_id + 1
        if next_id is not None:
            if next_id < forest._next_id:
                raise SummaryInvariantError(
                    f"serialized id counter {next_id} is below the largest id"
                )
            forest._next_id = next_id
        return forest

    def splice_out(self, supernode: int) -> None:
        """Remove an internal supernode, reattaching its children to its parent.

        Used by pruning substep 1: the supernode disappears from ``S`` and
        its children become children of its parent (or roots, if the
        removed supernode was a root).  Leaves cannot be spliced out.
        """
        if supernode not in self._parent:
            # repro-lint: disable=raise-taxonomy (documented mapping-style lookup contract)
            raise KeyError(f"unknown supernode id {supernode}")
        if self.is_leaf(supernode):
            raise SummaryInvariantError("leaf supernodes cannot be removed from the hierarchy")
        parent = self._parent[supernode]
        children = self._children[supernode]
        for child in children:
            self._parent[child] = parent
            if parent is not None:
                self._children[parent].append(child)
        if parent is not None:
            self._children[parent].remove(supernode)
        del self._parent[supernode]
        del self._children[supernode]
        del self._size[supernode]
        # Leaf sets of the surviving supernodes are unchanged (the children
        # keep their subtrees and the parent keeps the same leaves); only
        # the removed supernode's cache entry must go.
        self._leaf_cache.pop(supernode, None)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_supernodes(self) -> int:
        """Total number of supernodes currently in the forest."""
        return len(self._parent)

    @property
    def num_hierarchy_edges(self) -> int:
        """|H|: one hierarchy edge per non-root supernode."""
        return sum(1 for parent in self._parent.values() if parent is not None)

    @property
    def num_subnodes(self) -> int:
        """Number of registered subnodes (= number of leaf supernodes)."""
        return len(self._leaf_subnode)

    def supernodes(self) -> List[int]:
        """Ids of all supernodes."""
        return list(self._parent)

    def is_leaf(self, supernode: int) -> bool:
        """Whether ``supernode`` is a leaf (wraps exactly one subnode)."""
        return supernode in self._leaf_subnode

    def contains(self, supernode: int) -> bool:
        """Whether the id refers to a live supernode."""
        return supernode in self._parent

    def is_leaf(self, supernode: int) -> bool:
        """Whether ``supernode`` is a singleton leaf."""
        return supernode in self._leaf_subnode

    def is_root(self, supernode: int) -> bool:
        """Whether ``supernode`` has no parent."""
        return self._parent[supernode] is None

    def roots(self) -> List[int]:
        """All root supernodes."""
        return [node for node, parent in self._parent.items() if parent is None]

    def parent(self, supernode: int) -> Optional[int]:
        """Parent id, or ``None`` for roots."""
        return self._parent[supernode]

    def children(self, supernode: int) -> List[int]:
        """Direct children of ``supernode`` (empty for leaves)."""
        return list(self._children.get(supernode, ()))

    def size(self, supernode: int) -> int:
        """Number of subnodes contained in ``supernode``'s subtree."""
        return self._size[supernode]

    def size_map(self) -> Dict[int, int]:
        """The internal supernode → subtree-size mapping (not copied; do not mutate).

        Hot paths bind ``size_map().__getitem__`` once instead of paying a
        method call per size lookup.
        """
        return self._size

    def subnode_of_leaf(self, leaf: int) -> Subnode:
        """The subnode wrapped by a leaf supernode."""
        return self._leaf_subnode[leaf]

    def leaf_of(self, subnode: Subnode) -> int:
        """The leaf supernode id for ``subnode``."""
        return self._leaf_of_subnode[subnode]

    def leaf_subnode_map(self) -> Dict[int, Subnode]:
        """The internal leaf-id → subnode mapping (not copied; do not mutate).

        Hot paths use this to resolve leaf roots to their subnode with a
        single dictionary probe instead of a subtree walk per root.
        """
        return self._leaf_subnode

    def subnodes(self) -> List[Subnode]:
        """All registered subnodes."""
        return list(self._leaf_of_subnode)

    def root_of(self, supernode: int) -> int:
        """The root of the tree containing ``supernode``."""
        node = supernode
        while self._parent[node] is not None:
            node = self._parent[node]
        return node

    def ancestors(self, supernode: int, include_self: bool = True) -> List[int]:
        """Ancestors of ``supernode`` from itself (optional) up to its root."""
        chain: List[int] = []
        node: Optional[int] = supernode if include_self else self._parent[supernode]
        while node is not None:
            chain.append(node)
            node = self._parent[node]
        return chain

    def is_ancestor(self, ancestor: int, descendant: int) -> bool:
        """Whether ``ancestor`` lies on ``descendant``'s path to its root (inclusive)."""
        node: Optional[int] = descendant
        while node is not None:
            if node == ancestor:
                return True
            node = self._parent[node]
        return False

    def descendants(self, supernode: int, include_self: bool = True) -> Iterator[int]:
        """Iterate over the subtree rooted at ``supernode`` (pre-order)."""
        stack = [supernode]
        while stack:
            node = stack.pop()
            if node != supernode or include_self:
                yield node
            stack.extend(self._children.get(node, ()))

    def leaf_ids(self, supernode: int) -> List[int]:
        """Leaf supernode ids contained in ``supernode``'s subtree (memoized)."""
        return list(self._cached_leaf_ids(supernode))

    def leaf_id_view(self, supernode: int) -> Tuple[int, ...]:
        """The memoized leaf-id tuple of ``supernode`` (not copied).

        When the hierarchy was built over a graph by
        :meth:`~repro.model.summary.HierarchicalSummary.from_graph`, leaf
        ids coincide with the dense node ids of a
        :class:`~repro.graphs.index.NodeIndex` built from the same graph,
        so this view is what the int-id fast paths iterate instead of
        resolving subnode labels.
        """
        return self._cached_leaf_ids(supernode)

    def _cached_leaf_ids(self, supernode: int) -> Tuple[int, ...]:
        """Leaf-id tuple of one supernode, filled in lazily from child caches."""
        cached = self._leaf_cache.get(supernode)
        if cached is not None:
            return cached
        if supernode in self._leaf_subnode:
            result: Tuple[int, ...] = (supernode,)
        else:
            cache = self._leaf_cache
            leaf_subnode = self._leaf_subnode
            collected: List[int] = []
            stack = [supernode]
            while stack:
                node = stack.pop()
                hit = cache.get(node)
                if hit is not None:
                    collected.extend(hit)
                elif node in leaf_subnode:
                    collected.append(node)
                else:
                    stack.extend(self._children[node])
            result = tuple(collected)
        self._leaf_cache[supernode] = result
        return result

    def leaf_subnodes(self, supernode: int) -> List[Subnode]:
        """Subnodes contained in ``supernode``'s subtree."""
        leaf_subnode = self._leaf_subnode
        return [leaf_subnode[leaf] for leaf in self._cached_leaf_ids(supernode)]

    def verify_leaf_cache(self) -> None:
        """Check every memoized leaf set against a fresh tree walk.

        Raises :class:`SummaryInvariantError` on any drift.  O(total cache
        size); meant for tests and :meth:`SluggerState.check_consistency`.
        """
        for supernode, cached in self._leaf_cache.items():
            if supernode not in self._parent:
                raise SummaryInvariantError(
                    f"leaf cache holds entry for removed supernode {supernode}"
                )
            actual: List[int] = []
            stack = [supernode]
            while stack:
                node = stack.pop()
                if node in self._leaf_subnode:
                    actual.append(node)
                else:
                    stack.extend(self._children[node])
            if sorted(cached) != sorted(actual):
                raise SummaryInvariantError(
                    f"leaf cache for supernode {supernode} is stale: "
                    f"cached {len(cached)} leaves, actual {len(actual)}"
                )
            if len(cached) != self._size[supernode]:
                raise SummaryInvariantError(
                    f"size bookkeeping for supernode {supernode} is {self._size[supernode]}, "
                    f"but it has {len(cached)} leaves"
                )

    def contains_subnode(self, supernode: int, subnode: Subnode) -> bool:
        """Whether ``subnode`` belongs to ``supernode`` (walks up from the leaf)."""
        leaf = self._leaf_of_subnode.get(subnode)
        if leaf is None:
            return False
        return self.is_ancestor(supernode, leaf)

    # ------------------------------------------------------------------
    # Tree-shape statistics (Tables IV and V)
    # ------------------------------------------------------------------
    def height(self, supernode: int) -> int:
        """Height of the subtree rooted at ``supernode`` (a leaf has height 0)."""
        children = self._children.get(supernode, ())
        if not children:
            return 0
        # Iterative post-order to avoid recursion limits on deep trees.
        heights: Dict[int, int] = {}
        stack = [(supernode, False)]
        while stack:
            node, expanded = stack.pop()
            kids = self._children.get(node, ())
            if not kids:
                heights[node] = 0
                continue
            if expanded:
                heights[node] = 1 + max(heights[kid] for kid in kids)
            else:
                stack.append((node, True))
                stack.extend((kid, False) for kid in kids)
        return heights[supernode]

    def max_height(self) -> int:
        """Maximum tree height over all roots (0 for a forest of singletons)."""
        roots = self.roots()
        if not roots:
            return 0
        return max(self.height(root) for root in roots)

    def leaf_depths(self) -> Dict[Subnode, int]:
        """Depth of every subnode's leaf below its root (roots that are leaves → 0)."""
        depths: Dict[Subnode, int] = {}
        for leaf, subnode in self._leaf_subnode.items():
            depth = 0
            node = self._parent[leaf]
            while node is not None:
                depth += 1
                node = self._parent[node]
            depths[subnode] = depth
        return depths

    def average_leaf_depth(self) -> float:
        """Average depth of leaf supernodes (Table IV / Table V metric)."""
        depths = self.leaf_depths()
        if not depths:
            return 0.0
        return sum(depths.values()) / len(depths)

    # ------------------------------------------------------------------
    # Copying
    # ------------------------------------------------------------------
    def copy(self) -> "Hierarchy":
        """A deep copy of the forest."""
        clone = Hierarchy()
        clone._parent = dict(self._parent)
        clone._children = {node: list(kids) for node, kids in self._children.items()}
        clone._leaf_subnode = dict(self._leaf_subnode)
        clone._leaf_of_subnode = dict(self._leaf_of_subnode)
        clone._size = dict(self._size)
        clone._leaf_cache = dict(self._leaf_cache)
        clone._next_id = self._next_id
        return clone

    def __repr__(self) -> str:
        return (
            f"Hierarchy(supernodes={self.num_supernodes}, subnodes={self.num_subnodes}, "
            f"h_edges={self.num_hierarchy_edges})"
        )
