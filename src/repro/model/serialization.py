"""Saving and loading summaries as JSON documents.

Summaries are graphs themselves (the paper stresses this as one of the
merits of graph summarization), so the on-disk format is a plain JSON
description of the supernode forest and the signed superedges.  The
format is intentionally explicit and versioned so other tooling can
consume SLUGGER outputs without importing this package.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from repro.exceptions import GraphFormatError
from repro.model.flat import FlatSummary
from repro.model.hierarchy import Hierarchy
from repro.model.summary import HierarchicalSummary

__all__ = [
    "load_flat_summary",
    "load_hierarchical_summary",
    "save_flat_summary",
    "save_hierarchical_summary",
]

PathLike = Union[str, Path]

_HIERARCHICAL_FORMAT = "repro/hierarchical-summary/v1"
_FLAT_FORMAT = "repro/flat-summary/v1"


def save_hierarchical_summary(summary: HierarchicalSummary, path: PathLike) -> None:
    """Write a hierarchical summary to ``path`` as JSON."""
    hierarchy = summary.hierarchy
    document = {
        "format": _HIERARCHICAL_FORMAT,
        "leaves": [
            {"id": leaf, "subnode": hierarchy.subnode_of_leaf(leaf)}
            for leaf in hierarchy.supernodes()
            if hierarchy.is_leaf(leaf)
        ],
        "internal": [
            {"id": node, "children": hierarchy.children(node)}
            for node in hierarchy.supernodes()
            if not hierarchy.is_leaf(node)
        ],
        "p_edges": sorted(summary.p_edges()),
        "n_edges": sorted(summary.n_edges()),
    }
    _write_json(document, path)


def load_hierarchical_summary(path: PathLike) -> HierarchicalSummary:
    """Load a hierarchical summary written by :func:`save_hierarchical_summary`."""
    document = _read_json(path, expected_format=_HIERARCHICAL_FORMAT)
    hierarchy = Hierarchy()
    id_map: Dict[int, int] = {}
    for leaf in document["leaves"]:
        id_map[leaf["id"]] = hierarchy.add_leaf(_restore_subnode(leaf["subnode"]))
    # Internal nodes must be created children-first; iterate until all are placed.
    pending: List[Dict] = list(document["internal"])
    while pending:
        progressed = False
        remaining: List[Dict] = []
        for record in pending:
            if all(child in id_map for child in record["children"]):
                id_map[record["id"]] = hierarchy.create_parent(
                    id_map[child] for child in record["children"]
                )
                progressed = True
            else:
                remaining.append(record)
        if not progressed:
            raise GraphFormatError(f"{path}: cyclic or dangling hierarchy records")
        pending = remaining
    summary = HierarchicalSummary(hierarchy)
    for a, b in document["p_edges"]:
        summary.add_p_edge(id_map[a], id_map[b])
    for a, b in document["n_edges"]:
        summary.add_n_edge(id_map[a], id_map[b])
    return summary


def save_flat_summary(summary: FlatSummary, path: PathLike) -> None:
    """Write a flat (Navlakha-model) summary to ``path`` as JSON."""
    document = {
        "format": _FLAT_FORMAT,
        "groups": [
            {"id": group_id, "members": sorted(members, key=repr)}
            for group_id, members in summary.groups.items()
        ],
        "superedges": sorted(summary.superedges),
        "corrections_plus": sorted(summary.corrections_plus, key=repr),
        "corrections_minus": sorted(summary.corrections_minus, key=repr),
    }
    _write_json(document, path)


def load_flat_summary(path: PathLike) -> FlatSummary:
    """Load a flat summary written by :func:`save_flat_summary`."""
    document = _read_json(path, expected_format=_FLAT_FORMAT)
    summary = FlatSummary()
    for record in document["groups"]:
        members = frozenset(_restore_subnode(member) for member in record["members"])
        summary.groups[record["id"]] = members
        for member in members:
            summary.group_of[member] = record["id"]
    summary.superedges = {tuple(edge) for edge in document["superedges"]}
    summary.corrections_plus = {
        tuple(_restore_subnode(node) for node in pair) for pair in document["corrections_plus"]
    }
    summary.corrections_minus = {
        tuple(_restore_subnode(node) for node in pair) for pair in document["corrections_minus"]
    }
    return summary


def _restore_subnode(value):
    """JSON round-trips integers and strings; anything else was stringified."""
    return value


def _write_json(document: Dict, path: PathLike) -> None:
    file_path = Path(path)
    file_path.parent.mkdir(parents=True, exist_ok=True)
    with file_path.open("w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1, sort_keys=True)


def _read_json(path: PathLike, expected_format: str) -> Dict:
    file_path = Path(path)
    try:
        with file_path.open("r", encoding="utf-8") as handle:
            document = json.load(handle)
    except json.JSONDecodeError as error:
        raise GraphFormatError(f"{file_path}: not valid JSON ({error})") from error
    if document.get("format") != expected_format:
        raise GraphFormatError(
            f"{file_path}: expected format {expected_format!r}, got {document.get('format')!r}"
        )
    return document
