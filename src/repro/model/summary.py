"""The hierarchical graph summarization model ``G = (S, P+, P-, H)``.

A :class:`HierarchicalSummary` couples a :class:`~repro.model.hierarchy.Hierarchy`
(the supernodes ``S`` and hierarchy edges ``H``) with two sets of
undirected superedges: positive edges ``P+`` and negative edges ``P-``.
Self-loops are allowed on both.  The represented graph contains a
subedge ``(u, v)`` if and only if strictly more p-edges than n-edges
cover the pair, where an edge ``{X, Y}`` covers ``(u, v)`` when one
endpoint supernode contains ``u`` and the other contains ``v``
(Sect. II-B of the paper).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Set, Tuple

from repro.exceptions import SummaryInvariantError
from repro.graphs.graph import Graph
from repro.model.hierarchy import Hierarchy

__all__ = ["HierarchicalSummary"]

Subnode = Hashable
SuperEdge = Tuple[int, int]

POSITIVE = 1
NEGATIVE = -1


def _canonical(a: int, b: int) -> SuperEdge:
    """Canonical (sorted) form of an undirected superedge, self-loops allowed."""
    return (a, b) if a <= b else (b, a)


class HierarchicalSummary:
    """Mutable hierarchical summary of an undirected graph.

    The summary does not keep a reference to the input graph; exactness
    is checked on demand with :meth:`validate`.

    Examples
    --------
    >>> from repro.graphs import complete_graph
    >>> graph = complete_graph(3)
    >>> summary = HierarchicalSummary.from_graph(graph)
    >>> summary.validate(graph)
    >>> summary.cost() == graph.num_edges
    True
    """

    def __init__(self, hierarchy: Optional[Hierarchy] = None) -> None:
        self.hierarchy = hierarchy if hierarchy is not None else Hierarchy()
        self._p_edges: Set[SuperEdge] = set()
        self._n_edges: Set[SuperEdge] = set()
        self._incident: Dict[int, Set[Tuple[int, int]]] = {}

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(cls, graph: Graph) -> "HierarchicalSummary":
        """The trivial summary: every subnode is a singleton root supernode
        and every subedge becomes a p-edge between two singletons.

        This is the initial state of SLUGGER (Algorithm 1, lines 1-4).
        """
        summary = cls()
        for node in graph.nodes():
            summary.hierarchy.add_leaf(node)
        for u, v in graph.edges():
            summary.add_p_edge(summary.hierarchy.leaf_of(u), summary.hierarchy.leaf_of(v))
        return summary

    @classmethod
    def from_substrate(cls, index, csr) -> "HierarchicalSummary":
        """The trivial summary, built straight from ``(index, csr)``.

        Leaves are added in id order (``index.labels()``), so leaf
        supernode ids coincide with the dense node ids by construction,
        and p-edges stream off :meth:`csr.edge_ids` — no label-keyed
        :class:`~repro.graphs.graph.Graph` is ever materialized and no
        dense rows are thawed.  Content-identical to
        :meth:`from_graph` over the equivalent graph.
        """
        summary = cls()
        add_leaf = summary.hierarchy.add_leaf
        for label in index.labels():
            add_leaf(label)
        for u, v in csr.edge_ids():
            summary.add_p_edge(u, v)
        return summary

    # ------------------------------------------------------------------
    # Superedge mutation
    # ------------------------------------------------------------------
    def _check_supernode(self, supernode: int) -> None:
        if not self.hierarchy.contains(supernode):
            # repro-lint: disable=raise-taxonomy (documented mapping-style lookup contract)
            raise KeyError(f"unknown supernode id {supernode}")

    def add_p_edge(self, a: int, b: int) -> bool:
        """Add the positive superedge ``{a, b}``; returns whether it was new.

        Adding a p-edge where the same pair already carries an n-edge is
        rejected: the pair would cancel out and only waste encoding cost.
        """
        self._check_supernode(a)
        self._check_supernode(b)
        edge = _canonical(a, b)
        if edge in self._n_edges:
            raise SummaryInvariantError(f"superedge {edge} already present with negative sign")
        if edge in self._p_edges:
            return False
        self._p_edges.add(edge)
        self._incident.setdefault(edge[0], set()).add((edge[1], POSITIVE))
        self._incident.setdefault(edge[1], set()).add((edge[0], POSITIVE))
        return True

    def add_n_edge(self, a: int, b: int) -> bool:
        """Add the negative superedge ``{a, b}``; returns whether it was new."""
        self._check_supernode(a)
        self._check_supernode(b)
        edge = _canonical(a, b)
        if edge in self._p_edges:
            raise SummaryInvariantError(f"superedge {edge} already present with positive sign")
        if edge in self._n_edges:
            return False
        self._n_edges.add(edge)
        self._incident.setdefault(edge[0], set()).add((edge[1], NEGATIVE))
        self._incident.setdefault(edge[1], set()).add((edge[0], NEGATIVE))
        return True

    def add_edge(self, a: int, b: int, sign: int) -> bool:
        """Add a superedge with an explicit sign (+1 or -1)."""
        if sign == POSITIVE:
            return self.add_p_edge(a, b)
        if sign == NEGATIVE:
            return self.add_n_edge(a, b)
        raise ValueError(f"sign must be +1 or -1, got {sign}")

    def remove_p_edge(self, a: int, b: int) -> bool:
        """Remove the positive superedge ``{a, b}`` if present."""
        edge = _canonical(a, b)
        if edge not in self._p_edges:
            return False
        self._p_edges.discard(edge)
        self._discard_incident(edge, POSITIVE)
        return True

    def remove_n_edge(self, a: int, b: int) -> bool:
        """Remove the negative superedge ``{a, b}`` if present."""
        edge = _canonical(a, b)
        if edge not in self._n_edges:
            return False
        self._n_edges.discard(edge)
        self._discard_incident(edge, NEGATIVE)
        return True

    def remove_edge(self, a: int, b: int, sign: int) -> bool:
        """Remove a superedge with an explicit sign (+1 or -1)."""
        if sign == POSITIVE:
            return self.remove_p_edge(a, b)
        if sign == NEGATIVE:
            return self.remove_n_edge(a, b)
        raise ValueError(f"sign must be +1 or -1, got {sign}")

    def _discard_incident(self, edge: SuperEdge, sign: int) -> None:
        a, b = edge
        incident_a = self._incident.get(a)
        if incident_a is not None:
            incident_a.discard((b, sign))
            if not incident_a:
                del self._incident[a]
        if a != b:
            incident_b = self._incident.get(b)
            if incident_b is not None:
                incident_b.discard((a, sign))
                if not incident_b:
                    del self._incident[b]

    # ------------------------------------------------------------------
    # Superedge queries
    # ------------------------------------------------------------------
    def has_p_edge(self, a: int, b: int) -> bool:
        """Whether the positive superedge ``{a, b}`` is present."""
        return _canonical(a, b) in self._p_edges

    def has_n_edge(self, a: int, b: int) -> bool:
        """Whether the negative superedge ``{a, b}`` is present."""
        return _canonical(a, b) in self._n_edges

    def p_edges(self) -> Iterator[SuperEdge]:
        """Iterate over positive superedges (canonical pairs)."""
        return iter(self._p_edges)

    def n_edges(self) -> Iterator[SuperEdge]:
        """Iterate over negative superedges (canonical pairs)."""
        return iter(self._n_edges)

    def incident_edges(self, supernode: int) -> List[Tuple[int, int]]:
        """Signed superedges incident to ``supernode`` as ``(other, sign)`` pairs."""
        return list(self._incident.get(supernode, ()))

    def degree(self, supernode: int) -> int:
        """Number of p/n superedges incident to ``supernode``."""
        return len(self._incident.get(supernode, ()))

    # ------------------------------------------------------------------
    # Cost (Eq. 1) and composition (Fig. 6)
    # ------------------------------------------------------------------
    @property
    def num_p_edges(self) -> int:
        """|P+|."""
        return len(self._p_edges)

    @property
    def num_n_edges(self) -> int:
        """|P-|."""
        return len(self._n_edges)

    @property
    def num_h_edges(self) -> int:
        """|H|."""
        return self.hierarchy.num_hierarchy_edges

    def cost(self) -> int:
        """Encoding cost Cost(G) = |P+| + |P-| + |H| (Eq. 1)."""
        return self.num_p_edges + self.num_n_edges + self.num_h_edges

    def relative_size(self, graph: Graph) -> float:
        """Relative output size Cost(G) / |E| (Eq. 10)."""
        if graph.num_edges == 0:
            raise SummaryInvariantError("relative size is undefined for an edgeless graph")
        return self.cost() / graph.num_edges

    def composition(self) -> Dict[str, int]:
        """Edge counts by type, as plotted in Fig. 6."""
        return {
            "p_edges": self.num_p_edges,
            "n_edges": self.num_n_edges,
            "h_edges": self.num_h_edges,
        }

    # ------------------------------------------------------------------
    # Decompression
    # ------------------------------------------------------------------
    def _covered_leaf_pairs(self, edge: SuperEdge) -> Iterator[Tuple[Subnode, Subnode]]:
        """Subnode pairs covered by one superedge, each yielded exactly once."""
        x, y = edge
        hierarchy = self.hierarchy
        if x == y:
            members = hierarchy.leaf_subnodes(x)
            for i in range(len(members)):
                for j in range(i + 1, len(members)):
                    u, v = members[i], members[j]
                    yield (u, v) if repr(u) <= repr(v) else (v, u)
            return
        leaves_x = hierarchy.leaf_subnodes(x)
        leaves_y = hierarchy.leaf_subnodes(y)
        seen: Set[Tuple[Subnode, Subnode]] = set()
        for u in leaves_x:
            for v in leaves_y:
                if u == v:
                    continue
                pair = (u, v) if repr(u) <= repr(v) else (v, u)
                if pair not in seen:
                    seen.add(pair)
                    yield pair

    def decompress(self) -> Graph:
        """Reconstruct the represented graph exactly.

        A subedge exists when the net coverage (p minus n) of the pair is
        strictly positive.
        """
        weights: Dict[Tuple[Subnode, Subnode], int] = {}
        for edge in self._p_edges:
            for pair in self._covered_leaf_pairs(edge):
                weights[pair] = weights.get(pair, 0) + 1
        for edge in self._n_edges:
            for pair in self._covered_leaf_pairs(edge):
                weights[pair] = weights.get(pair, 0) - 1
        graph = Graph(nodes=self.hierarchy.subnodes())
        for (u, v), weight in weights.items():
            if weight > 0:
                graph.add_edge(u, v)
        return graph

    def pair_weight(self, u: Subnode, v: Subnode) -> int:
        """Net coverage (p minus n) of the subnode pair ``(u, v)``.

        This is the quantity the model interpretation compares against
        zero; it is mostly used by tests and by the pruning invariants.
        """
        if u == v:
            raise ValueError("pair_weight() requires two distinct subnodes")
        ancestors_u = set(self.hierarchy.ancestors(self.hierarchy.leaf_of(u)))
        ancestors_v = set(self.hierarchy.ancestors(self.hierarchy.leaf_of(v)))
        weight = 0
        for edges, sign in ((self._p_edges, POSITIVE), (self._n_edges, NEGATIVE)):
            for x, y in edges:
                covers = (x in ancestors_u and y in ancestors_v) or (
                    x in ancestors_v and y in ancestors_u
                )
                if covers:
                    weight += sign
        return weight

    def neighbors(self, subnode: Subnode) -> Set[Subnode]:
        """One-hop neighbors of ``subnode`` by partial decompression (Alg. 4).

        Only the superedges incident to the ancestors of ``subnode`` are
        touched, so the query cost is proportional to the encoding local
        to the queried node rather than to the whole summary.
        """
        leaf = self.hierarchy.leaf_of(subnode)
        ancestors = self.hierarchy.ancestors(leaf)
        ancestor_set = set(ancestors)
        counts: Dict[Subnode, int] = {}
        processed: Set[Tuple[int, int, int]] = set()
        for ancestor in ancestors:
            for other, sign in self._incident.get(ancestor, ()):
                edge = _canonical(ancestor, other)
                key = (edge[0], edge[1], sign)
                if key in processed:
                    continue
                processed.add(key)
                x, y = edge
                targets: Set[Subnode] = set()
                if x in ancestor_set:
                    targets.update(self.hierarchy.leaf_subnodes(y))
                if y in ancestor_set:
                    targets.update(self.hierarchy.leaf_subnodes(x))
                targets.discard(subnode)
                for target in targets:
                    counts[target] = counts.get(target, 0) + sign
        return {node for node, weight in counts.items() if weight > 0}

    def neighbor_ids(self, node_id: int) -> List[int]:
        """Sorted leaf ids adjacent to leaf ``node_id`` by partial decompression.

        The id-native twin of :meth:`neighbors` (Alg. 4): walks the
        superedges incident to the leaf's ancestors and accumulates the
        net p-minus-n coverage per far leaf, but speaks dense ids end to
        end — leaf ids coincide with the node ids of an index built from
        the same graph, so no subnode labels are resolved.  This is the
        neighbor query the substrate-native kernels
        (:mod:`repro.algorithms.kernels`) run on when serving analytics
        off the summary.
        """
        hierarchy = self.hierarchy
        if not hierarchy.is_leaf(node_id):
            # repro-lint: disable=raise-taxonomy (documented mapping-style lookup contract)
            raise KeyError(f"unknown leaf supernode id {node_id}")
        ancestors = hierarchy.ancestors(node_id)
        ancestor_set = set(ancestors)
        counts: Dict[int, int] = {}
        processed: Set[Tuple[int, int, int]] = set()
        for ancestor in ancestors:
            for other, sign in self._incident.get(ancestor, ()):
                edge = _canonical(ancestor, other)
                key = (edge[0], edge[1], sign)
                if key in processed:
                    continue
                processed.add(key)
                x, y = edge
                targets: Set[int] = set()
                if x in ancestor_set:
                    targets.update(hierarchy.leaf_id_view(y))
                if y in ancestor_set:
                    targets.update(hierarchy.leaf_id_view(x))
                targets.discard(node_id)
                for target in targets:
                    counts[target] = counts.get(target, 0) + sign
        return sorted(node for node, weight in counts.items() if weight > 0)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self, graph: Graph) -> None:
        """Raise :class:`SummaryInvariantError` unless the summary represents ``graph`` exactly."""
        summary_nodes = set(self.hierarchy.subnodes())
        graph_nodes = set(graph.nodes())
        if summary_nodes != graph_nodes:
            missing = graph_nodes - summary_nodes
            extra = summary_nodes - graph_nodes
            raise SummaryInvariantError(
                f"subnode mismatch: missing={sorted(map(repr, missing))[:5]} "
                f"extra={sorted(map(repr, extra))[:5]}"
            )
        reconstructed = self.decompress()
        original_edges = graph.edge_set()
        rebuilt_edges = reconstructed.edge_set()
        if original_edges != rebuilt_edges:
            lost = original_edges - rebuilt_edges
            spurious = rebuilt_edges - original_edges
            raise SummaryInvariantError(
                f"summary is not lossless: {len(lost)} edges lost "
                f"(e.g. {sorted(map(repr, lost))[:3]}), {len(spurious)} spurious "
                f"(e.g. {sorted(map(repr, spurious))[:3]})"
            )

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def copy(self) -> "HierarchicalSummary":
        """A deep copy of the summary."""
        clone = HierarchicalSummary(self.hierarchy.copy())
        clone._p_edges = set(self._p_edges)
        clone._n_edges = set(self._n_edges)
        clone._incident = {node: set(edges) for node, edges in self._incident.items()}
        return clone

    def __repr__(self) -> str:
        return (
            f"HierarchicalSummary(p_edges={self.num_p_edges}, n_edges={self.num_n_edges}, "
            f"h_edges={self.num_h_edges}, cost={self.cost()})"
        )
