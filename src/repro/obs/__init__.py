"""Unified observability: metrics registry, span tracing, exporters.

One import surface for the telemetry substrate:

* :class:`MetricsRegistry` — thread-safe labeled counters / gauges /
  fixed-bucket histograms with plain-data :meth:`snapshot()
  <repro.obs.metrics.MetricsRegistry.snapshot>` and an
  order-independent :meth:`merge()
  <repro.obs.metrics.MetricsRegistry.merge>` for per-shard aggregation;
* :class:`Tracer` — nested spans on ``perf_counter`` offsets (no
  wall-clock, no RNG), with JSON-lines and Chrome trace-event writers;
* :func:`render_prometheus` / :func:`render_json` — exporters over any
  snapshot, plus :func:`parse_prometheus_text` for validation;
* :class:`~repro.utils.timing.Stopwatch` — the canonical monotonic
  interval timer, re-exported here as part of the observability API.

Everything has a null-object disabled path (:data:`NULL_METRICS`,
:data:`NULL_TRACER`), and nothing in this package can perturb a
summary: telemetry observes runs, it never participates in them.
"""

from __future__ import annotations

from repro.obs.export import (
    parse_prometheus_text,
    render_json,
    render_prometheus,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_METRICS,
    NullMetrics,
    ingest_stats,
)
from repro.obs.trace import NULL_TRACER, NullTracer, Span, Tracer
from repro.utils.timing import Stopwatch, time_call

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_TRACER",
    "NullMetrics",
    "NullTracer",
    "Span",
    "Stopwatch",
    "Tracer",
    "ingest_stats",
    "parse_prometheus_text",
    "render_json",
    "render_prometheus",
    "time_call",
]
