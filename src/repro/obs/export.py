"""Renderers over metrics snapshots: Prometheus text exposition and JSON.

Both renderers consume the plain-data shape produced by
:meth:`repro.obs.metrics.MetricsRegistry.snapshot`, so anything that can
produce a snapshot — a live registry, a merged set of per-shard
snapshots, a file written by ``--metrics-file`` — can be exported
without touching the registry again.

:func:`parse_prometheus_text` is a small validating parser for the text
exposition format; CI uses it to prove the rendered output round-trips,
and it doubles as the loader for the ``repro-slugger metrics``
pretty-printer when handed a ``.prom`` file.
"""

from __future__ import annotations

import json
import math
import re
from typing import Any, Dict, List, Tuple

from repro.exceptions import TelemetryError

__all__ = [
    "parse_prometheus_text",
    "render_json",
    "render_prometheus",
]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)\s*$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _sanitize(name: str) -> str:
    name = _NAME_RE.sub("_", name)
    if not name or name[0].isdigit():
        name = "_" + name
    return name


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _format_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    parts = [f'{_sanitize(k)}="{_escape_label(str(v))}"'
             for k, v in sorted(labels.items())]
    return "{" + ",".join(parts) + "}"


def render_prometheus(snapshot: Dict[str, Any]) -> str:
    """Render a snapshot in Prometheus text exposition format (0.0.4).

    Counters/gauges emit one sample per label set; histograms emit
    cumulative ``_bucket{le=...}`` samples (including ``+Inf``) plus
    ``_sum`` and ``_count``.  No timestamps are attached — scrape time
    belongs to the scraper, and the renderer stays wall-clock free.
    """
    lines: List[str] = []
    for name in sorted(snapshot):
        entry = snapshot[name]
        metric = _sanitize(name)
        kind = entry["type"]
        if entry.get("help"):
            lines.append(f"# HELP {metric} {entry['help']}")
        lines.append(f"# TYPE {metric} {kind}")
        for record in entry["series"]:
            labels = record.get("labels", {})
            if kind == "histogram":
                running = 0
                for bound, count in zip(entry["buckets"], record["counts"]):
                    running += count
                    bucket_labels = dict(labels)
                    bucket_labels["le"] = _format_value(float(bound))
                    lines.append(f"{metric}_bucket{_format_labels(bucket_labels)}"
                                 f" {running}")
                running += record["counts"][len(entry["buckets"])]
                inf_labels = dict(labels)
                inf_labels["le"] = "+Inf"
                lines.append(f"{metric}_bucket{_format_labels(inf_labels)}"
                             f" {running}")
                lines.append(f"{metric}_sum{_format_labels(labels)}"
                             f" {_format_value(record['sum'])}")
                lines.append(f"{metric}_count{_format_labels(labels)}"
                             f" {record['count']}")
            else:
                lines.append(f"{metric}{_format_labels(labels)}"
                             f" {_format_value(record['value'])}")
    return "\n".join(lines) + ("\n" if lines else "")


def render_json(snapshot: Dict[str, Any], indent: int = 2) -> str:
    """Render a snapshot as deterministic (sorted-key) JSON."""
    return json.dumps(snapshot, indent=indent, sort_keys=True)


def parse_prometheus_text(text: str) -> List[Tuple[str, Dict[str, str], float]]:
    """Parse exposition text into ``(name, labels, value)`` samples.

    Validates structure line by line and raises
    :class:`~repro.exceptions.TelemetryError` on the first malformed
    line.  Supports the subset :func:`render_prometheus` emits (which is
    the subset Prometheus itself requires): ``# HELP``/``# TYPE``
    comments, quoted label values with escapes, ``+Inf``/``-Inf``/
    numeric sample values.
    """
    samples: List[Tuple[str, Dict[str, str], float]] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise TelemetryError(
                f"malformed exposition line {lineno}: {raw!r}"
            )
        labels: Dict[str, str] = {}
        body = match.group("labels")
        if body:
            for label in _LABEL_RE.finditer(body):
                labels[label.group(1)] = (
                    label.group(2).replace("\\n", "\n")
                    .replace('\\"', '"').replace("\\\\", "\\")
                )
            if not labels:
                raise TelemetryError(
                    f"malformed label set on line {lineno}: {raw!r}"
                )
        value_text = match.group("value")
        try:
            if value_text == "+Inf":
                value = math.inf
            elif value_text == "-Inf":
                value = -math.inf
            else:
                value = float(value_text)
        except ValueError as exc:
            raise TelemetryError(
                f"malformed sample value on line {lineno}: {raw!r}"
            ) from exc
        samples.append((match.group("name"), labels, value))
    return samples
