"""A thread-safe, mergeable metrics registry: counters, gauges, histograms.

This is the aggregation substrate of the telemetry layer.  A
:class:`MetricsRegistry` holds labeled **counters** (monotone sums),
**gauges** (last-set values), and fixed-bucket **histograms**
(cumulative ``le`` bucket counts plus sum/count), exactly mirroring the
Prometheus data model so :mod:`repro.obs.export` can render any
snapshot without translation.

Two properties matter more than feature count:

* **Snapshots are plain data.**  :meth:`MetricsRegistry.snapshot`
  returns nested dicts/lists of JSON-serializable scalars — safe to
  pickle across a fork boundary, write to disk, or diff in tests.
* **Merge is order-independent.**  :meth:`MetricsRegistry.merge` folds
  a snapshot into the registry by *summation* (counters and histogram
  buckets add; gauges add under the documented per-shard convention),
  so per-shard registries shipped back through
  :class:`~repro.engine.execution.ProcessShardExecutor` results
  aggregate to the same totals regardless of arrival order.

The disabled path is a null object: :data:`NULL_METRICS` hands out one
shared instrument whose ``inc``/``set``/``observe`` are no-ops, so hot
loops pay a single attribute lookup and an empty call when telemetry is
off.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import TelemetryError

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
    "NullMetrics",
    "ingest_stats",
]

#: Default histogram bucket upper bounds (seconds): sub-millisecond to
#: minutes, roughly geometric.  A value ``v`` lands in every bucket with
#: ``v <= le`` (cumulative, Prometheus semantics).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
)

LabelPairs = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> LabelPairs:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing sum for one label set."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise TelemetryError("counters only go up; use a gauge for deltas")
        with self._lock:
            self.value += amount


class Gauge:
    """A settable value for one label set.

    Under :meth:`MetricsRegistry.merge` gauges **add**: the convention
    is that each shard/process reports its own share (queue depth,
    resident entries), so the merged value is the fleet total.
    """

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self.value = 0.0

    def set(self, value: float) -> None:
        """Set the gauge to ``value``."""
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be negative) to the gauge."""
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount`` from the gauge."""
        self.inc(-amount)


class Histogram:
    """Fixed-bucket cumulative histogram for one label set.

    ``bounds`` are upper edges; an observation ``v`` increments every
    bucket with ``v <= bound`` plus the implicit ``+Inf`` bucket (the
    total ``count``).  Stored counts are per-bucket (non-cumulative);
    the exporter cumulates at render time.
    """

    __slots__ = ("_lock", "bounds", "counts", "sum", "count")

    def __init__(self, bounds: Sequence[float], lock: threading.Lock) -> None:
        self._lock = lock
        self.bounds = tuple(float(b) for b in bounds)
        if list(self.bounds) != sorted(set(self.bounds)):
            raise TelemetryError(
                f"histogram buckets must be strictly increasing: {bounds!r}"
            )
        # One slot per finite bound plus the +Inf overflow slot.
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        with self._lock:
            self.sum += value
            self.count += 1
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    self.counts[i] += 1
                    return
            self.counts[-1] += 1

    def cumulative_counts(self) -> List[int]:
        """Per-``le`` cumulative counts (Prometheus ``_bucket`` values)."""
        out: List[int] = []
        running = 0
        for c in self.counts:
            running += c
            out.append(running)
        return out


class MetricsRegistry:
    """A named collection of labeled counters, gauges, and histograms.

    One lock guards the whole registry; individual instrument updates
    take it briefly.  Instruments are created on first access and cached
    by ``(name, sorted labels)``, so hot paths should hold the returned
    instrument rather than re-resolving it per event.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # name -> {"type": ..., "help": ..., "buckets": ..., "series": {labelkey: instrument}}
        self._families: Dict[str, Dict[str, Any]] = {}

    #: Distinguishes live registries from :data:`NULL_METRICS` without
    #: isinstance checks in hot paths.
    enabled = True

    def _family(self, name: str, kind: str, help: str,
                buckets: Optional[Sequence[float]] = None) -> Dict[str, Any]:
        family = self._families.get(name)
        if family is None:
            family = {
                "type": kind,
                "help": help,
                "series": {},
            }
            if kind == "histogram":
                family["buckets"] = tuple(float(b) for b in
                                          (buckets if buckets is not None
                                           else DEFAULT_BUCKETS))
            self._families[name] = family
        elif family["type"] != kind:
            raise TelemetryError(
                f"metric {name!r} is a {family['type']}, requested as {kind}"
            )
        elif kind == "histogram" and buckets is not None and \
                tuple(float(b) for b in buckets) != family["buckets"]:
            raise TelemetryError(
                f"histogram {name!r} re-declared with different buckets"
            )
        return family

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        """The counter ``name`` for ``labels`` (created on first use)."""
        key = _label_key(labels)
        with self._lock:
            family = self._family(name, "counter", help)
            series = family["series"]
            instrument = series.get(key)
            if instrument is None:
                instrument = series[key] = Counter(self._lock)
            return instrument

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        """The gauge ``name`` for ``labels`` (created on first use)."""
        key = _label_key(labels)
        with self._lock:
            family = self._family(name, "gauge", help)
            series = family["series"]
            instrument = series.get(key)
            if instrument is None:
                instrument = series[key] = Gauge(self._lock)
            return instrument

    def histogram(self, name: str, help: str = "",
                  buckets: Optional[Sequence[float]] = None,
                  **labels: str) -> Histogram:
        """The histogram ``name`` for ``labels`` (created on first use)."""
        key = _label_key(labels)
        with self._lock:
            family = self._family(name, "histogram", help, buckets)
            series = family["series"]
            instrument = series.get(key)
            if instrument is None:
                instrument = series[key] = Histogram(family["buckets"], self._lock)
            return instrument

    def snapshot(self) -> Dict[str, Any]:
        """A plain-data, JSON-serializable copy of every series.

        Shape::

            {name: {"type": "counter"|"gauge"|"histogram",
                    "help": str,
                    "buckets": [..],            # histograms only
                    "series": [{"labels": {..}, "value": float}          # counter/gauge
                               {"labels": {..}, "counts": [..],          # histogram
                                "sum": float, "count": int}, ...]}}

        Family names and series label sets are emitted in sorted order,
        so equal registries produce equal snapshots byte for byte.
        """
        with self._lock:
            out: Dict[str, Any] = {}
            for name in sorted(self._families):
                family = self._families[name]
                entry: Dict[str, Any] = {
                    "type": family["type"],
                    "help": family["help"],
                    "series": [],
                }
                if family["type"] == "histogram":
                    entry["buckets"] = list(family["buckets"])
                for key in sorted(family["series"]):
                    instrument = family["series"][key]
                    record: Dict[str, Any] = {"labels": dict(key)}
                    if family["type"] == "histogram":
                        record["counts"] = list(instrument.counts)
                        record["sum"] = instrument.sum
                        record["count"] = instrument.count
                    else:
                        record["value"] = instrument.value
                    entry["series"].append(record)
                out[name] = entry
            return out

    def merge(self, snapshot: Dict[str, Any]) -> "MetricsRegistry":
        """Fold a :meth:`snapshot` into this registry by summation.

        Counters and histogram bucket counts/sums add; gauges add (the
        per-shard-share convention, see :class:`Gauge`).  Merging the
        same set of snapshots in any order yields identical registries.
        Returns ``self`` for chaining.
        """
        for name in sorted(snapshot):
            entry = snapshot[name]
            kind = entry["type"]
            for record in entry["series"]:
                labels = record["labels"]
                if kind == "counter":
                    self.counter(name, entry.get("help", ""), **labels).inc(
                        record["value"])
                elif kind == "gauge":
                    self.gauge(name, entry.get("help", ""), **labels).inc(
                        record["value"])
                elif kind == "histogram":
                    hist = self.histogram(name, entry.get("help", ""),
                                          buckets=entry["buckets"], **labels)
                    if len(record["counts"]) != len(hist.counts):
                        raise TelemetryError(
                            f"histogram {name!r} merge with mismatched buckets"
                        )
                    with self._lock:
                        for i, c in enumerate(record["counts"]):
                            hist.counts[i] += c
                        hist.sum += record["sum"]
                        hist.count += record["count"]
                else:
                    raise TelemetryError(
                        f"unknown metric type {kind!r} for {name!r}"
                    )
        return self


class _NullInstrument:
    """Shared no-op stand-in for every instrument kind."""

    __slots__ = ()

    value = 0.0
    sum = 0.0
    count = 0
    bounds: Tuple[float, ...] = ()
    counts: Tuple[int, ...] = ()

    def inc(self, amount: float = 1.0) -> None:
        """No-op."""

    def dec(self, amount: float = 1.0) -> None:
        """No-op."""

    def set(self, value: float) -> None:
        """No-op."""

    def observe(self, value: float) -> None:
        """No-op."""


class NullMetrics:
    """Disabled-telemetry registry: every instrument is a shared no-op.

    ``snapshot()`` is empty and ``merge()`` discards its input, so code
    can thread one ``metrics`` object unconditionally and never branch
    on whether telemetry is on.
    """

    __slots__ = ()

    enabled = False
    _instrument = _NullInstrument()

    def counter(self, name: str, help: str = "", **labels: str) -> _NullInstrument:
        """The shared no-op instrument."""
        return self._instrument

    def gauge(self, name: str, help: str = "", **labels: str) -> _NullInstrument:
        """The shared no-op instrument."""
        return self._instrument

    def histogram(self, name: str, help: str = "",
                  buckets: Optional[Sequence[float]] = None,
                  **labels: str) -> _NullInstrument:
        """The shared no-op instrument."""
        return self._instrument

    def snapshot(self) -> Dict[str, Any]:
        """Always empty."""
        return {}

    def merge(self, snapshot: Dict[str, Any]) -> "NullMetrics":
        """Discard ``snapshot``; returns ``self``."""
        return self


#: Process-wide disabled-telemetry registry (stateless, safe to share).
NULL_METRICS = NullMetrics()


def ingest_stats(registry: MetricsRegistry, stats: Dict[str, Any],
                 prefix: str) -> None:
    """Flatten a nested ``stats()`` dict into gauges on ``registry``.

    Numeric leaves become gauges named ``<prefix>_<path>`` (path
    components joined with ``_``); booleans count as 0/1; string leaves
    become a ``<prefix>_<path>_info`` gauge of value 1 carrying the
    string as a ``value`` label (the Prometheus info-metric idiom);
    other leaf types are skipped.  This is how the legacy
    ``SummaryService`` / ``GraphStore`` / ``SummaryCache`` ``stats()``
    dicts federate into one exportable snapshot.
    """
    items: Iterable[Tuple[str, Any]] = sorted(stats.items())
    for key, value in items:
        name = f"{prefix}_{key}"
        if isinstance(value, dict):
            ingest_stats(registry, value, name)
        elif isinstance(value, bool):
            registry.gauge(name).set(1.0 if value else 0.0)
        elif isinstance(value, (int, float)):
            registry.gauge(name).set(float(value))
        elif isinstance(value, str):
            registry.gauge(f"{name}_info", value=value).set(1.0)
