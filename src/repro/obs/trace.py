"""Nested span tracing on ``perf_counter`` offsets, with trace writers.

A :class:`Tracer` records **spans**: named intervals measured with
:func:`time.perf_counter` against an epoch captured when the tracer was
created.  Design constraints, in order:

* **Determinism-clean.**  No wall-clock reads (``time.time``), no RNG —
  span ids come from a monotonic counter, so repro-lint stays clean and
  a traced run produces a summary bit-identical to an untraced one.
* **Fork-friendly.**  ``perf_counter`` is ``CLOCK_MONOTONIC`` on Linux,
  a *system-wide* clock, so a forked shard worker can measure raw
  ``(perf_start, duration)`` pairs and ship them back as plain tuples;
  the parent converts them against its own epoch via :meth:`Tracer.add`
  and they land on the same timeline as parent spans.
* **Cheap when off.**  :data:`NULL_TRACER` spans still measure their
  own duration (two ``perf_counter`` calls — they are the pipeline's
  single measurement source for ``phase_seconds``) but store nothing.

Writers: :meth:`Tracer.write_jsonl` (one JSON object per span) and
:meth:`Tracer.write_chrome_trace` (Chrome trace-event format, loadable
in ``chrome://tracing`` and Perfetto).
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Dict, List, Optional

__all__ = ["NULL_TRACER", "NullTracer", "Span", "Tracer"]


class Span:
    """One named interval; used as a context manager.

    ``start`` is seconds since the tracer's epoch; ``duration`` is set
    on exit (or by :meth:`close`).  ``attrs`` are JSON-serializable
    annotations; ``lane`` names the logical track (e.g. ``"main"``,
    ``"shard-3"``) the span renders on in a trace viewer.
    """

    __slots__ = ("span_id", "parent_id", "name", "lane", "start",
                 "duration", "attrs", "_tracer", "_t0")

    def __init__(self, tracer: "Tracer", span_id: int, parent_id: Optional[int],
                 name: str, lane: str, start: float,
                 attrs: Dict[str, Any]) -> None:
        self._tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.lane = lane
        self.start = start
        self.duration = 0.0
        self.attrs = attrs
        self._t0 = 0.0

    def annotate(self, **attrs: Any) -> None:
        """Attach extra attributes to the span."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        """Finish the span: fix its duration and pop the nesting stack."""
        self.duration = time.perf_counter() - self._t0
        self._tracer._finish(self)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form (the JSON-lines record)."""
        return {
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "lane": self.lane,
            "start": self.start,
            "duration": self.duration,
            "attrs": self.attrs,
        }


class Tracer:
    """Collects nested spans on one ``perf_counter`` timeline.

    Nesting is tracked per thread: a span opened while another is active
    on the same thread records it as its parent.  All mutation happens
    under one lock; span ids are issued from a monotonic counter so
    traces contain no randomness.
    """

    def __init__(self) -> None:
        self.epoch = time.perf_counter()
        self.spans: List[Span] = []
        self._lock = threading.Lock()
        self._next_id = 0
        self._stacks = threading.local()

    #: Distinguishes live tracers from :data:`NULL_TRACER` cheaply.
    enabled = True

    def _stack(self) -> List[int]:
        stack = getattr(self._stacks, "stack", None)
        if stack is None:
            stack = self._stacks.stack = []
        return stack

    def span(self, name: str, lane: str = "main", **attrs: Any) -> Span:
        """Open a span; use as ``with tracer.span("decide") as sp:``."""
        stack = self._stack()
        parent = stack[-1] if stack else None
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        now = time.perf_counter()
        span = Span(self, span_id, parent, name, lane, now - self.epoch, attrs)
        span._t0 = now
        stack.append(span_id)
        return span

    def _finish(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] == span.span_id:
            stack.pop()
        with self._lock:
            self.spans.append(span)

    def add(self, name: str, perf_start: float, duration: float,
            lane: str = "main", parent_id: Optional[int] = None,
            **attrs: Any) -> Span:
        """Record an externally measured span.

        ``perf_start`` is a raw ``perf_counter()`` reading — e.g. one a
        forked shard worker took and shipped back in its result tuple —
        converted here against this tracer's epoch, so worker intervals
        land on the parent timeline.
        """
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        span = Span(self, span_id, parent_id, name, lane,
                    perf_start - self.epoch, attrs)
        span.duration = duration
        with self._lock:
            self.spans.append(span)
        return span

    def sorted_spans(self) -> List[Span]:
        """Spans ordered by id (creation order) — the export order."""
        with self._lock:
            return sorted(self.spans, key=lambda s: s.span_id)

    def write_jsonl(self, path: str) -> None:
        """Write one JSON object per span, in id order."""
        with open(path, "w", encoding="utf-8") as handle:
            for span in self.sorted_spans():
                handle.write(json.dumps(span.to_dict(), sort_keys=True))
                handle.write("\n")

    def chrome_trace_events(self) -> List[Dict[str, Any]]:
        """The Chrome trace-event list (``ph: "X"`` complete events).

        Timestamps and durations are microseconds from the tracer epoch.
        Lanes map to ``tid``s in sorted-name order, with ``M`` metadata
        events naming each thread track; everything shares ``pid`` 0.
        """
        spans = self.sorted_spans()
        lanes = sorted({span.lane for span in spans})
        tids = {lane: i for i, lane in enumerate(lanes)}
        events: List[Dict[str, Any]] = [
            {
                "ph": "M",
                "pid": 0,
                "tid": tids[lane],
                "name": "thread_name",
                "args": {"name": lane},
            }
            for lane in lanes
        ]
        for span in spans:
            args = dict(span.attrs)
            args["span_id"] = span.span_id
            if span.parent_id is not None:
                args["parent_id"] = span.parent_id
            events.append({
                "ph": "X",
                "pid": 0,
                "tid": tids[span.lane],
                "name": span.name,
                "ts": span.start * 1e6,
                "dur": span.duration * 1e6,
                "args": args,
            })
        return events

    def write_chrome_trace(self, path: str) -> None:
        """Write the trace in Chrome trace-event JSON format."""
        document = {
            "traceEvents": self.chrome_trace_events(),
            "displayTimeUnit": "ms",
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle, sort_keys=True)


class _NullSpan:
    """Timed-but-unstored span for the disabled path.

    It still measures its own duration — pipeline phases read
    ``span.duration`` as the single timing source whether tracing is on
    or off — but never touches a tracer or allocates attribute dicts.
    """

    __slots__ = ("duration", "_t0")

    span_id = -1
    parent_id = None
    name = ""
    lane = ""
    start = 0.0

    def __init__(self) -> None:
        self.duration = 0.0
        self._t0 = 0.0

    def annotate(self, **attrs: Any) -> None:
        """No-op."""

    def __enter__(self) -> "_NullSpan":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.duration = time.perf_counter() - self._t0


class NullTracer:
    """Disabled-tracing stand-in; spans time themselves, nothing is kept."""

    __slots__ = ()

    enabled = False
    epoch = 0.0

    def span(self, name: str, lane: str = "main", **attrs: Any) -> _NullSpan:
        """A fresh self-timing, unrecorded span."""
        return _NullSpan()

    def add(self, name: str, perf_start: float, duration: float,
            lane: str = "main", parent_id: Optional[int] = None,
            **attrs: Any) -> None:
        """No-op."""

    def sorted_spans(self) -> List[Span]:
        """Always empty."""
        return []


#: Process-wide disabled tracer (stateless, safe to share).
NULL_TRACER = NullTracer()
