"""Service-oriented engine API: sessions, jobs, and warm-pool serving.

Where :mod:`repro.engine` answers "run this method once", this package
answers "serve many summarization requests": a long-lived
:class:`SummaryService` owns an interning :class:`GraphStore` (one
substrate build per graph), warm forked worker pools shared across
requests, a bounded FIFO queue with configurable in-flight concurrency,
and hands out :class:`SummaryJob` futures with progress events and
cooperative cancellation.  Both sync (``submit`` / ``result``) and
``asyncio`` (``await service.summarize(...)``) entry points are
provided; ``engine.run`` and the comparison harness are thin shims over
:func:`default_service`.

>>> from repro.service import SummaryService
>>> with SummaryService(max_inflight=2) as service:     # doctest: +SKIP
...     jobs = [service.submit(method="slugger", graph=g, seed=s,
...                            options={"iterations": 10})
...             for s in range(8)]
...     results = [job.result() for job in jobs]

For a fixed seed, results are bit-identical to one-shot ``engine.run``
calls — under any concurrency, in thread or process mode.
"""

from repro.service.jobs import JobState, ProgressEvent, SummaryJob
from repro.service.request import SummaryRequest
from repro.service.service import (
    SummaryService,
    default_service,
    shutdown_default_service,
)
from repro.service.store import GraphHandle, GraphStore

__all__ = [
    "GraphHandle",
    "GraphStore",
    "JobState",
    "ProgressEvent",
    "SummaryJob",
    "SummaryRequest",
    "SummaryService",
    "default_service",
    "shutdown_default_service",
]
