"""Future-like job handles with progress streams and cooperative cancel.

A :class:`SummaryJob` is what :meth:`SummaryService.submit
<repro.service.service.SummaryService.submit>` returns immediately: a
handle that moves through ``QUEUED → RUNNING → DONE/FAILED/CANCELLED``,
collects :class:`ProgressEvent` records fed by the pipeline's
per-iteration hooks, and hands the :class:`~repro.engine.base.EngineResult`
(or the failure) to whoever calls :meth:`SummaryJob.result`.

State transitions are guarded by a lock and strictly monotonic — a job
settles exactly once and never leaves a terminal state, and progress
sequence numbers increase strictly, which the test suite pins.
Cancellation is cooperative: a run that settles before its next
checkpoint wins the race and the job reports the actual outcome (see
:meth:`SummaryJob.cancel`).
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.engine.base import EngineResult
from repro.exceptions import JobCancelled, JobTimeoutError
from repro.service.request import SummaryRequest

__all__ = ["JobState", "ProgressEvent", "SummaryJob"]


class JobState(enum.Enum):
    """Lifecycle of a submitted request."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        """Whether the state is final (result/error/cancellation settled)."""
        return self in (JobState.DONE, JobState.FAILED, JobState.CANCELLED)


@dataclass(frozen=True)
class ProgressEvent:
    """One progress observation of a running job.

    ``seq`` increases strictly within a job (0, 1, 2, ...); ``stage`` is
    the emitting hook's label (``"queued"``, ``"started"``, the
    pipeline's ``"iteration"`` / ``"prune"``, and finally one terminal
    stage matching the job state).  ``payload`` carries the stage's
    counters (iteration number, merges, cost, ...), exactly as emitted.
    """

    seq: int
    job_id: int
    method: str
    stage: str
    payload: Dict[str, Any] = field(default_factory=dict)


ProgressListener = Callable[[ProgressEvent], None]


class SummaryJob:
    """Handle for one queued/running summarization request."""

    def __init__(self, job_id: int, request: SummaryRequest) -> None:
        self.id = job_id
        self.request = request
        # Re-entrant: backlog replay holds the lock while invoking the
        # listener, and listeners may legitimately call back into the
        # job (cancel(), state, ...).
        self._lock = threading.RLock()
        self._done = threading.Event()
        self._cancel = threading.Event()
        self._state = JobState.QUEUED
        self._result: Optional[EngineResult] = None
        self._error: Optional[BaseException] = None
        self._events: List[ProgressEvent] = []
        self._listeners: List[ProgressListener] = []
        self._done_callbacks: List[Callable[["SummaryJob"], None]] = []
        self._seq = 0
        self._record("queued")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def state(self) -> JobState:
        """Current lifecycle state."""
        with self._lock:
            return self._state

    @property
    def cancel_event(self) -> threading.Event:
        """The cancel token the run's :class:`RunControl` checks."""
        return self._cancel

    def done(self) -> bool:
        """Whether the job reached a terminal state."""
        return self._done.is_set()

    def cancelled(self) -> bool:
        """Whether cancellation was requested (not necessarily settled)."""
        return self._cancel.is_set()

    def events(self) -> List[ProgressEvent]:
        """Snapshot of the progress events recorded so far, in order."""
        with self._lock:
            return list(self._events)

    def add_progress_listener(self, listener: ProgressListener) -> None:
        """Stream progress events to ``listener``.

        Past events are replayed synchronously first, so late subscribers
        see the full, gapless sequence; later events arrive from the
        thread executing the job.  Registration and backlog replay happen
        under the job lock, so a concurrently recorded event cannot be
        delivered before (or interleaved with) the replayed backlog —
        the listener always observes strictly increasing ``seq`` values.
        Keep listeners cheap: the replay briefly blocks the recording
        thread.
        """
        with self._lock:
            backlog = list(self._events)
            for event in backlog:
                try:
                    listener(event)
                except Exception:
                    # Same policy as live delivery (_record): a faulty
                    # listener is dropped on the floor, never the job.
                    pass
            self._listeners.append(listener)

    def add_done_callback(self, callback: Callable[["SummaryJob"], None]) -> None:
        """Invoke ``callback(job)`` once the job settles.

        Runs on the settling thread; if the job already settled the
        callback fires immediately on the calling thread.  Used by the
        service's asyncio bridge.
        """
        with self._lock:
            if not self._state.terminal:
                self._done_callbacks.append(callback)
                return
        callback(self)

    # ------------------------------------------------------------------
    # Waiting
    # ------------------------------------------------------------------
    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job settles; ``False`` on timeout."""
        return self._done.wait(timeout)

    def result(self, timeout: Optional[float] = None) -> EngineResult:
        """The job's :class:`~repro.engine.base.EngineResult`.

        Blocks until the job settles.  Raises
        :class:`~repro.exceptions.JobCancelled` for cancelled jobs, the
        original exception for failed jobs, and
        :class:`~repro.exceptions.JobTimeoutError` (a
        :class:`TimeoutError`) when ``timeout`` elapses first.
        """
        if not self._done.wait(timeout):
            raise JobTimeoutError(
                f"job {self.id} ({self.request.describe()}) still "
                f"{self.state.value} after {timeout}s"
            )
        with self._lock:
            if self._state is JobState.DONE:
                assert self._result is not None
                return self._result
            if self._state is JobState.CANCELLED:
                raise JobCancelled(f"job {self.id} was cancelled")
            assert self._error is not None
            raise self._error

    def exception(self) -> Optional[BaseException]:
        """The failure of a FAILED job, else ``None`` (settled jobs only)."""
        with self._lock:
            return self._error

    # ------------------------------------------------------------------
    # Cancellation
    # ------------------------------------------------------------------
    def cancel(self) -> bool:
        """Request cancellation; ``True`` unless the job already settled.

        Cancellation is a *request*, not a guarantee: a queued job is
        dropped before it starts; a running job stops at its next
        between-iteration checkpoint.  If the run settles first — it
        completed before the next checkpoint, or it executes inside a
        process-mode pool worker, which has no mid-run checkpoints — the
        job still reports its actual outcome (``DONE``/``FAILED``) even
        though ``cancelled()`` stays ``True``.  Cancelling a settled job
        is a no-op returning ``False``.
        """
        with self._lock:
            if self._state.terminal:
                return False
            self._cancel.set()
            return True

    def _cancel_if_queued(self) -> bool:
        """Atomically cancel-and-settle the job iff it has not started.

        The service's shutdown/submit rescue paths use this so a job a
        dispatcher already picked up is left to run instead of having a
        cancel token injected mid-flight.  Check and settle share one
        critical section, so two racing rescuers cannot both settle the
        job.
        """
        with self._lock:
            if self._state is not JobState.QUEUED:
                return False
            self._cancel.set()
            self._settle_locked(JobState.CANCELLED)
        self._record("cancelled")
        self._notify_done()
        return True

    # ------------------------------------------------------------------
    # Service-side transitions (not part of the public API)
    # ------------------------------------------------------------------
    def _record(self, stage: str, **payload: Any) -> None:
        with self._lock:
            event = ProgressEvent(
                seq=self._seq, job_id=self.id,
                method=self.request.method, stage=stage, payload=payload,
            )
            self._seq += 1
            self._events.append(event)
            listeners = list(self._listeners)
        for listener in listeners:
            try:
                listener(event)
            except Exception:
                # A faulty listener (closed pipe, dead event loop, ...)
                # must not poison the job's settle path or kill the
                # dispatcher lane executing it.
                pass

    def _on_run_progress(self, event: Dict[str, Any]) -> None:
        """RunControl progress callback: record a pipeline event."""
        payload = dict(event)
        stage = payload.pop("stage", "progress")
        self._record(stage, **payload)

    def _try_start(self) -> bool:
        """QUEUED → RUNNING; ``False`` when cancelled (job settles here)."""
        with self._lock:
            if self._state is not JobState.QUEUED:
                return False
            if not self._cancel.is_set():
                self._state = JobState.RUNNING
                started = True
            else:
                started = False
        if not started:
            self._finish_cancelled()
            return False
        self._record("started")
        return True

    def _finish(self, result: EngineResult) -> None:
        with self._lock:
            self._result = result
            self._settle_locked(JobState.DONE)
        self._record("done", cost=result.cost(),
                     runtime_seconds=result.runtime_seconds)
        self._notify_done()

    def _fail(self, error: BaseException) -> None:
        if isinstance(error, JobCancelled):
            self._finish_cancelled()
            return
        with self._lock:
            self._error = error
            self._settle_locked(JobState.FAILED)
        self._record("failed", error=repr(error))
        self._notify_done()

    def _finish_cancelled(self) -> None:
        with self._lock:
            self._settle_locked(JobState.CANCELLED)
        self._record("cancelled")
        self._notify_done()

    def _settle_locked(self, state: JobState) -> None:
        assert not self._state.terminal, f"job {self.id} settled twice"
        self._state = state
        self._done.set()

    def _notify_done(self) -> None:
        with self._lock:
            callbacks, self._done_callbacks = self._done_callbacks, []
        for callback in callbacks:
            try:
                callback(self)
            except Exception:
                # See _record: callbacks must not break the settling thread.
                pass

    def __repr__(self) -> str:
        return (f"SummaryJob(id={self.id}, state={self.state.value}, "
                f"request={self.request.describe()!r})")
