"""The one validated, serializable description of a summarization request.

A :class:`SummaryRequest` bundles everything a service needs to run one
summarization: the registry method name, the graph (either inline or as
a name resolved against the service's graph store), the seed, the
method-specific options (``iterations``, ``epsilon``, ...), and the
:class:`~repro.engine.execution.ExecutionConfig`.  It is validated at
construction — a malformed request fails at submit time, not minutes
later on a worker — and everything except the inline graph round-trips
through :meth:`to_dict` / :meth:`from_dict`, which is what the CLI's
batch-serving mode and the process-mode payloads use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

from repro.engine.base import Summarizer
from repro.engine.execution import ExecutionConfig
from repro.exceptions import ConfigurationError
from repro.graphs.graph import Graph
from repro.utils.rng import SeedLike

__all__ = ["SummaryRequest"]

#: ExecutionConfig fields that travel through request serialization.
_EXECUTION_FIELDS = (
    "workers", "chunks_per_worker", "serial_zero_threshold",
    "min_parallel_items", "shingle_parallel_min_nodes",
)


@dataclass(frozen=True)
class SummaryRequest:
    """One summarization request: method + graph ref + seed + options.

    Attributes
    ----------
    method:
        Registry name of the summarizer (see ``engine.available_methods``).
    graph:
        The input graph, inline.  Exactly one of ``graph`` / ``graph_key``
        must be set.
    graph_key:
        Name of a graph registered in the service's
        :class:`~repro.service.store.GraphStore` — the serializable way
        to reference a shared graph.
    seed:
        Per-run random seed (the request is deterministic in it).
    options:
        Method-specific constructor options (e.g. ``iterations``).
    execution:
        Parallel-execution configuration forwarded to capable methods.
    tag:
        Free-form caller correlation id, echoed on the job.
    summarizer:
        Optional pre-configured :class:`~repro.engine.base.Summarizer`
        instance overriding ``method``/``options`` resolution (used by
        the comparison harness).  Not serializable; rejected by
        process-mode services.
    """

    method: str = ""
    graph: Optional[Graph] = None
    graph_key: Optional[str] = None
    seed: SeedLike = None
    options: Mapping[str, Any] = field(default_factory=dict)
    execution: Optional[ExecutionConfig] = None
    tag: Optional[str] = None
    summarizer: Optional[Summarizer] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.summarizer is not None:
            if not isinstance(self.summarizer, Summarizer):
                raise ConfigurationError(
                    f"summarizer must be a Summarizer instance, got "
                    f"{type(self.summarizer).__name__}"
                )
            if not self.method:
                object.__setattr__(self, "method", self.summarizer.name)
        if not self.method or not isinstance(self.method, str):
            raise ConfigurationError("request needs a non-empty method name")
        if (self.graph is None) == (self.graph_key is None):
            raise ConfigurationError(
                "exactly one of graph / graph_key must be provided"
            )
        if self.graph is not None and not isinstance(self.graph, Graph):
            raise ConfigurationError(
                f"graph must be a Graph, got {type(self.graph).__name__}"
            )
        if self.execution is not None and not isinstance(self.execution, ExecutionConfig):
            raise ConfigurationError(
                f"execution must be an ExecutionConfig, got "
                f"{type(self.execution).__name__}"
            )
        if not isinstance(self.options, Mapping):
            raise ConfigurationError(
                f"options must be a mapping, got {type(self.options).__name__}"
            )
        # Freeze the options so a shared request cannot drift after
        # validation; dataclass frozen-ness only protects the reference.
        object.__setattr__(self, "options", dict(self.options))

    @property
    def serializable(self) -> bool:
        """Whether the request can cross a process boundary as a dict."""
        return self.summarizer is None

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-compatible description (the inline graph is referenced
        by ``graph_key`` only; carrying graph payloads is the transport's
        job)."""
        if not self.serializable:
            raise ConfigurationError(
                "requests carrying a pre-configured summarizer instance "
                "cannot be serialized; submit by method name instead"
            )
        record: Dict[str, Any] = {"method": self.method}
        if self.graph_key is not None:
            record["graph_key"] = self.graph_key
        if self.seed is not None:
            record["seed"] = self.seed
        if self.options:
            record["options"] = dict(self.options)
        if self.execution is not None:
            record["execution"] = {
                name: getattr(self.execution, name) for name in _EXECUTION_FIELDS
            }
        if self.tag is not None:
            record["tag"] = self.tag
        return record

    @classmethod
    def from_dict(
        cls, record: Mapping[str, Any], graph: Optional[Graph] = None
    ) -> "SummaryRequest":
        """Rebuild a request from :meth:`to_dict` output.

        ``graph`` optionally supplies the inline graph for records whose
        ``graph_key`` the caller already resolved.  Unknown record keys
        are rejected — a top-level ``iterations`` (which belongs inside
        ``options``) silently running with defaults is exactly the batch
        -file mistake this guards against.
        """
        known = {"method", "graph_key", "seed", "options", "execution", "tag"}
        unknown = set(record) - known
        if unknown:
            raise ConfigurationError(
                f"unknown request fields: {sorted(unknown)} "
                f"(method options belong under 'options'; known fields: "
                f"{sorted(known)})"
            )
        execution = record.get("execution")
        if isinstance(execution, Mapping):
            unknown = set(execution) - set(_EXECUTION_FIELDS)
            if unknown:
                raise ConfigurationError(
                    f"unknown execution fields in request: {sorted(unknown)}"
                )
            execution = ExecutionConfig(**execution)
        return cls(
            method=record.get("method", ""),
            graph=graph,
            graph_key=None if graph is not None else record.get("graph_key"),
            seed=record.get("seed"),
            options=record.get("options", {}),
            execution=execution,
            tag=record.get("tag"),
        )

    def describe(self) -> str:
        """Short human-readable label for logs and tables."""
        where = self.graph_key if self.graph_key is not None else "<inline>"
        extras = f" {dict(self.options)}" if self.options else ""
        return f"{self.method}@{where} seed={self.seed}{extras}"
